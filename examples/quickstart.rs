//! Quickstart: maximize current-flow group closeness on a graph.
//!
//! Builds a small scale-free network, runs the paper's flagship algorithm
//! (SchurCFCM), and compares the selected group against the exact greedy
//! baseline and the degree heuristic.
//!
//! Run: `cargo run --release --example quickstart`

use cfcc_core::{cfcc, exact::exact_greedy, heuristics, schur_cfcm::schur_cfcm, CfcmParams};
use cfcc_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build (or load) an undirected connected graph.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::scale_free_with_edges(1_000, 4_000, &mut rng);
    println!("graph: n={} m={}", g.num_nodes(), g.num_edges());

    // 2. Configure: ε controls the accuracy/time trade-off (paper uses 0.2).
    let params = CfcmParams::with_epsilon(0.2).seed(42).threads(2);
    let k = 10;

    // 3. Maximize C(S) over groups of size k.
    let sel = schur_cfcm(&g, k, &params).expect("connected graph, valid k");
    println!("SchurCFCM selected (in greedy order): {:?}", sel.nodes);
    println!(
        "  sampled {} spanning forests, {} random-walk steps, {:.2}s",
        sel.stats.total_forests(),
        sel.stats.total_walk_steps(),
        sel.stats.total_seconds()
    );

    // 4. Evaluate the group's CFCC and compare against baselines.
    let c_schur = cfcc::cfcc_group_exact(&g, &sel.nodes);
    let exact = exact_greedy(&g, k).expect("exact greedy");
    let c_exact = cfcc::cfcc_group_exact(&g, &exact.nodes);
    let degree = heuristics::degree_baseline(&g, k).expect("degree");
    let c_degree = cfcc::cfcc_group_exact(&g, &degree.nodes);

    println!("C(S) SchurCFCM     = {c_schur:.4}");
    println!("C(S) exact greedy  = {c_exact:.4}   (O(n^3) reference)");
    println!("C(S) degree top-k  = {c_degree:.4}   (heuristic)");
    println!(
        "SchurCFCM achieves {:.1}% of the exact-greedy objective.",
        100.0 * c_schur / c_exact
    );
}
