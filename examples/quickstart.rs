//! Quickstart: maximize current-flow group closeness on a graph.
//!
//! Builds a small scale-free network, runs the paper's flagship algorithm
//! (SchurCFCM) through the `SolveSession` front door — with live progress
//! reporting — and compares the selected group against the exact greedy
//! baseline and the degree heuristic, both resolved from the solver
//! registry by name.
//!
//! Run: `cargo run --release --example quickstart`

use cfcc_core::{cfcc, registry, SolveSession};
use cfcc_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build (or load) an undirected connected graph.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::scale_free_with_edges(1_000, 4_000, &mut rng);
    println!("graph: n={} m={}", g.num_nodes(), g.num_edges());

    // 2. Maximize C(S) over groups of size k. The session resolves the
    //    solver by registry name, validates the problem once, and streams
    //    per-iteration progress. ε controls the accuracy/time trade-off
    //    (the paper uses 0.2).
    let k = 10;
    let sel = SolveSession::new(&g)
        .k(k)
        .solver("schur")
        .epsilon(0.2)
        .seed(42)
        .threads(2)
        .on_progress(|it| {
            println!(
                "  picked node {:>4}  ({} forests, gain {:.4})",
                it.chosen, it.forests, it.gain
            )
        })
        .run()
        .expect("connected graph, valid k");
    println!("SchurCFCM selected (in greedy order): {:?}", sel.nodes);
    println!(
        "  sampled {} spanning forests, {} random-walk steps, {:.2}s",
        sel.stats.total_forests(),
        sel.stats.total_walk_steps(),
        sel.stats.total_seconds()
    );

    // 3. Evaluate the group's CFCC and compare against baselines — any
    //    registered solver runs through the same front door.
    let run = |name: &str| {
        let sel = SolveSession::new(&g)
            .k(k)
            .solver(name)
            .seed(42)
            .run()
            .expect("baseline solver");
        cfcc::cfcc_group_exact(&g, &sel.nodes)
    };
    let c_schur = cfcc::cfcc_group_exact(&g, &sel.nodes);
    let c_exact = run("exact");
    let c_degree = run("degree");

    println!("C(S) SchurCFCM     = {c_schur:.4}");
    println!("C(S) exact greedy  = {c_exact:.4}   (O(n^3) reference)");
    println!("C(S) degree top-k  = {c_degree:.4}   (heuristic)");
    println!(
        "SchurCFCM achieves {:.1}% of the exact-greedy objective.",
        100.0 * c_schur / c_exact
    );
    println!("\nregistered solvers: {}", registry::name_list());
}
