//! Sensor placement on a wireless mesh (paper intro, refs [25], [26]):
//! choose `k` monitoring locations so that every node of the deployment
//! field is electrically close to a sensor — exactly CFCM, since
//! `C(S) = n / Σ_u R(u, S)` penalizes nodes far (in resistance distance,
//! i.e. robust multi-path distance) from the whole group.
//!
//! The field is a geometric mesh (radio links between nearby stations);
//! we report per-node coverage statistics for the chosen placements.
//!
//! Run: `cargo run --release --example sensor_placement`

use cfcc_core::{cfcc, SolveSession};
use cfcc_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn coverage_report(g: &cfcc_graph::Graph, sensors: &[u32]) -> (f64, f64) {
    // Mean and worst resistance distance from any station to the sensor set.
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let mut covered = 0usize;
    for u in 0..g.num_nodes() as u32 {
        let r = cfcc::resistance_to_group_cg(g, u, sensors, 1e-8).expect("connected");
        sum += r;
        worst = worst.max(r);
        covered += 1;
    }
    (sum / covered as f64, worst)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    // A deployment field: 600 stations, ~3 radio links each.
    let g = generators::geometric_with_edges(600, 1_800, &mut rng);
    println!(
        "deployment field: {} stations, {} links, diameter ≥ {}",
        g.num_nodes(),
        g.num_edges(),
        cfcc_graph::diameter::diameter_double_sweep(&g, 0, 3)
    );

    // Both placements run through the SolveSession front door; only the
    // registry name differs.
    let k = 6;
    let place = |solver: &str| {
        SolveSession::new(&g)
            .k(k)
            .solver(solver)
            .epsilon(0.2)
            .seed(99)
            .threads(2)
            .run()
            .expect("placement")
    };
    let cfcm = place("schur");
    let degree = place("degree");

    println!("\nplacing {k} sensors:");
    for (name, placement) in [
        ("CFCM (SchurCFCM)", &cfcm.nodes),
        ("degree heuristic", &degree.nodes),
    ] {
        let c = cfcc::cfcc_group_cg(&g, placement, 1e-8).expect("eval");
        let (mean_r, worst_r) = coverage_report(&g, placement);
        println!(
            "  {name:<18} sensors={placement:?}\n    C(S)={c:.4}  mean R(u,S)={mean_r:.3}  worst R(u,S)={worst_r:.3}"
        );
    }
    println!("\nLower mean/worst resistance = better sampling coverage of the field;");
    println!("CFCM spreads sensors across the mesh instead of clustering on hubs.");
}
