//! Resource placement in a peer-to-peer overlay (paper intro, ref [24]):
//! replicate a resource on `k` peers so that random-walk search — the
//! canonical unstructured-P2P lookup — finds a replica quickly from
//! anywhere. Current-flow closeness is the right objective because
//! resistance distance aggregates *all* paths, matching random-walk reach,
//! unlike shortest-path closeness.
//!
//! We validate the placement by measuring actual random-walk hitting times
//! to the replica set.
//!
//! Run: `cargo run --release --example p2p_placement`

use cfcc_core::SolveSession;
use cfcc_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mean steps for a random walk from `start` to reach any node in `targets`.
fn mean_hitting_time<R: Rng>(
    g: &Graph,
    start: u32,
    in_targets: &[bool],
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut total = 0u64;
    for _ in 0..trials {
        let mut u = start;
        let mut steps = 0u64;
        while !in_targets[u as usize] && steps < 100_000 {
            let d = g.degree(u);
            u = g.neighbor(u, rng.gen_range(0..d));
            steps += 1;
        }
        total += steps;
    }
    total as f64 / trials as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31337);
    // An unstructured overlay: 2000 peers, scale-free attachment.
    let g = generators::scale_free_with_edges(2_000, 8_000, &mut rng);
    println!("overlay: {} peers, {} links", g.num_nodes(), g.num_edges());

    // Placements run through the SolveSession front door; the CFCM group
    // and the heuristic baseline differ only in the registry name.
    let k = 8;
    let place = |solver: &str| {
        SolveSession::new(&g)
            .k(k)
            .solver(solver)
            .epsilon(0.15)
            .seed(5)
            .threads(2)
            .run()
            .expect("placement")
    };
    let cfcm = place("schur");
    let topc = place("top-cfcc");
    // Baseline: an arbitrary spread of peer ids.
    let random: Vec<u32> = (0..k as u32)
        .map(|i| (i * 251 + 97) % g.num_nodes() as u32)
        .collect();

    println!("\nreplicating on {k} peers:");
    for (name, replicas) in [
        ("CFCM (SchurCFCM)", &cfcm.nodes),
        ("top-CFCC heuristic", &topc.nodes),
        ("random placement", &random),
    ] {
        let mut in_targets = vec![false; g.num_nodes()];
        for &r in replicas.iter() {
            in_targets[r as usize] = true;
        }
        // The optimized objective: group CFCC (mean resistance to replicas)…
        let c = cfcc_core::cfcc::cfcc_group_cg(&g, replicas, 1e-7).expect("eval");
        // …and the operational metric: random-walk search cost from 40 origins.
        let mut sum = 0.0;
        let mut worst: f64 = 0.0;
        for _ in 0..40 {
            let start = rng.gen_range(0..g.num_nodes() as u32);
            let h = mean_hitting_time(&g, start, &in_targets, 25, &mut rng);
            sum += h;
            worst = worst.max(h);
        }
        println!(
            "  {name:<20} replicas={replicas:?}\n    C(S)={c:.4}   mean random-walk search ≈ {:.1} hops (worst origin ≈ {:.1})",
            sum / 40.0,
            worst
        );
    }
    println!("\nCFCM maximizes C(S) — the resistance-distance (commute-cost) coverage of the");
    println!("overlay — and crushes arbitrary placement on search cost. Hub-ranking");
    println!("heuristics can edge out CFCM on raw one-way hitting time in heavily");
    println!("hub-dominated overlays: one-way hitting time is a different (asymmetric)");
    println!("objective from the commute-style coverage CFCC provably optimizes.");
}
