//! Power-grid vulnerability analysis (paper intro, refs [19], [20]):
//! CFCC of a node group measures how much of the grid's current flow the
//! group collectively "anchors", so the CFCM group is a principled set of
//! candidate hardening sites — and the effect of losing them can be
//! quantified as the resistance increase after their removal.
//!
//! The grid is a synthetic transmission network: a sparse geometric
//! backbone (towers follow geography) plus a few long-range ties.
//!
//! Run: `cargo run --release --example power_grid`

use cfcc_core::{cfcc, SolveSession};
use cfcc_graph::traversal::largest_connected_component;
use cfcc_graph::{generators, Graph, Node};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a transmission-style grid: geometric backbone + sparse long ties.
fn transmission_grid(n: usize, rng: &mut StdRng) -> Graph {
    let base = generators::geometric_with_edges(n, (n as f64 * 1.3) as usize, rng);
    let mut edges: Vec<(Node, Node)> = base.edges().collect();
    for _ in 0..n / 50 {
        let a = rng.gen_range(0..n as Node);
        let b = rng.gen_range(0..n as Node);
        if a != b {
            edges.push((a, b));
        }
    }
    let g = Graph::from_edges(n, &edges).expect("valid edges");
    largest_connected_component(&g).0
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1896);
    let g = transmission_grid(800, &mut rng);
    println!(
        "grid: {} buses, {} lines, diameter ≥ {}",
        g.num_nodes(),
        g.num_edges(),
        cfcc_graph::diameter::diameter_double_sweep(&g, 0, 3)
    );

    // Critical-group analysis through the SolveSession front door, with a
    // progress callback so long grid runs stay observable.
    let k = 5;
    let sel = SolveSession::new(&g)
        .k(k)
        .solver("schur")
        .epsilon(0.2)
        .seed(77)
        .threads(2)
        .on_progress(|it| println!("  hardening candidate: bus {}", it.chosen))
        .run()
        .expect("analysis");
    let c_group = cfcc::cfcc_group_cg(&g, &sel.nodes, 1e-8).expect("eval");
    println!("\nmost flow-critical {k}-bus group (CFCM): {:?}", sel.nodes);
    println!("group CFCC C(S) = {c_group:.4}");

    // Vulnerability probe: losing the CFCM group vs losing k random buses.
    // Compare the network's mean pairwise resistance (Kirchhoff-index
    // style) on the surviving LCC via sampled node pairs.
    let survivors_mean_r = |removed: &[Node], rng: &mut StdRng| -> f64 {
        let keep: Vec<Node> = (0..g.num_nodes() as Node)
            .filter(|u| !removed.contains(u))
            .collect();
        let (sub, _) = g.induced_subgraph(&keep);
        let (lcc, _) = largest_connected_component(&sub);
        let mut total = 0.0;
        let pairs = 30;
        for _ in 0..pairs {
            let a = rng.gen_range(0..lcc.num_nodes() as Node);
            let mut b = rng.gen_range(0..lcc.num_nodes() as Node);
            while b == a {
                b = rng.gen_range(0..lcc.num_nodes() as Node);
            }
            total += cfcc::resistance_to_group_cg(&lcc, a, &[b], 1e-7).expect("connected lcc");
        }
        total / pairs as f64
    };

    let baseline = survivors_mean_r(&[], &mut rng);
    let after_cfcm = survivors_mean_r(&sel.nodes, &mut rng);
    let random: Vec<Node> = (0..k as Node)
        .map(|i| i * 97 % g.num_nodes() as Node)
        .collect();
    let after_random = survivors_mean_r(&random, &mut rng);

    println!("\nmean sampled pairwise resistance of the surviving grid:");
    println!("  intact grid           : {baseline:.3}");
    println!(
        "  after losing CFCM set : {after_cfcm:.3}  (+{:.1}%)",
        100.0 * (after_cfcm / baseline - 1.0)
    );
    println!(
        "  after losing random k : {after_random:.3}  (+{:.1}%)",
        100.0 * (after_random / baseline - 1.0)
    );
    println!("\nThe CFCM group's removal degrades grid conductance far more than a random");
    println!("outage of equal size — these buses are the ones worth hardening.");
}
