//! Tour of the unified `SddSolver` backend API: factor one grounded
//! Laplacian through every registered backend, compare their answers and
//! work reports, then run ApproxGreedy end to end per backend.
//!
//! ```sh
//! cargo run --release --example backends
//! CFCC_BACKEND=sparse-cg cargo run --release --example backends
//! ```

use cfcc_core::approx_greedy::approx_greedy;
use cfcc_core::CfcmParams;
use cfcc_graph::generators;
use cfcc_linalg::sdd::{self, SddBackend, SddOptions};
use cfcc_util::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xBAC);
    let n = 2_000;
    let g = generators::barabasi_albert(n, 3, &mut rng);
    let mut in_s = vec![false; n];
    in_s[0] = true;

    // One factor per backend, same trace query through each.
    println!("Tr(L_-S^-1) on a {n}-node Barabási–Albert graph, every backend:\n");
    let mut t = Table::new(["backend", "kind", "trace", "iterations", "max residual"]);
    for backend in sdd::backends() {
        let start = Instant::now();
        let mut f = backend
            .factor(&g, &in_s, &SddOptions::with_tol(1e-10))
            .expect("factor");
        // Hutchinson probes: cheap enough to demo on every backend.
        let est = cfcc_linalg::trace::trace_inverse_hutchinson_factor(
            f.as_mut(),
            32,
            &mut StdRng::seed_from_u64(1),
        )
        .expect("trace probes");
        let stats = f.stats();
        t.row([
            backend.name().to_string(),
            backend.kind().label().to_string(),
            format!(
                "{:.3} ± {:.3} ({:?})",
                est.trace,
                est.std_error,
                start.elapsed()
            ),
            stats.iterations.to_string(),
            format!("{:.2e}", stats.max_rel_residual),
        ]);
    }
    println!("{}", t.render());

    // The same selection problem through each backend: identical groups,
    // different cost profiles. CFCC_BACKEND overrides the ladder.
    println!("\nApproxGreedy (k = 4) per backend:\n");
    let choices: Vec<SddBackend> = match std::env::var("CFCC_BACKEND") {
        Ok(name) => vec![SddBackend::parse(&name).expect("known backend")],
        Err(_) => vec![SddBackend::Auto, SddBackend::CgJacobi, SddBackend::SparseCg],
    };
    for backend in choices {
        let mut params = CfcmParams::with_epsilon(0.3).seed(7).backend(backend);
        params.jl_width = Some(6);
        let start = Instant::now();
        let sel = approx_greedy(&g, 4, &params).expect("approx greedy");
        println!(
            "  {:<14} -> {:?} in {:?}",
            backend.name(),
            sel.nodes,
            start.elapsed()
        );
    }
    println!(
        "\n(auto = dense-cholesky up to {} unknowns, sparse-cg beyond)",
        SddBackend::AUTO_DENSE_LIMIT
    );
}
