//! Mixed service traffic against an in-process `cfcc-serve` daemon: boot
//! the daemon on an ephemeral port, fire a burst of concurrent clients
//! running every request type — group evaluations on repeated groundings
//! (these fuse in the batcher), single-node centrality lookups (memoized
//! per factor), and a streamed top-k greedy run — then read the server's
//! own `stats` to see the cache hit rate and batch occupancy the trace
//! produced.
//!
//! ```sh
//! cargo run --release --example service_traffic
//! ```

use cfcc_graph::generators;
use cfcc_serve::client::Client;
use cfcc_serve::protocol::fields;
use cfcc_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A mid-size scale-free graph, resident before the first request.
    let mut rng = StdRng::seed_from_u64(0x5E41);
    let graph = generators::barabasi_albert(2_000, 3, &mut rng);
    let server = Server::bind(ServeConfig::default()).expect("bind");
    server
        .registry()
        .insert("web", graph)
        .expect("insert graph");
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();
    println!("daemon up on {addr}\n");

    // Burst: 8 evaluation clients over 4 shared groundings (pairs fuse),
    // 4 centrality clients (first one pays, the rest hit the memo), and
    // one top-k greedy run streaming progress.
    let groundings = ["0,1", "5,9", "17,3", "100,200"];
    std::thread::scope(|s| {
        for w in 0..8 {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let req = format!(
                    "eval_group graph=web nodes={} backend=sparse-cg probes=8 seed={w}",
                    groundings[w % groundings.len()]
                );
                let t = c.request_terminal(&req).expect("eval_group");
                let f = fields(&t);
                println!(
                    "eval_group  nodes={:9} cfcc={:>9.5} cache={:4} fused {} request(s) into a {}-column solve",
                    groundings[w % groundings.len()],
                    f["cfcc"].parse::<f64>().unwrap(),
                    f["cache"],
                    f["batch_jobs"],
                    f["batch"],
                );
            });
        }
        for w in 0..4 {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let t = c
                    .request_terminal(&format!("node_centrality graph=web node={}", w * 7))
                    .expect("node_centrality");
                let f = fields(&t);
                println!(
                    "node_centrality  node={:3}  C={:>9.5}  cache={}",
                    w * 7,
                    f["centrality"].parse::<f64>().unwrap(),
                    f["cache"],
                );
            });
        }
        s.spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            c.send("topk_greedy graph=web k=4 epsilon=0.4 seed=7")
                .expect("send");
            let terminal = c
                .read_response(|p| {
                    let f = fields(p);
                    println!(
                        "topk_greedy  round {}: chose node {}",
                        f["iter"], f["chosen"]
                    );
                })
                .expect("topk_greedy");
            println!("topk_greedy  selection: {}", fields(&terminal)["nodes"]);
        });
    });

    // The server's own view of that trace.
    let mut c = Client::connect(addr).unwrap();
    let t = c.request_terminal("stats").unwrap();
    let stats = fields(&t)["stats"].to_string();
    let scrape = |key: &str| {
        let pat = format!("\"{key}\":");
        let at = stats.find(&pat).map(|i| i + pat.len()).unwrap_or(0);
        stats[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect::<String>()
    };
    println!(
        "\nserver stats: cache hit rate {}, {} batched jobs in {} solves (mean width {}), {} PCG iterations total",
        scrape("hit_rate"),
        scrape("batched_jobs"),
        scrape("batches"),
        scrape("mean_width"),
        scrape("iterations"),
    );

    c.request_terminal("shutdown").unwrap();
    handle.shutdown();
    println!("daemon shut down cleanly");
}
