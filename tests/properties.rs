//! Cross-crate property-based tests (proptest) on the core mathematical
//! invariants the algorithms rely on.

use cfcc_graph::{generators, Graph, Node};
use cfcc_linalg::cg::{solve_grounded, CgConfig};
use cfcc_linalg::laplacian::{laplacian_submatrix_dense, LaplacianSubmatrix};
use cfcc_linalg::pinv::{pseudoinverse_dense, resistance_distance};
use cfcc_linalg::vector::norm2_sq;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

prop_compose! {
    /// Strategy: a connected scale-free graph with 8..40 nodes.
    fn arb_graph()(seed in 0u64..1000, n in 8usize..40) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::barabasi_albert(n, 2, &mut rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Resistance distance is a metric: symmetric, zero diagonal,
    /// triangle inequality.
    #[test]
    fn resistance_is_a_metric(g in arb_graph(), picks in proptest::array::uniform3(0usize..1000)) {
        let n = g.num_nodes();
        let p = pseudoinverse_dense(&g);
        let (i, j, l) = (picks[0] % n, picks[1] % n, picks[2] % n);
        let rij = resistance_distance(&p, i, j);
        let rji = resistance_distance(&p, j, i);
        prop_assert!((rij - rji).abs() < 1e-9);
        prop_assert!(resistance_distance(&p, i, i).abs() < 1e-9);
        prop_assert!(rij >= -1e-12);
        let ril = resistance_distance(&p, i, l);
        let rlj = resistance_distance(&p, l, j);
        prop_assert!(rij <= ril + rlj + 1e-9, "triangle: {rij} > {ril} + {rlj}");
    }

    /// Eq. (1) ≡ Eq. (2): R(i,j) = (L_{-i}^{-1})_{jj}.
    #[test]
    fn eq1_equals_eq2(g in arb_graph(), pick in 0usize..1000) {
        let n = g.num_nodes();
        let i = pick % n;
        let p = pseudoinverse_dense(&g);
        let mut in_s = vec![false; n];
        in_s[i] = true;
        let (sub, keep) = laplacian_submatrix_dense(&g, &in_s);
        let inv = sub.cholesky().unwrap().inverse();
        for (cj, &j) in keep.iter().enumerate() {
            let r1 = resistance_distance(&p, i, j as usize);
            let r2 = inv.get(cj, cj);
            prop_assert!((r1 - r2).abs() < 1e-7, "i={i} j={j}: {r1} vs {r2}");
        }
    }

    /// Tr(L_{-S}^{-1}) is monotone decreasing under adding nodes to S, and
    /// the marginal drops are supermodular (diminishing in S).
    #[test]
    fn trace_monotone_and_supermodular(g in arb_graph(), picks in proptest::array::uniform3(0usize..1000)) {
        let n = g.num_nodes();
        let mut nodes: Vec<Node> = picks.iter().map(|&p| (p % n) as Node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assume!(nodes.len() == 3);
        let (a, b, c) = (nodes[0], nodes[1], nodes[2]);
        let tr = |s: &[Node]| cfcc_core::cfcc::grounded_trace_exact(&g, s);
        // monotone: adding b to {a} decreases the trace.
        let t_a = tr(&[a]);
        let t_ab = tr(&[a, b]);
        prop_assert!(t_ab < t_a + 1e-12);
        // supermodular marginals of Tr (Eq. 5 gains diminish):
        // gain of c given {a} ≥ gain of c given {a,b}.
        let gain_small = t_a - tr(&[a, c]);
        let gain_large = t_ab - tr(&[a, b, c]);
        prop_assert!(gain_small >= gain_large - 1e-9,
            "supermodularity violated: {gain_small} < {gain_large}");
    }

    /// PCG agrees with the dense Cholesky solve on L_{-S}.
    #[test]
    fn cg_matches_dense(g in arb_graph(), pick in 0usize..1000, rhs_seed in 0u64..100) {
        let n = g.num_nodes();
        let mut in_s = vec![false; n];
        in_s[pick % n] = true;
        let (sub, _) = laplacian_submatrix_dense(&g, &in_s);
        let ch = sub.cholesky().unwrap();
        let op = LaplacianSubmatrix::new(&g, &in_s);
        let mut rng = StdRng::seed_from_u64(rhs_seed);
        use rand::Rng;
        let b: Vec<f64> = (0..op.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = vec![0.0; op.dim()];
        let stats = solve_grounded(&op, &b, &mut x, &CgConfig::with_tol(1e-12));
        prop_assert!(stats.converged);
        let exact = ch.solve(&b);
        for i in 0..x.len() {
            prop_assert!((x[i] - exact[i]).abs() < 1e-6);
        }
    }

    /// Wilson's sampler returns a valid spanning forest rooted exactly at S.
    #[test]
    fn wilson_forest_valid(g in arb_graph(), picks in proptest::array::uniform2(0usize..1000), seed in 0u64..100) {
        let n = g.num_nodes();
        let mut in_root = vec![false; n];
        in_root[picks[0] % n] = true;
        in_root[picks[1] % n] = true;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let f = cfcc_forest::sample_forest(&g, &in_root, &mut rng);
        f.validate(&g, &in_root);
    }

    /// The rank-one removal identity behind Exact/Optimum:
    /// Tr(L_{-(S∪u)}^{-1}) = Tr(M) − ‖M e_u‖²/M_uu.
    #[test]
    fn rank_one_trace_identity(g in arb_graph(), picks in proptest::array::uniform2(0usize..1000)) {
        let n = g.num_nodes();
        let s = (picks[0] % n) as Node;
        let u = (picks[1] % n) as Node;
        prop_assume!(s != u);
        let mut in_s = vec![false; n];
        in_s[s as usize] = true;
        let (sub, keep) = laplacian_submatrix_dense(&g, &in_s);
        let m = sub.cholesky().unwrap().inverse();
        let cu = keep.iter().position(|&x| x == u).unwrap();
        let predicted = m.trace() - norm2_sq(m.row(cu)) / m.get(cu, cu);
        let actual = cfcc_core::cfcc::grounded_trace_exact(&g, &[s, u]);
        prop_assert!((predicted - actual).abs() < 1e-8, "{predicted} vs {actual}");
    }

    /// Generator invariants: scale-free proxies are connected, with the
    /// requested node count and near-requested edge count.
    #[test]
    fn generator_invariants(seed in 0u64..500, n in 16usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m_target = 3 * n;
        let g = generators::scale_free_with_edges(n, m_target, &mut rng);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert!(g.is_connected());
        let err = (g.num_edges() as f64 - m_target as f64).abs() / m_target as f64;
        prop_assert!(err < 0.05, "edges {} vs target {m_target}", g.num_edges());
        prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
    }
}
