//! Cross-crate randomized property tests on the core mathematical
//! invariants the algorithms rely on.
//!
//! Originally written against `proptest`; the offline build environment has
//! no registry access, so each property is exercised over a deterministic
//! seeded case ladder instead (same invariants, same case counts).

use cfcc_graph::{generators, Graph, Node};
use cfcc_linalg::cg::{solve_grounded, CgConfig};
use cfcc_linalg::laplacian::{laplacian_submatrix_dense, LaplacianSubmatrix};
use cfcc_linalg::pinv::{pseudoinverse_dense, resistance_distance};
use cfcc_linalg::vector::norm2_sq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// Case generator: a connected scale-free graph with 8..40 nodes plus a
/// per-case RNG for auxiliary picks.
fn arb_graph(case: u64) -> (Graph, StdRng) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ case);
    let n = rng.gen_range(8usize..40);
    let g = generators::barabasi_albert(n, 2, &mut rng);
    (g, rng)
}

/// Resistance distance is a metric: symmetric, zero diagonal, triangle
/// inequality.
#[test]
fn resistance_is_a_metric() {
    for case in 0..CASES {
        let (g, mut rng) = arb_graph(case);
        let n = g.num_nodes();
        let p = pseudoinverse_dense(&g);
        let (i, j, l) = (
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
        );
        let rij = resistance_distance(&p, i, j);
        let rji = resistance_distance(&p, j, i);
        assert!((rij - rji).abs() < 1e-9);
        assert!(resistance_distance(&p, i, i).abs() < 1e-9);
        assert!(rij >= -1e-12);
        let ril = resistance_distance(&p, i, l);
        let rlj = resistance_distance(&p, l, j);
        assert!(rij <= ril + rlj + 1e-9, "triangle: {rij} > {ril} + {rlj}");
    }
}

/// Eq. (1) ≡ Eq. (2): R(i,j) = (L_{-i}^{-1})_{jj}.
#[test]
fn eq1_equals_eq2() {
    for case in 0..CASES {
        let (g, mut rng) = arb_graph(case);
        let n = g.num_nodes();
        let i = rng.gen_range(0..n);
        let p = pseudoinverse_dense(&g);
        let mut in_s = vec![false; n];
        in_s[i] = true;
        let (sub, keep) = laplacian_submatrix_dense(&g, &in_s);
        let inv = sub.cholesky().unwrap().inverse();
        for (cj, &j) in keep.iter().enumerate() {
            let r1 = resistance_distance(&p, i, j as usize);
            let r2 = inv.get(cj, cj);
            assert!((r1 - r2).abs() < 1e-7, "i={i} j={j}: {r1} vs {r2}");
        }
    }
}

/// Tr(L_{-S}^{-1}) is monotone decreasing under adding nodes to S, and the
/// marginal drops are supermodular (diminishing in S).
#[test]
fn trace_monotone_and_supermodular() {
    let mut done = 0u64;
    let mut case = 0u64;
    while done < CASES {
        let (g, mut rng) = arb_graph(0x5_0000 + case);
        case += 1;
        let n = g.num_nodes();
        let mut nodes: Vec<Node> = (0..3).map(|_| rng.gen_range(0..n) as Node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() != 3 {
            continue; // rejection sampling, as prop_assume did
        }
        done += 1;
        let (a, b, c) = (nodes[0], nodes[1], nodes[2]);
        let tr = |s: &[Node]| cfcc_core::cfcc::grounded_trace_exact(&g, s);
        // monotone: adding b to {a} decreases the trace.
        let t_a = tr(&[a]);
        let t_ab = tr(&[a, b]);
        assert!(t_ab < t_a + 1e-12);
        // supermodular marginals of Tr (Eq. 5 gains diminish):
        // gain of c given {a} ≥ gain of c given {a,b}.
        let gain_small = t_a - tr(&[a, c]);
        let gain_large = t_ab - tr(&[a, b, c]);
        assert!(
            gain_small >= gain_large - 1e-9,
            "supermodularity violated: {gain_small} < {gain_large}"
        );
    }
}

/// PCG agrees with the dense Cholesky solve on L_{-S}.
#[test]
fn cg_matches_dense() {
    for case in 0..CASES {
        let (g, mut rng) = arb_graph(0x6_0000 + case);
        let n = g.num_nodes();
        let mut in_s = vec![false; n];
        in_s[rng.gen_range(0..n)] = true;
        let (sub, _) = laplacian_submatrix_dense(&g, &in_s);
        let ch = sub.cholesky().unwrap();
        let op = LaplacianSubmatrix::new(&g, &in_s);
        let b: Vec<f64> = (0..op.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = vec![0.0; op.dim()];
        let stats = solve_grounded(&op, &b, &mut x, &CgConfig::with_tol(1e-12));
        assert!(stats.converged);
        let exact = ch.solve(&b);
        for i in 0..x.len() {
            assert!((x[i] - exact[i]).abs() < 1e-6);
        }
    }
}

/// Wilson's sampler returns a valid spanning forest rooted exactly at S.
#[test]
fn wilson_forest_valid() {
    for case in 0..CASES {
        let (g, mut rng) = arb_graph(0x7_0000 + case);
        let n = g.num_nodes();
        let mut in_root = vec![false; n];
        in_root[rng.gen_range(0..n)] = true;
        in_root[rng.gen_range(0..n)] = true;
        let mut wilson_rng = rand::rngs::SmallRng::seed_from_u64(rng.gen_range(0u64..100));
        let f = cfcc_forest::sample_forest(&g, &in_root, &mut wilson_rng);
        f.validate(&g, &in_root);
    }
}

/// The rank-one removal identity behind Exact/Optimum:
/// Tr(L_{-(S∪u)}^{-1}) = Tr(M) − ‖M e_u‖²/M_uu.
#[test]
fn rank_one_trace_identity() {
    let mut done = 0u64;
    let mut case = 0u64;
    while done < CASES {
        let (g, mut rng) = arb_graph(0x8_0000 + case);
        case += 1;
        let n = g.num_nodes();
        let s = rng.gen_range(0..n) as Node;
        let u = rng.gen_range(0..n) as Node;
        if s == u {
            continue;
        }
        done += 1;
        let mut in_s = vec![false; n];
        in_s[s as usize] = true;
        let (sub, keep) = laplacian_submatrix_dense(&g, &in_s);
        let m = sub.cholesky().unwrap().inverse();
        let cu = keep.iter().position(|&x| x == u).unwrap();
        let predicted = m.trace() - norm2_sq(m.row(cu)) / m.get(cu, cu);
        let actual = cfcc_core::cfcc::grounded_trace_exact(&g, &[s, u]);
        assert!((predicted - actual).abs() < 1e-8, "{predicted} vs {actual}");
    }
}

/// Generator invariants: scale-free proxies are connected, with the
/// requested node count and near-requested edge count.
#[test]
fn generator_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9_0000 ^ case);
        let n = rng.gen_range(16usize..200);
        let m_target = 3 * n;
        let g = generators::scale_free_with_edges(n, m_target, &mut rng);
        assert_eq!(g.num_nodes(), n);
        assert!(g.is_connected());
        let err = (g.num_edges() as f64 - m_target as f64).abs() / m_target as f64;
        assert!(err < 0.05, "edges {} vs target {m_target}", g.num_edges());
        assert_eq!(g.degree_sum(), 2 * g.num_edges());
    }
}
