//! Cross-crate tests of the persistent execution engine: warm-started
//! greedy iterations must do measurably less solver work than cold ones
//! (observable through the aggregated `RunStats::solve`), and the
//! worker-pool execution layer must keep results bit-identical across
//! thread counts all the way up at the solver level.

use cfcc_core::approx_greedy::approx_greedy;
use cfcc_core::{CfcmParams, RunStats};
use cfcc_graph::generators;
use cfcc_linalg::SddBackend;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(g: &cfcc_graph::Graph, k: usize, params: CfcmParams) -> (Vec<u32>, RunStats) {
    let sel = approx_greedy(g, k, &params).unwrap();
    (sel.nodes, sel.stats)
}

/// Regression (warm-start exploitation): across a k-step ApproxGreedy run
/// the total blocked-PCG iterations — aggregated over every per-iteration
/// factor by the engine's `SolveStats` roll-up — must drop when the
/// previous round's solutions seed the next round's solves, on every
/// iterative backend. Selections must not change: both runs solve the
/// same systems to the same tolerance.
#[test]
fn warm_started_approx_greedy_needs_fewer_total_pcg_iterations() {
    let mut rng = StdRng::seed_from_u64(0x77A2);
    let g = generators::barabasi_albert(600, 3, &mut rng);
    for backend in [
        SddBackend::SparseCg,
        SddBackend::CgJacobi,
        SddBackend::TreePcg,
    ] {
        let mut params = CfcmParams::with_epsilon(0.3).seed(21).backend(backend);
        params.jl_width = Some(8);
        let (warm_nodes, warm) = run(&g, 5, params.clone().warm_start(true));
        let (cold_nodes, cold) = run(&g, 5, params.warm_start(false));
        assert_eq!(warm_nodes, cold_nodes, "{backend}: selections must agree");
        assert_eq!(
            warm.solve.solves, cold.solve.solves,
            "{backend}: same number of right-hand sides either way"
        );
        assert!(
            warm.solve.iterations < cold.solve.iterations,
            "{backend}: warm {} must need fewer total PCG iterations than cold {}",
            warm.solve.iterations,
            cold.solve.iterations
        );
        // Rounds 3..k all warm-start one grounding away; the savings
        // should be substantial, not marginal.
        assert!(
            (warm.solve.iterations as f64) < 0.9 * cold.solve.iterations as f64,
            "{backend}: warm {} vs cold {} — win too small",
            warm.solve.iterations,
            cold.solve.iterations
        );
    }
}

/// The aggregated solver stats flow through to the JSON report.
#[test]
fn aggregated_solver_stats_surface_in_run_stats_json() {
    let mut rng = StdRng::seed_from_u64(0x77A3);
    let g = generators::barabasi_albert(200, 3, &mut rng);
    let mut params = CfcmParams::with_epsilon(0.3)
        .seed(5)
        .backend(SddBackend::SparseCg);
    params.jl_width = Some(6);
    let sel = approx_greedy(&g, 3, &params).unwrap();
    assert!(sel.stats.solve.solves > 0);
    assert!(sel.stats.solve.iterations > 0);
    let j = sel.stats.to_json();
    assert!(j.contains(&format!(
        r#""solver_iterations":{}"#,
        sel.stats.solve.iterations
    )));
    assert!(j.contains(&format!(r#""solver_solves":{}"#, sel.stats.solve.solves)));
}

/// Regression (pool determinism at the solver level): the worker pool
/// must not change a single bit of any result — identical selections
/// *and* bit-identical gains for 1/2/4 threads, dense and sparse paths.
#[test]
fn thread_counts_are_bit_identical_through_the_pool() {
    let mut rng = StdRng::seed_from_u64(0x77A4);
    let g = generators::barabasi_albert(220, 3, &mut rng);
    for backend in [SddBackend::DenseCholesky, SddBackend::SparseCg] {
        let base = {
            let mut p = CfcmParams::with_epsilon(0.3).seed(9).backend(backend);
            p.jl_width = Some(6);
            p
        };
        let (nodes1, stats1) = run(&g, 4, base.clone().threads(1));
        for threads in [2, 4] {
            let (nodes_t, stats_t) = run(&g, 4, base.clone().threads(threads));
            assert_eq!(nodes_t, nodes1, "{backend} threads={threads}");
            for (a, b) in stats1.iterations.iter().zip(&stats_t.iterations) {
                assert!(
                    a.gain == b.gain || (a.gain.is_nan() && b.gain.is_nan()),
                    "{backend} threads={threads}: gains must be bit-identical ({} vs {})",
                    a.gain,
                    b.gain
                );
            }
            assert_eq!(
                stats_t.solve.iterations, stats1.solve.iterations,
                "{backend} threads={threads}: identical PCG trajectories"
            );
        }
    }
}
