//! End-to-end pipeline tests across all crates: every algorithm against
//! every other on shared workloads, quality vs the exhaustive optimum,
//! determinism, and thread-count independence.

use cfcc_core::{
    approx_greedy::approx_greedy, cfcc::cfcc_group_exact, exact::exact_greedy,
    forest_cfcm::forest_cfcm, heuristics, optimum::optimum_cfcm, schur_cfcm::schur_cfcm,
    CfcmParams,
};
use cfcc_datasets::{contiguous_usa, karate};

#[test]
fn karate_all_algorithms_near_optimum() {
    let g = karate();
    let k = 3;
    let opt = optimum_cfcm(&g, k).unwrap();
    let params = CfcmParams::with_epsilon(0.15).seed(42);

    let exact = exact_greedy(&g, k).unwrap();
    let approx = approx_greedy(&g, k, &params).unwrap();
    let forest = forest_cfcm(&g, k, &params).unwrap();
    let schur = schur_cfcm(&g, k, &params).unwrap();

    for (name, sel) in [
        ("exact", &exact),
        ("approx", &approx),
        ("forest", &forest),
        ("schur", &schur),
    ] {
        let c = cfcc_group_exact(&g, &sel.nodes);
        // Paper Fig. 1: all greedy variants nearly match the optimum.
        assert!(
            c >= 0.95 * opt.cfcc,
            "{name}: C(S)={c} vs optimum {}",
            opt.cfcc
        );
    }
}

#[test]
fn karate_greedy_beats_heuristics() {
    let g = karate();
    let k = 4;
    let exact = exact_greedy(&g, k).unwrap();
    let degree = heuristics::degree_baseline(&g, k).unwrap();
    let topc = heuristics::top_cfcc_exact(&g, k).unwrap();
    let ce = cfcc_group_exact(&g, &exact.nodes);
    let cd = cfcc_group_exact(&g, &degree.nodes);
    let ct = cfcc_group_exact(&g, &topc.nodes);
    assert!(ce >= cd - 1e-12, "greedy {ce} vs degree {cd}");
    assert!(ce >= ct - 1e-12, "greedy {ce} vs top-cfcc {ct}");
}

#[test]
fn usa_exact_greedy_approximation_bound_vs_optimum() {
    // Theorem 3.11-style sanity: greedy should be well within the
    // (1 - (k/(k-1))/e) trace-gap guarantee against the optimum.
    let g = contiguous_usa();
    let k = 3;
    let opt = optimum_cfcm(&g, k).unwrap();
    let greedy = exact_greedy(&g, k).unwrap();
    let c_greedy = cfcc_group_exact(&g, &greedy.nodes);
    assert!(
        c_greedy >= 0.9 * opt.cfcc,
        "greedy {c_greedy} vs optimum {}",
        opt.cfcc
    );
}

#[test]
fn thread_count_does_not_change_selection() {
    let g = cfcc_datasets::by_name("dolphins", 1.0).unwrap();
    let base = CfcmParams::with_epsilon(0.2).seed(7);
    let serial = forest_cfcm(&g, 4, &base.clone().threads(1)).unwrap();
    let parallel = forest_cfcm(&g, 4, &base.threads(4)).unwrap();
    assert_eq!(serial.nodes, parallel.nodes);

    let base = CfcmParams::with_epsilon(0.2).seed(7);
    let s1 = schur_cfcm(&g, 4, &base.clone().threads(1)).unwrap();
    let s2 = schur_cfcm(&g, 4, &base.threads(3)).unwrap();
    assert_eq!(s1.nodes, s2.nodes);
}

#[test]
fn forest_and_schur_agree_on_clear_structure() {
    // A barbell has an unambiguous best group: the bridge region.
    let g = cfcc_graph::generators::barbell(10, 3);
    let params = CfcmParams::with_epsilon(0.2).seed(3);
    let forest = forest_cfcm(&g, 1, &params).unwrap();
    let schur = schur_cfcm(&g, 1, &params).unwrap();
    let exact = exact_greedy(&g, 1).unwrap();
    let bridge: Vec<u32> = (10..13).collect();
    assert!(bridge.contains(&exact.nodes[0]));
    assert!(
        bridge.contains(&forest.nodes[0]),
        "forest chose {}",
        forest.nodes[0]
    );
    assert!(
        bridge.contains(&schur.nodes[0]),
        "schur chose {}",
        schur.nodes[0]
    );
}

#[test]
fn selections_are_reported_with_stats() {
    let g = karate();
    let params = CfcmParams::with_epsilon(0.3).seed(1);
    let sel = schur_cfcm(&g, 3, &params).unwrap();
    assert_eq!(sel.stats.iterations.len(), 3);
    assert!(sel.stats.total_forests() > 0);
    assert!(sel.stats.total_walk_steps() > 0);
    assert!(sel.stats.total_seconds() > 0.0);
    // Marginal gains are present for iterations ≥ 2 and decreasing-ish
    // (supermodularity up to MC noise).
    let g1 = sel.stats.iterations[1].gain;
    let g2 = sel.stats.iterations[2].gain;
    assert!(g1.is_finite() && g2.is_finite());
    assert!(g2 <= 1.5 * g1, "gains should not explode: {g1} then {g2}");
}

#[test]
fn larger_epsilon_is_not_slower() {
    // ε controls the adaptive budget: ε=0.4 must sample no more forests
    // than ε=0.15 on the same workload.
    let g = cfcc_datasets::by_name("zebra", 1.0).unwrap();
    let loose = forest_cfcm(&g, 3, &CfcmParams::with_epsilon(0.4).seed(5)).unwrap();
    let tight = forest_cfcm(&g, 3, &CfcmParams::with_epsilon(0.15).seed(5)).unwrap();
    assert!(
        loose.stats.total_forests() <= tight.stats.total_forests(),
        "loose {} vs tight {}",
        loose.stats.total_forests(),
        tight.stats.total_forests()
    );
}
