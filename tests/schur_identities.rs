//! Integration tests of the §IV Schur-complement identities across the
//! forest, linalg, and core crates: the Eq. (11) block inverse, Lemma 4.2
//! rooted probabilities, and the SchurDelta ≈ ForestDelta agreement.

use cfcc_core::params::{t_star, top_degree_nodes};
use cfcc_core::schur::schur_complement_dense;
use cfcc_core::{forest_delta::forest_delta, schur_delta::schur_delta, CfcmParams};
use cfcc_graph::generators;
use cfcc_linalg::dense::DenseMatrix;
use cfcc_linalg::laplacian::laplacian_submatrix_dense;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Eq. (11): the block form of `L_{-S}^{-1}` assembled from `L_UU`,
/// `F = −L_UU^{-1} L_UT`, and `Σ^{-1}` matches the direct inverse.
#[test]
fn block_inverse_identity() {
    let mut rng = StdRng::seed_from_u64(41);
    let g = generators::barabasi_albert(20, 2, &mut rng);
    let n = g.num_nodes();
    let s = [0u32];
    let t = [1u32, 4u32, 7u32];
    let mut in_s = vec![false; n];
    in_s[0] = true;

    let (l_minus_s, keep) = laplacian_submatrix_dense(&g, &in_s);
    let direct = l_minus_s.cholesky().unwrap().inverse();

    let pos = |x: u32| keep.iter().position(|&y| y == x).unwrap();
    let t_idx: Vec<usize> = t.iter().map(|&x| pos(x)).collect();
    let u_idx: Vec<usize> = keep
        .iter()
        .enumerate()
        .filter(|&(_, &x)| !t.contains(&x) && !s.contains(&x))
        .map(|(i, _)| i)
        .collect();

    // Build the blocks.
    let ul = u_idx.len();
    let tl = t_idx.len();
    let mut luu = DenseMatrix::zeros(ul, ul);
    let mut lut = DenseMatrix::zeros(ul, tl);
    for (i, &ui) in u_idx.iter().enumerate() {
        for (j, &uj) in u_idx.iter().enumerate() {
            luu.set(i, j, l_minus_s.get(ui, uj));
        }
        for (j, &tj) in t_idx.iter().enumerate() {
            lut.set(i, j, l_minus_s.get(ui, tj));
        }
    }
    let luu_inv = luu.cholesky().unwrap().inverse();
    // F = −L_UU^{-1} L_UT
    let mut f = luu_inv.matmul(&lut);
    for i in 0..ul {
        for j in 0..tl {
            f.set(i, j, -f.get(i, j));
        }
    }
    let sigma = schur_complement_dense(&l_minus_s, &t_idx, &u_idx);
    let sigma_inv = sigma.unwrap().cholesky().unwrap().inverse();

    // Assemble Eq. (11) and compare entrywise to the direct inverse.
    let fsig = f.matmul(&sigma_inv);
    let top_left_corr = fsig.matmul(&f.transpose());
    for (i, &ui) in u_idx.iter().enumerate() {
        for (j, &uj) in u_idx.iter().enumerate() {
            let expect = direct.get(ui, uj);
            let got = luu_inv.get(i, j) + top_left_corr.get(i, j);
            assert!(
                (got - expect).abs() < 1e-8,
                "UU block ({i},{j}): {got} vs {expect}"
            );
        }
        for (j, &tj) in t_idx.iter().enumerate() {
            let expect = direct.get(ui, tj);
            let got = fsig.get(i, j);
            assert!(
                (got - expect).abs() < 1e-8,
                "UT block ({i},{j}): {got} vs {expect}"
            );
        }
    }
    for (i, &ti) in t_idx.iter().enumerate() {
        for (j, &tj) in t_idx.iter().enumerate() {
            let expect = direct.get(ti, tj);
            let got = sigma_inv.get(i, j);
            assert!(
                (got - expect).abs() < 1e-8,
                "TT block ({i},{j}): {got} vs {expect}"
            );
        }
    }
}

/// SchurDelta and ForestDelta must rank marginal gains consistently: their
/// argmaxes land in each other's top tier on the same workload.
#[test]
fn schur_and_forest_delta_agree() {
    let mut rng = StdRng::seed_from_u64(43);
    let g = generators::scale_free_with_edges(150, 600, &mut rng);
    let n = g.num_nodes();
    let mut in_s = vec![false; n];
    in_s[g.max_degree_node().unwrap() as usize] = true;
    // Near-tied gains make the top-5 ranking noise-sensitive; a generous
    // fixed forest budget keeps both estimators well past the adaptive
    // stop's accuracy so the overlap check probes agreement, not variance.
    let mut params = CfcmParams::with_epsilon(0.15).seed(11);
    params.min_batch = 1024;
    params.max_forests = 16_384;

    let fd = forest_delta(&g, &in_s, &params, 1);
    let c = t_star(&g).max(3);
    let t_nodes: Vec<u32> = top_degree_nodes(&g, c + 1)
        .into_iter()
        .filter(|&t| !in_s[t as usize])
        .take(c)
        .collect();
    let sd = schur_delta(&g, &in_s, &t_nodes, &params, 1).unwrap();

    // Top-5 overlap between the two estimators.
    let top5 = |deltas: &[f64]| {
        let mut idx: Vec<usize> = (0..n).filter(|&u| !deltas[u].is_nan()).collect();
        idx.sort_by(|&a, &b| deltas[b].partial_cmp(&deltas[a]).unwrap());
        idx.truncate(5);
        idx
    };
    let tf = top5(&fd.deltas);
    let ts = top5(&sd.deltas);
    let overlap = tf.iter().filter(|u| ts.contains(u)).count();
    assert!(
        overlap >= 3,
        "top-5 overlap only {overlap}: {tf:?} vs {ts:?}"
    );

    // And against the exact oracle.
    let exact = cfcc_core::exact::exact_deltas(&g, &[g.max_degree_node().unwrap()]).unwrap();
    let mut sorted = exact.clone();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let exact_best = sorted[0].1;
    for (name, best) in [("forest", fd.best), ("schur", sd.best)] {
        let got = exact.iter().find(|&&(u, _)| u == best).unwrap().1;
        assert!(
            got >= 0.85 * exact_best,
            "{name} argmax {best} has exact gain {got} vs best {exact_best}"
        );
    }
}

/// SchurDelta must sample shorter walks than ForestDelta (Lemma 3.7 with
/// the enlarged root set).
#[test]
fn schur_walks_are_shorter() {
    let mut rng = StdRng::seed_from_u64(47);
    let g = generators::scale_free_with_edges(400, 1600, &mut rng);
    let n = g.num_nodes();
    let mut in_s = vec![false; n];
    in_s[g.max_degree_node().unwrap() as usize] = true;
    let mut params = CfcmParams::with_epsilon(0.3).seed(13);
    params.min_batch = 256;
    params.max_forests = 256; // fixed budget: compare walk cost directly

    let fd = forest_delta(&g, &in_s, &params, 1);
    let c = t_star(&g).max(4);
    let t_nodes: Vec<u32> = top_degree_nodes(&g, c + 1)
        .into_iter()
        .filter(|&t| !in_s[t as usize])
        .take(c)
        .collect();
    let sd = schur_delta(&g, &in_s, &t_nodes, &params, 1).unwrap();
    assert_eq!(fd.forests, sd.forests);
    assert!(
        sd.walk_steps < fd.walk_steps,
        "schur walks {} vs forest walks {}",
        sd.walk_steps,
        fd.walk_steps
    );
}
