//! Cross-crate tests of the unified SDD backend seam: ApproxGreedy must
//! select *identical* groups regardless of which registered backend
//! carries its grounded solves, and the sparse CSR path must run the
//! whole algorithm end to end without the dense layer.

use cfcc_core::approx_greedy::approx_greedy;
use cfcc_core::cfcc::{cfcc_group, cfcc_group_exact};
use cfcc_core::{CfcmParams, SolveSession};
use cfcc_graph::generators;
use cfcc_linalg::SddBackend;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BACKENDS: [SddBackend; 5] = [
    SddBackend::DenseCholesky,
    SddBackend::CgJacobi,
    SddBackend::SparseCg,
    SddBackend::TreePcg,
    SddBackend::LsstPcg,
];

/// ApproxGreedy selects identical groups across all five backends on a
/// ladder of seeded graphs: the backends answer the same solves to a
/// tight tolerance and consume the same RNG stream. The iterative
/// backends carry the 16-column `solve_mat` chunks through blocked
/// multi-RHS PCG, so this also pins blocked == per-column selections.
#[test]
fn approx_greedy_selects_identical_groups_across_backends() {
    for trial in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xBAC ^ trial);
        let g = match trial % 2 {
            0 => generators::barabasi_albert(70 + 10 * trial as usize, 3, &mut rng),
            _ => generators::barabasi_albert(64 + 8 * trial as usize, 2, &mut rng),
        };
        let mut selections = Vec::new();
        for backend in BACKENDS {
            let mut params = CfcmParams::with_epsilon(0.3)
                .seed(11 + trial)
                .backend(backend);
            params.cg_tol = 1e-10;
            let sel = approx_greedy(&g, 3, &params).unwrap();
            selections.push((backend, sel.nodes));
        }
        for (backend, nodes) in &selections[1..] {
            assert_eq!(
                nodes, &selections[0].1,
                "trial {trial}: {backend} disagrees with {}",
                selections[0].0
            );
        }
    }
}

/// The backend choice reaches solvers launched through the session front
/// door (params carry it end to end).
#[test]
fn session_carries_the_backend_to_the_solver() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::barabasi_albert(60, 3, &mut rng);
    let mut params = CfcmParams::with_epsilon(0.3).seed(5);
    params.cg_tol = 1e-10;
    let baseline = SolveSession::new(&g)
        .k(2)
        .solver("approx")
        .params(params.clone())
        .run()
        .unwrap();
    let sparse = SolveSession::new(&g)
        .k(2)
        .solver("approx")
        .params(params.backend(SddBackend::SparseCg))
        .run()
        .unwrap();
    assert_eq!(baseline.nodes, sparse.nodes);
}

/// End-to-end sparse run on a mid-size graph, evaluated through the same
/// sparse backend: the selection quality matches what the dense-backed
/// evaluator reports, and no step needed a dense `n × n` matrix.
#[test]
fn sparse_backend_runs_end_to_end_and_evaluates() {
    let mut rng = StdRng::seed_from_u64(0xE2E);
    let g = generators::barabasi_albert(900, 3, &mut rng);
    let mut params = CfcmParams::with_epsilon(0.3)
        .seed(17)
        .backend(SddBackend::SparseCg);
    params.jl_width = Some(4);
    let sel = approx_greedy(&g, 3, &params).unwrap();
    assert_eq!(sel.nodes.len(), 3);
    let mut eval = params.clone();
    eval.cg_tol = 1e-10;
    let c_sparse = cfcc_group(&g, &sel.nodes, &eval).unwrap();
    let c_dense = cfcc_group_exact(&g, &sel.nodes);
    assert!(
        (c_sparse - c_dense).abs() / c_dense < 1e-7,
        "{c_sparse} vs {c_dense}"
    );
}

/// ApproxGreedy at a scale where the dense path is out of the question:
/// ~50k nodes through `sparse-cg` in O(n + m) memory.
///
/// This test must stay `#[ignore]`d in the default run: `cargo test`
/// builds in debug mode, where the unoptimized SpMV/PCG kernels make
/// this single case run for several minutes — slower than the rest of
/// the suite combined — while proving nothing the release-mode
/// `benches/sdd.rs` ladder (which runs the same 50k-node workload, with
/// a cross-backend selection assertion, on every CI bench step) does not
/// already prove. Run it directly with
/// `cargo test --release -- --ignored backends` when touching the sparse
/// solve path.
#[test]
#[ignore = "debug-mode runtime (minutes); covered in release by benches/sdd.rs in CI"]
fn approx_greedy_50k_nodes_through_sparse_backend() {
    let mut rng = StdRng::seed_from_u64(0x50_000);
    let g = generators::barabasi_albert(50_000, 3, &mut rng);
    let mut params = CfcmParams::with_epsilon(0.3)
        .seed(23)
        .backend(SddBackend::SparseCg);
    params.jl_width = Some(4);
    let sel = approx_greedy(&g, 2, &params).unwrap();
    assert_eq!(sel.nodes.len(), 2);
}
