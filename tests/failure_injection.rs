//! Failure-injection tests: every public entry point confronted with
//! invalid, degenerate, or adversarial inputs must fail loudly and
//! precisely — never hang, never return garbage silently.

use cfcc_core::{
    approx_greedy::approx_greedy, cfcc, edge_addition::greedy_edge_addition, exact::exact_greedy,
    forest_cfcm::forest_cfcm, heuristics, kemeny, optimum::optimum_cfcm, schur_cfcm::schur_cfcm,
    CfcmError, CfcmParams,
};
use cfcc_graph::{generators, Graph, GraphError};

fn disconnected() -> Graph {
    Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap()
}

#[test]
fn all_solvers_reject_bad_k() {
    let g = generators::cycle(8);
    let p = CfcmParams::default();
    for k in [0usize, 8, 100] {
        assert!(
            matches!(exact_greedy(&g, k), Err(CfcmError::InvalidK { .. })),
            "exact k={k}"
        );
        assert!(
            matches!(forest_cfcm(&g, k, &p), Err(CfcmError::InvalidK { .. })),
            "forest k={k}"
        );
        assert!(
            matches!(schur_cfcm(&g, k, &p), Err(CfcmError::InvalidK { .. })),
            "schur k={k}"
        );
        assert!(
            matches!(approx_greedy(&g, k, &p), Err(CfcmError::InvalidK { .. })),
            "approx k={k}"
        );
        assert!(
            matches!(optimum_cfcm(&g, k), Err(CfcmError::InvalidK { .. })),
            "optimum k={k}"
        );
        assert!(heuristics::degree_baseline(&g, k).is_err(), "degree k={k}");
    }
}

#[test]
fn all_solvers_reject_disconnected_graphs() {
    let g = disconnected();
    let p = CfcmParams::default();
    assert_eq!(exact_greedy(&g, 2).unwrap_err(), CfcmError::Disconnected);
    assert_eq!(forest_cfcm(&g, 2, &p).unwrap_err(), CfcmError::Disconnected);
    assert_eq!(schur_cfcm(&g, 2, &p).unwrap_err(), CfcmError::Disconnected);
    assert_eq!(
        approx_greedy(&g, 2, &p).unwrap_err(),
        CfcmError::Disconnected
    );
    assert_eq!(optimum_cfcm(&g, 2).unwrap_err(), CfcmError::Disconnected);
    assert_eq!(
        heuristics::top_cfcc_sampled(&g, 2, &p).unwrap_err(),
        CfcmError::Disconnected
    );
    assert_eq!(
        greedy_edge_addition(&g, &[0], 1, &p).unwrap_err(),
        CfcmError::Disconnected
    );
}

#[test]
fn invalid_epsilon_rejected_before_any_sampling() {
    let g = generators::cycle(10);
    for eps in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
        let p = CfcmParams::with_epsilon(eps);
        assert!(
            matches!(forest_cfcm(&g, 2, &p), Err(CfcmError::InvalidParameter(_))),
            "epsilon {eps} must be rejected"
        );
        assert!(matches!(
            schur_cfcm(&g, 2, &p),
            Err(CfcmError::InvalidParameter(_))
        ));
    }
}

#[test]
fn group_mask_rejects_duplicates_and_out_of_range() {
    let g = generators::cycle(5);
    assert!(matches!(
        cfcc::group_mask(&g, &[1, 1]),
        Err(CfcmError::InvalidParameter(_))
    ));
    assert!(matches!(
        cfcc::group_mask(&g, &[99]),
        Err(CfcmError::InvalidParameter(_))
    ));
    // Evaluation APIs route through the same validation.
    assert!(cfcc::cfcc_group_cg(&g, &[2, 2], 1e-8).is_err());
    assert!(cfcc::cfcc_group_hutchinson(&g, &[9], 4, &CfcmParams::default()).is_err());
}

#[test]
fn kemeny_utilities_validate_roots() {
    let g = generators::cycle(6);
    assert!(kemeny::absorption_cost_sampled(&g, &[], 16, 1, 1).is_err());
    assert!(kemeny::absorption_cost_exact(&g, &[7]).is_err());
}

#[test]
fn graph_construction_errors_are_precise() {
    match Graph::from_edges(3, &[(0, 7)]) {
        Err(GraphError::NodeOutOfRange {
            node: 7,
            num_nodes: 3,
        }) => {}
        other => panic!("unexpected {other:?}"),
    }
    // Edge-list parse errors carry line numbers.
    let err = cfcc_graph::io::read_edge_list("0 1\nbroken\n".as_bytes()).unwrap_err();
    assert!(matches!(err, GraphError::Parse { line: 2, .. }));
}

#[test]
fn single_edge_graph_works_end_to_end() {
    // Smallest legal CFCM instance: n=2, k=1.
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    let sel = exact_greedy(&g, 1).unwrap();
    assert_eq!(sel.nodes.len(), 1);
    let score = cfcc::cfcc_group_exact(&g, &sel.nodes);
    // Tr(L_{-S}^{-1}) = 1 → C(S) = 2.
    assert!((score - 2.0).abs() < 1e-12);
    let p = CfcmParams::with_epsilon(0.3).seed(1);
    let f = forest_cfcm(&g, 1, &p).unwrap();
    assert_eq!(f.nodes.len(), 1);
}

#[test]
fn k_equals_n_minus_one_is_legal_everywhere() {
    let g = generators::cycle(6);
    let p = CfcmParams::with_epsilon(0.3).seed(2);
    for sel in [
        exact_greedy(&g, 5).unwrap(),
        forest_cfcm(&g, 5, &p).unwrap(),
        schur_cfcm(&g, 5, &p).unwrap(),
    ] {
        assert_eq!(sel.nodes.len(), 5);
        let set: std::collections::HashSet<_> = sel.nodes.iter().collect();
        assert_eq!(set.len(), 5);
        assert!(cfcc::cfcc_group_exact(&g, &sel.nodes).is_finite());
    }
}

#[test]
fn tiny_forest_budgets_still_terminate_and_select() {
    // Starve the sampler: one forest per batch, cap of two. The estimates
    // are terrible but the algorithm must terminate with a valid group.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let g = generators::barabasi_albert(30, 2, &mut rng);
    let mut p = CfcmParams::with_epsilon(0.999_9).seed(3);
    p.min_batch = 1;
    p.max_forests = 2;
    let sel = forest_cfcm(&g, 4, &p).unwrap();
    assert_eq!(sel.nodes.len(), 4);
    let set: std::collections::HashSet<_> = sel.nodes.iter().collect();
    assert_eq!(set.len(), 4);
    // Schur path exercises the ridge fallback with such noisy F̃ estimates.
    let sel2 = schur_cfcm(&g, 4, &p).unwrap();
    assert_eq!(sel2.nodes.len(), 4);
}

#[test]
fn edge_addition_saturation_is_graceful() {
    // Complete graph: no edges can be added; the result must be empty,
    // not an error or a phantom edge.
    let g = generators::complete(6);
    let p = CfcmParams::default();
    let res = greedy_edge_addition(&g, &[0], 3, &p).unwrap();
    assert!(res.edges.is_empty());
    assert_eq!(res.trace_before, res.trace_after);
    assert!((res.improvement() - 1.0).abs() < 1e-12);
}

#[test]
fn star_grounded_at_center_keeps_cg_exact() {
    // After grounding the hub, L_{-S} is the identity — CG must converge
    // in one iteration and the trace equal n-1 exactly.
    let g = generators::star(20);
    let trace = cfcc::grounded_trace_cg(&g, &[0], 1e-12).unwrap();
    assert!((trace - 19.0).abs() < 1e-9);
}
