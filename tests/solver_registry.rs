//! Integration tests for the solver registry and the `SolveSession` front
//! door: name/alias resolution, uniform validation, end-to-end solves for
//! every registered solver, progress reporting, and cooperative
//! cancellation with partial results.

use cfcc_core::{
    registry, CancelToken, CfcmError, CfcmParams, IterStats, SolveContext, SolveSession,
};
use cfcc_datasets::karate;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[test]
fn every_registered_name_and_alias_resolves() {
    for solver in registry::all() {
        let found = registry::by_name(solver.name())
            .unwrap_or_else(|| panic!("name {} must resolve", solver.name()));
        assert_eq!(found.name(), solver.name());
        // Case-insensitive.
        let upper = solver.name().to_ascii_uppercase();
        assert_eq!(registry::by_name(&upper).unwrap().name(), solver.name());
    }
    for (alias, canonical) in registry::aliases() {
        let found =
            registry::by_name(alias).unwrap_or_else(|| panic!("alias {alias} must resolve"));
        assert_eq!(found.name(), *canonical, "alias {alias}");
        assert!(
            registry::by_name(canonical).is_some(),
            "alias {alias} points at unregistered solver {canonical}"
        );
    }
    assert!(registry::by_name("no-such-solver").is_none());
}

#[test]
fn all_solvers_select_k_distinct_in_range_nodes_on_karate() {
    let g = karate();
    let k = 3;
    let ctx = SolveContext::new(CfcmParams::with_epsilon(0.3).seed(7));
    for solver in registry::all() {
        assert!(
            solver
                .supports(g.num_nodes(), g.num_edges(), k)
                .is_supported(),
            "{} should support karate-sized problems",
            solver.name()
        );
        let sel = solver
            .solve(&g, k, &ctx)
            .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
        assert_eq!(sel.nodes.len(), k, "{}", solver.name());
        let distinct: std::collections::HashSet<_> = sel.nodes.iter().collect();
        assert_eq!(distinct.len(), k, "{} repeated a node", solver.name());
        assert!(
            sel.nodes.iter().all(|&u| (u as usize) < g.num_nodes()),
            "{} selected out-of-range nodes: {:?}",
            solver.name(),
            sel.nodes
        );
        assert_eq!(
            sel.stats.iterations.len(),
            k,
            "{} must report one IterStats per selected node",
            solver.name()
        );
    }
}

#[test]
fn uniform_validation_rejects_bad_inputs_for_every_solver() {
    let g = karate();
    let bad_eps = SolveContext::new(CfcmParams::with_epsilon(0.0));
    let good = SolveContext::default();
    let disconnected = cfcc_graph::Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
    for solver in registry::all() {
        assert!(
            matches!(solver.solve(&g, 0, &good), Err(CfcmError::InvalidK { .. })),
            "{} must reject k=0",
            solver.name()
        );
        // Historically only the Monte-Carlo solvers validated parameters;
        // the SolveContext entry point now rejects them uniformly.
        assert!(
            matches!(
                solver.solve(&g, 2, &bad_eps),
                Err(CfcmError::InvalidParameter(_))
            ),
            "{} must reject epsilon=0",
            solver.name()
        );
        assert_eq!(
            solver.solve(&disconnected, 2, &good).unwrap_err(),
            CfcmError::Disconnected,
            "{} must reject disconnected graphs",
            solver.name()
        );
    }
}

#[test]
fn progress_callbacks_fire_once_per_iteration() {
    let g = karate();
    let k = 4;
    for solver in registry::all() {
        let seen: Arc<Mutex<Vec<u32>>> = Arc::default();
        let seen2 = seen.clone();
        let sel = SolveSession::new(&g)
            .k(k)
            .solver(solver.name())
            .epsilon(0.3)
            .seed(11)
            .on_progress(move |it: &IterStats| seen2.lock().unwrap().push(it.chosen))
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
        let seen = seen.lock().unwrap();
        assert_eq!(
            *seen,
            sel.nodes,
            "{}: progress must report each iteration's chosen node in order",
            solver.name()
        );
    }
}

#[test]
fn cancellation_stops_a_long_forest_run_early_with_stats_intact() {
    // A workload big enough that iterations take a visible amount of
    // time, but no bigger: the uncancelled comparison run below pays for
    // every iteration, and at 0.5 scale / k = 10 this test alone took
    // ~85 s in debug mode for the same assertions.
    let g = cfcc_datasets::by_name("hamsterster", 0.25).unwrap();
    let k = 6;
    let stop_after = 2usize;

    let token = CancelToken::new();
    let t2 = token.clone();
    let fired = Arc::new(AtomicUsize::new(0));
    let f2 = fired.clone();
    let start = Instant::now();
    let sel = SolveSession::new(&g)
        .k(k)
        .solver("forest")
        .epsilon(0.2)
        .seed(3)
        .cancel_token(token)
        .on_progress(move |_| {
            if f2.fetch_add(1, Ordering::Relaxed) + 1 == stop_after {
                t2.cancel();
            }
        })
        .run()
        .unwrap();
    let elapsed = start.elapsed();

    // Cancelled mid-run: the partial selection has exactly the iterations
    // that completed, with their stats intact.
    assert_eq!(sel.nodes.len(), stop_after, "elapsed {elapsed:?}");
    assert_eq!(sel.stats.iterations.len(), stop_after);
    assert_eq!(fired.load(Ordering::Relaxed), stop_after);
    for (node, it) in sel.nodes.iter().zip(&sel.stats.iterations) {
        assert_eq!(*node, it.chosen);
    }
    assert!(sel.stats.total_forests() > 0);
    assert!(sel.stats.total_seconds() > 0.0);

    // "Promptly": a full k=6 run does ~3x the sampling work of the two
    // completed iterations; the cancelled run must not have done it. A
    // direct uncancelled run of the same prefix length bounds the time
    // loosely from above (same seeds, same workload).
    let full = SolveSession::new(&g)
        .k(k)
        .solver("forest")
        .epsilon(0.2)
        .seed(3)
        .run()
        .unwrap();
    assert_eq!(full.nodes.len(), k);
    assert!(
        sel.stats.total_forests() < full.stats.total_forests() / 2,
        "cancelled run sampled {} forests vs {} for the full run",
        sel.stats.total_forests(),
        full.stats.total_forests()
    );
    // The cancelled prefix matches the full run's prefix (same seed).
    assert_eq!(sel.nodes, full.nodes[..stop_after]);
}

#[test]
fn deadline_yields_partial_selection() {
    let g = karate();
    // An already-elapsed deadline: the first iteration still completes
    // (cooperative checks sit at iteration boundaries), the rest are
    // skipped.
    let sel = SolveSession::new(&g)
        .k(5)
        .solver("schur")
        .epsilon(0.3)
        .deadline(Instant::now() - Duration::from_millis(1))
        .run()
        .unwrap();
    assert_eq!(sel.nodes.len(), 1);
    assert_eq!(sel.stats.iterations.len(), 1);
}

#[test]
fn session_reports_unknown_solver_and_capability_limits() {
    let g = karate();
    assert!(matches!(
        SolveSession::new(&g).k(2).solver("bogus").run(),
        Err(CfcmError::UnknownSolver(_))
    ));
    // Optimum's capability wall (k > 5) surfaces as Unsupported.
    assert!(matches!(
        SolveSession::new(&g).k(6).solver("optimum").run(),
        Err(CfcmError::Unsupported(_))
    ));
}

#[test]
fn session_builder_matches_free_function_results() {
    let g = karate();
    let params = CfcmParams::with_epsilon(0.25).seed(9);
    let via_session = SolveSession::new(&g)
        .k(3)
        .solver("schurcfcm") // alias
        .params(params.clone())
        .run()
        .unwrap();
    let via_free = cfcc_core::schur_cfcm::schur_cfcm(&g, 3, &params).unwrap();
    assert_eq!(via_session.nodes, via_free.nodes);
}
