//! Integration tests for the beyond-the-paper extensions (DESIGN.md §9):
//! edge-addition CFCM and the random-walk cost utilities, exercised
//! together with the core pipeline on real (Karate) and proxy datasets.

use cfcc_core::{
    cfcc, edge_addition, exact::exact_greedy, kemeny, schur_cfcm::schur_cfcm, CfcmParams,
};
use cfcc_datasets::karate;

#[test]
fn edge_addition_improves_a_cfcm_selection() {
    // Select a group with SchurCFCM, then reinforce it with 3 new edges:
    // C(S) must strictly improve and match the predicted trace drops.
    let g = karate();
    let params = CfcmParams::with_epsilon(0.2).seed(23);
    let sel = schur_cfcm(&g, 3, &params).unwrap();
    let before = cfcc::cfcc_group_exact(&g, &sel.nodes);
    let res = edge_addition::greedy_edge_addition(&g, &sel.nodes, 3, &params).unwrap();
    assert_eq!(res.edges.len(), 3);
    assert!(res.improvement() > 1.0);
    let after = g.num_nodes() as f64 / res.trace_after;
    assert!(after > before, "C(S) {before} -> {after}");
    // All additions attach the group to previously non-adjacent nodes.
    for e in &res.edges {
        assert!(!g.has_edge(e.group_end, e.outside_end));
    }
}

#[test]
fn edge_gains_prefer_electrically_remote_nodes() {
    // On a barbell grounded in one clique, the best new edge reaches into
    // the far clique (largest resistance to S).
    let g = cfcc_graph::generators::barbell(6, 4);
    let group = vec![0u32, 1];
    let params = CfcmParams::default();
    let res = edge_addition::greedy_edge_addition(&g, &group, 1, &params).unwrap();
    let far_clique: Vec<u32> = (10..16).collect();
    assert!(
        far_clique.contains(&res.edges[0].outside_end),
        "expected a far-clique endpoint, got {:?}",
        res.edges[0]
    );
}

#[test]
fn absorption_cost_explains_schur_speedup_on_karate() {
    // Lemma 3.7 chain: exact absorption cost with S alone exceeds the cost
    // with S ∪ T, and the sampled Wilson costs agree with both.
    let g = karate();
    let exact1 = exact_greedy(&g, 1).unwrap();
    let s = exact1.nodes.clone();
    let mut st = s.clone();
    for &t in cfcc_core::params::top_degree_nodes(&g, 4).iter() {
        if !st.contains(&t) {
            st.push(t);
        }
    }
    let cost_s = kemeny::absorption_cost_exact(&g, &s).unwrap();
    let cost_st = kemeny::absorption_cost_exact(&g, &st).unwrap();
    assert!(cost_st < cost_s);
    let sampled_s = kemeny::absorption_cost_sampled(&g, &s, 8000, 7, 2).unwrap();
    let sampled_st = kemeny::absorption_cost_sampled(&g, &st, 8000, 7, 2).unwrap();
    assert!(
        (sampled_s - cost_s).abs() / cost_s < 0.08,
        "{sampled_s} vs {cost_s}"
    );
    assert!(
        (sampled_st - cost_st).abs() / cost_st < 0.08,
        "{sampled_st} vs {cost_st}"
    );
}

#[test]
fn kemeny_constant_scales_with_bottlenecks() {
    // A barbell mixes far slower than a same-size scale-free graph.
    let barbell = cfcc_graph::generators::barbell(15, 2);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let sf = cfcc_graph::generators::scale_free_with_edges(32, 107, &mut rng);
    let k_barbell = kemeny::kemeny_constant_exact(&barbell);
    let k_sf = kemeny::kemeny_constant_exact(&sf);
    assert!(
        k_barbell > 2.0 * k_sf,
        "barbell K={k_barbell} should dwarf scale-free K={k_sf}"
    );
}

#[test]
fn sampled_edge_gains_available_at_scale() {
    let g = cfcc_datasets::by_name("dolphins", 1.0).unwrap();
    let mut params = CfcmParams::with_epsilon(0.2).seed(9);
    params.min_batch = 1024;
    params.max_forests = 1024;
    let gains = edge_addition::sampled_edge_gains(&g, &[0, 5], &params).unwrap();
    assert_eq!(gains.len(), g.num_nodes() - 2);
    assert!(gains.iter().all(|&(_, g)| g.is_finite() && g >= 0.0));
}
