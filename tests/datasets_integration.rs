//! Integration of the dataset suite with the solvers: every registry entry
//! generates a usable workload and the full pipeline runs on representative
//! proxies at reduced scale.

use cfcc_core::{
    cfcc, forest_cfcm::forest_cfcm, params::t_star, schur_cfcm::schur_cfcm, CfcmParams,
};
use cfcc_graph::diameter::diameter_double_sweep;

#[test]
fn all_small_specs_generate_connected_graphs() {
    for spec in cfcc_datasets::all_specs() {
        if spec.paper_nodes > 10_000 {
            continue; // large tiers covered at reduced scale below
        }
        let g = cfcc_datasets::generate(spec, 1.0);
        assert!(g.is_connected(), "{} must be connected", spec.name);
        assert_eq!(g.num_nodes(), spec.paper_nodes, "{} node count", spec.name);
    }
}

#[test]
fn large_specs_generate_at_reduced_scale() {
    for name in ["gowalla", "com-dblp", "skitter"] {
        let spec = cfcc_datasets::spec(name).unwrap();
        let scale = 2_000.0 / spec.paper_nodes as f64;
        let g = cfcc_datasets::generate(spec, scale);
        assert!(g.is_connected(), "{name} proxy must be connected");
        assert!(g.num_nodes() >= 1_000);
        // Density is preserved under scaling.
        let paper_density = spec.paper_edges as f64 / spec.paper_nodes as f64;
        let got_density = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (got_density - paper_density).abs() / paper_density < 0.25,
            "{name}: density {got_density} vs paper {paper_density}"
        );
    }
}

#[test]
fn road_proxy_is_structurally_roadlike() {
    let g = cfcc_datasets::by_name("euroroads", 1.0).unwrap();
    // Euroroads in the paper: n=1039, m=1305, τ=62, max degree small.
    assert_eq!(g.num_nodes(), 1039);
    assert!(g.max_degree() <= 12, "road max degree {}", g.max_degree());
    assert!(diameter_double_sweep(&g, 0, 4) >= 25);
    // |T*| should be tiny, like the paper's 7.
    let c = t_star(&g);
    assert!(c <= 25, "|T*|={c} too large for a road network");
}

#[test]
fn scale_free_proxy_t_star_in_paper_ballpark() {
    // Hamsterster paper |T*| = 58 at n=2000; the proxy should land within
    // a factor ~3 (topology-matched, not edge-identical).
    let g = cfcc_datasets::by_name("hamsterster", 1.0).unwrap();
    let c = t_star(&g);
    assert!((15..=180).contains(&c), "|T*|={c}");
}

#[test]
fn end_to_end_on_euroroads_proxy() {
    // Half-scale proxy (n ≈ 520) and dense exact evaluation: the
    // full-scale variant of this test evaluated three groups through
    // per-node CG solves on a large-diameter road network — ~3 minutes of
    // debug-mode test time for the same assertions. Road structure (low
    // max degree, long diameter) is preserved under dataset scaling, and
    // the release-mode bench harness covers the full-scale graphs.
    let g = cfcc_datasets::by_name("euroroads", 0.5).unwrap();
    let mut params = CfcmParams::with_epsilon(0.3).seed(17);
    // Half the default forest budget: random walks mix slowly on road
    // topologies, and the adaptive stop rarely needs the full ceiling for
    // the coarse assertions below.
    params.max_forests = 2048;
    let k = 5;
    let forest = forest_cfcm(&g, k, &params).unwrap();
    let schur = schur_cfcm(&g, k, &params).unwrap();
    let cf = cfcc::cfcc_group_exact(&g, &forest.nodes);
    let cs = cfcc::cfcc_group_exact(&g, &schur.nodes);
    // Both must decisively beat a random-ish group of the same size.
    let arbitrary: Vec<u32> = (100..100 + k as u32).collect();
    let ca = cfcc::cfcc_group_exact(&g, &arbitrary);
    assert!(cf > ca, "forest {cf} vs arbitrary {ca}");
    assert!(cs > ca, "schur {cs} vs arbitrary {ca}");
    // And land within 10% of each other.
    assert!(
        (cf - cs).abs() / cf.max(cs) < 0.1,
        "forest {cf} vs schur {cs}"
    );
}

#[test]
fn end_to_end_on_scaled_social_proxy() {
    let spec = cfcc_datasets::spec("facebook").unwrap();
    let g = cfcc_datasets::generate(spec, 0.2); // ~800 nodes, density kept
    let params = CfcmParams::with_epsilon(0.3).seed(19);
    let sel = schur_cfcm(&g, 8, &params).unwrap();
    assert_eq!(sel.nodes.len(), 8);
    let score = cfcc::cfcc_group_exact(&g, &sel.nodes);
    let exact = cfcc_core::exact::exact_greedy(&g, 8).unwrap();
    let best = cfcc::cfcc_group_exact(&g, &exact.nodes);
    assert!(score >= 0.95 * best, "schur {score} vs exact-greedy {best}");
}
