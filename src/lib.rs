//! # cfcc
//!
//! Workspace facade for the CFCM reproduction (*"Fast Maximization of
//! Current Flow Group Closeness Centrality"*, Xia & Zhang, ICDE 2025):
//! re-exports every sub-crate under one roof and hosts the cross-crate
//! integration tests (`tests/`) and runnable examples (`examples/`).
//!
//! Start with [`core::SolveSession`] — the builder front door to every
//! solver — or see `cfcc-core`'s crate docs for the full API tour.

#![forbid(unsafe_code)]

pub use cfcc_core as core;
pub use cfcc_datasets as datasets;
pub use cfcc_forest as forest;
pub use cfcc_graph as graph;
pub use cfcc_linalg as linalg;
pub use cfcc_util as util;
