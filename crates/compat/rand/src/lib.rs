//! Offline shim for the `rand` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate vendors the *subset* of the `rand` 0.8 API the workspace actually
//! uses: [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], [`rngs::SmallRng`], and
//! [`seq::SliceRandom::shuffle`]. Call sites compile unchanged against the
//! real crate; swap the `[workspace.dependencies] rand` entry when a
//! registry is available.
//!
//! Both RNGs are xoshiro256++ seeded through SplitMix64 (the same
//! construction `rand 0.8`'s `SmallRng::seed_from_u64` uses). Streams are
//! deterministic per seed, which is all the workspace relies on — every
//! consumer seeds explicitly and asserts statistical, not bitwise,
//! properties.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from all bit patterns (`rand`'s `Standard`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling (`rand`'s `SampleUniform`).
pub trait UniformSample: Sized {
    /// Draw uniformly from `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased bounded sampling by Lemire's widening-multiply rejection
/// method (<https://arxiv.org/abs/1805.10941>): `x·s` maps a 64-bit draw
/// onto `s` buckets of size `⌊2⁶⁴/s⌋` plus a short remainder; draws whose
/// low 64 bits land in the remainder (`< 2⁶⁴ mod s`, computed branch-free
/// as `s.wrapping_neg() % s`) are rejected and redrawn. The common path is
/// one multiply with no division; the rejection loop runs with probability
/// `< s/2⁶⁴` — this sits inside every Wilson-walk neighbor pick, so the
/// hot path stays a single widening multiply.
#[inline]
fn lemire_u64<R: RngCore + ?Sized>(rng: &mut R, s: u64) -> u64 {
    debug_assert!(s > 0);
    let mut m = (rng.next_u64() as u128).wrapping_mul(s as u128);
    if (m as u64) < s {
        // Threshold = 2⁶⁴ mod s; only computed on the rare boundary case.
        let threshold = s.wrapping_neg() % s;
        while (m as u64) < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(s as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                // Half-open span always fits u64 (even for 64-bit types).
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + lemire_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full state from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the core generator behind both shim RNGs.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

/// Named RNG types matching `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    macro_rules! wrapper_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone)]
            pub struct $name(Xoshiro256PlusPlus);

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    Self(Xoshiro256PlusPlus::seed_from_u64(seed))
                }
            }
        };
    }

    wrapper_rng!(
        /// Drop-in for `rand::rngs::StdRng` (not cryptographic in this shim).
        StdRng
    );
    wrapper_rng!(
        /// Drop-in for `rand::rngs::SmallRng` (xoshiro256++, as upstream).
        SmallRng
    );
}

/// Sequence-related helpers matching `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice extension trait (shuffle only).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let u = rng.gen_range(0u32..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn non_power_of_two_ranges_are_uniform() {
        // Pearson χ² over a span that does not divide 2⁶⁴ — the case the
        // rejection step exists for. 6 buckets, 120k draws: χ² (5 dof)
        // should stay far below 30 (p ≈ 1e-5) for a sound sampler.
        let mut rng = SmallRng::seed_from_u64(0x1e31);
        let draws = 120_000usize;
        let mut counts = [0f64; 6];
        for _ in 0..draws {
            counts[rng.gen_range(0usize..6)] += 1.0;
        }
        let expect = draws as f64 / 6.0;
        let chi2: f64 = counts.iter().map(|c| (c - expect).powi(2) / expect).sum();
        assert!(chi2 < 30.0, "χ²={chi2} counts={counts:?}");
        // Signed ranges share the same path.
        let mut lo_hits = 0usize;
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
            if v == -3 {
                lo_hits += 1;
            }
        }
        assert!(lo_hits > 0, "range endpoints must be reachable");
    }

    /// Scripted generator for deterministic rejection-path coverage.
    struct SeqRng {
        vals: Vec<u64>,
        at: usize,
    }

    impl super::RngCore for SeqRng {
        fn next_u64(&mut self) -> u64 {
            let v = self.vals[self.at];
            self.at += 1;
            v
        }
    }

    #[test]
    fn lemire_rejects_remainder_zone_draws() {
        // For s = 6, threshold = 2⁶⁴ mod 6 = 4: a draw x with
        // low64(x·6) < 4 must be discarded and the next draw used.
        let s = 6u64;
        let threshold = s.wrapping_neg() % s;
        assert_eq!(threshold, 4);
        let rejected = (0..=u64::MAX >> 1)
            .find(|&x| ((x as u128 * s as u128) as u64) < threshold)
            .unwrap();
        let accepted = 0x1234_5678_9abc_def0u64;
        assert!(((accepted as u128 * s as u128) as u64) >= threshold);
        let mut rng = SeqRng {
            vals: vec![rejected, accepted],
            at: 0,
        };
        let got = super::lemire_u64(&mut rng, s);
        assert_eq!(rng.at, 2, "the remainder-zone draw must be rejected");
        assert_eq!(got, ((accepted as u128 * s as u128) >> 64) as u64);
        // An in-zone draw is used directly.
        let mut rng = SeqRng {
            vals: vec![accepted],
            at: 0,
        };
        assert_eq!(
            super::lemire_u64(&mut rng, s),
            ((accepted as u128 * s as u128) >> 64) as u64
        );
        assert_eq!(rng.at, 1);
    }

    #[test]
    fn bool_and_bernoulli() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads));
        let biased = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(biased > 8_500);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
