//! Offline shim for the `rand` crate.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate vendors the *subset* of the `rand` 0.8 API the workspace actually
//! uses: [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], [`rngs::SmallRng`], and
//! [`seq::SliceRandom::shuffle`]. Call sites compile unchanged against the
//! real crate; swap the `[workspace.dependencies] rand` entry when a
//! registry is available.
//!
//! Both RNGs are xoshiro256++ seeded through SplitMix64 (the same
//! construction `rand 0.8`'s `SmallRng::seed_from_u64` uses). Streams are
//! deterministic per seed, which is all the workspace relies on — every
//! consumer seeds explicitly and asserts statistical, not bitwise,
//! properties.

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from all bit patterns (`rand`'s `Standard`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling (`rand`'s `SampleUniform`).
pub trait UniformSample: Sized {
    /// Draw uniformly from `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the bias at
                // 64-bit spans is far below anything the workspace observes.
                let hi128 = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                (lo as i128 + hi128 as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full state from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the core generator behind both shim RNGs.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

/// Named RNG types matching `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    macro_rules! wrapper_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone)]
            pub struct $name(Xoshiro256PlusPlus);

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    Self(Xoshiro256PlusPlus::seed_from_u64(seed))
                }
            }
        };
    }

    wrapper_rng!(
        /// Drop-in for `rand::rngs::StdRng` (not cryptographic in this shim).
        StdRng
    );
    wrapper_rng!(
        /// Drop-in for `rand::rngs::SmallRng` (xoshiro256++, as upstream).
        SmallRng
    );
}

/// Sequence-related helpers matching `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice extension trait (shuffle only).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let u = rng.gen_range(0u32..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn bool_and_bernoulli() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads));
        let biased = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(biased > 8_500);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
