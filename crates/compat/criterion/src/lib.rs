//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! subset of the criterion 0.5 API the microbenchmarks use: [`Criterion`],
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It times each closure over the configured
//! sample count and prints mean/min wall-clock per iteration — no
//! statistics engine, no HTML reports. Swap the workspace dependency for
//! the real crate when a registry is available; bench sources compile
//! unchanged.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once per sample, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.results);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.results);
        self
    }

    fn report(&mut self, id: &str, results: &[Duration]) {
        let _ = &self.criterion; // group output is plain stdout in the shim
        if results.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = results.iter().sum();
        let mean = total / results.len() as u32;
        let min = results.iter().min().expect("non-empty");
        println!(
            "{}/{id}: mean {:>12} min {:>12} ({} samples)",
            self.name,
            fmt_duration(mean),
            fmt_duration(*min),
            results.len()
        );
    }

    /// Finish the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Declare a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("counter", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // One warm-up call plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("roots", 64).to_string(), "roots/64");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).contains("us"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains("s"));
    }
}
