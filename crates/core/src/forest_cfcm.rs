//! ForestCFCM (paper Algorithm 3): greedy CFCM with forest-sampled
//! marginal gains — the paper's first contribution.

use crate::context::SolveContext;
use crate::first_phase::first_phase;
use crate::forest_delta::forest_delta;
use crate::result::{IterStats, RunStats, Selection};
use crate::solver::{CfcmSolver, SolverKind};
use crate::{CfcmError, CfcmParams};
use cfcc_graph::Graph;
use cfcc_util::Stopwatch;

/// Greedy CFCM via rooted spanning-forest sampling.
///
/// Approximation factor `1 − (k/(k−1))·(1/e) − ε` with probability
/// `1 − 1/n` (paper Theorem 3.11), in nearly-linear expected time for
/// real-world graphs.
///
/// Thin wrapper over [`forest_cfcm_ctx`] with a plain-parameter context.
pub fn forest_cfcm(g: &Graph, k: usize, params: &CfcmParams) -> Result<Selection, CfcmError> {
    forest_cfcm_ctx(g, k, &SolveContext::from_params(params))
}

/// Context-aware ForestCFCM: honors cancellation/deadline (returning the
/// partial selection accumulated so far) and reports per-iteration progress.
pub fn forest_cfcm_ctx(g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
    ctx.check_problem(g, k)?;
    let params = &ctx.params;
    let mut stats = RunStats::default();
    let mut sw = Stopwatch::start();

    // Iteration 1: argmin L†_uu by sampling (Lines 1–14).
    let fp = first_phase(g, params);
    let mut in_s = vec![false; g.num_nodes()];
    in_s[fp.chosen as usize] = true;
    let mut nodes = vec![fp.chosen];
    let it = IterStats {
        chosen: fp.chosen,
        forests: fp.forests,
        walk_steps: fp.walk_steps,
        seconds: sw.lap().as_secs_f64(),
        gain: f64::NAN,
    };
    ctx.emit(&it);
    stats.iterations.push(it);

    // Iterations 2..k: greedy argmax of Δ'(u, S) (Lines 15–18).
    for i in 1..k {
        if ctx.interrupted() {
            break;
        }
        let est = forest_delta(g, &in_s, params, i as u64);
        in_s[est.best as usize] = true;
        nodes.push(est.best);
        let it = IterStats {
            chosen: est.best,
            forests: est.forests,
            walk_steps: est.walk_steps,
            seconds: sw.lap().as_secs_f64(),
            gain: est.deltas[est.best as usize],
        };
        ctx.emit(&it);
        stats.iterations.push(it);
    }
    Ok(Selection { nodes, stats })
}

/// Registry entry for ForestCFCM (paper Algorithm 3).
pub struct ForestSolver;

impl CfcmSolver for ForestSolver {
    fn name(&self) -> &'static str {
        "forest"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::MonteCarlo
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        forest_cfcm_ctx(g, k, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfcc::cfcc_group_exact;
    use crate::exact::exact_greedy;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_inputs() {
        let g = generators::cycle(5);
        assert!(forest_cfcm(&g, 0, &CfcmParams::default()).is_err());
        let bad = CfcmParams {
            epsilon: 2.0,
            ..Default::default()
        };
        assert!(forest_cfcm(&g, 2, &bad).is_err());
    }

    #[test]
    fn selects_k_distinct_nodes() {
        let mut rng = StdRng::seed_from_u64(19);
        let g = generators::barabasi_albert(60, 2, &mut rng);
        let sel = forest_cfcm(&g, 5, &CfcmParams::with_epsilon(0.3).seed(1)).unwrap();
        assert_eq!(sel.nodes.len(), 5);
        let set: std::collections::HashSet<_> = sel.nodes.iter().collect();
        assert_eq!(set.len(), 5, "nodes must be distinct: {:?}", sel.nodes);
        assert_eq!(sel.stats.iterations.len(), 5);
        assert!(sel.stats.total_forests() > 0);
    }

    #[test]
    fn quality_close_to_exact_greedy() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = generators::barabasi_albert(80, 3, &mut rng);
        let k = 4;
        let exact = exact_greedy(&g, k).unwrap();
        let exact_c = cfcc_group_exact(&g, &exact.nodes);
        let sel = forest_cfcm(&g, k, &CfcmParams::with_epsilon(0.15).seed(2)).unwrap();
        let got_c = cfcc_group_exact(&g, &sel.nodes);
        assert!(
            got_c >= 0.93 * exact_c,
            "ForestCFCM C(S)={got_c} too far below exact greedy {exact_c}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let p = CfcmParams::with_epsilon(0.3).seed(11);
        let a = forest_cfcm(&g, 3, &p).unwrap();
        let b = forest_cfcm(&g, 3, &p).unwrap();
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn star_selects_hub_first() {
        let g = generators::star(40);
        let sel = forest_cfcm(&g, 2, &CfcmParams::with_epsilon(0.3)).unwrap();
        assert_eq!(sel.nodes[0], 0);
    }
}
