//! Schur complement machinery (paper §IV-A).
//!
//! * exact dense Schur complements for test oracles (Definition 4.1,
//!   Lemma 4.3);
//! * the estimated Schur complement `S̃_T(L_{-S})` assembled from empirical
//!   rooted probabilities via Eq. (15);
//! * robust inversion: the estimate is symmetrized and Cholesky-factorized,
//!   with an escalating ridge fallback — sampling noise can push the
//!   estimate indefinite even though the true Schur complement is SPD.

use crate::CfcmError;
use cfcc_forest::rooted::RootedCounts;
use cfcc_graph::{Graph, Node};
use cfcc_linalg::dense::DenseMatrix;
use cfcc_linalg::sdd::{self, SddBackend, SddOptions};

/// Exact Schur complement `S_T(M) = M_TT − M_TU · M_UU^{-1} · M_UT` of a
/// dense matrix over index sets `t_idx` (kept) and `u_idx` (eliminated).
///
/// Factor-once/solve-many: `M_UU` is LU-factorized and applied to the
/// `|T|`-column block `M_UT` by two blocked triangular solves, then a
/// single GEMM accumulates `−M_TU · X` — no explicit `M_UU^{-1}` and no
/// `|U| × |U|` intermediate products. Degenerate inputs (singular `M_UU`)
/// surface as [`CfcmError::Numerical`] instead of panicking.
pub fn schur_complement_dense(
    m: &DenseMatrix,
    t_idx: &[usize],
    u_idx: &[usize],
) -> Result<DenseMatrix, CfcmError> {
    schur_complement_dense_threaded(m, t_idx, u_idx, 1)
}

/// [`schur_complement_dense`] with `threads` scoped row panels in the
/// blocked solves and the final GEMM.
pub fn schur_complement_dense_threaded(
    m: &DenseMatrix,
    t_idx: &[usize],
    u_idx: &[usize],
    threads: usize,
) -> Result<DenseMatrix, CfcmError> {
    let t = t_idx.len();
    let u = u_idx.len();
    let mut mtt = DenseMatrix::zeros(t, t);
    let mut mtu = DenseMatrix::zeros(t, u);
    let mut mut_ = DenseMatrix::zeros(u, t);
    let mut muu = DenseMatrix::zeros(u, u);
    for (i, &ti) in t_idx.iter().enumerate() {
        for (j, &tj) in t_idx.iter().enumerate() {
            mtt.set(i, j, m.get(ti, tj));
        }
        for (j, &uj) in u_idx.iter().enumerate() {
            mtu.set(i, j, m.get(ti, uj));
        }
    }
    for (i, &ui) in u_idx.iter().enumerate() {
        for (j, &tj) in t_idx.iter().enumerate() {
            mut_.set(i, j, m.get(ui, tj));
        }
        for (j, &uj) in u_idx.iter().enumerate() {
            muu.set(i, j, m.get(ui, uj));
        }
    }
    if u == 0 {
        return Ok(mtt);
    }
    let lu = muu
        .lu()
        .map_err(|e| CfcmError::Numerical(format!("M_UU not invertible: {e}")))?;
    // X = M_UU^{-1} M_UT, then S = M_TT − M_TU · X.
    let x = lu.solve_mat_threaded(&mut_, threads);
    mtt.gemm_acc(&mtu, &x, -1.0, threads);
    Ok(mtt)
}

/// Exact Schur complement `S_T(L_{-S})` of the *grounded Laplacian*
/// straight from the graph, through the pluggable SDD backend — never
/// densifying `L_{-S}` itself.
///
/// By Lemma 4.3, `L_UU` (with `U = V ∖ (S ∪ T)`) is itself the grounded
/// Laplacian `L_{-(S∪T)}`, so the correction term `L_TU · L_UU^{-1} · L_UT`
/// is one backend factorization plus a `|T|`-column `solve_mat` against
/// the sparse incidence columns `L_UT`. Peak memory on the iterative
/// backends is `O(n·|T| + m)` — the seam a sketched or combinatorially
/// preconditioned Schur pipeline plugs into.
pub fn schur_complement_grounded(
    g: &Graph,
    in_s: &[bool],
    t_nodes: &[Node],
    backend: SddBackend,
    opts: &SddOptions,
) -> Result<DenseMatrix, CfcmError> {
    let n = g.num_nodes();
    if in_s.len() != n {
        return Err(CfcmError::InvalidParameter(format!(
            "grounded mask has length {}, graph has {n} nodes",
            in_s.len()
        )));
    }
    let t = t_nodes.len();
    let mut tpos = vec![usize::MAX; n];
    let mut in_st = in_s.to_vec();
    for (j, &tj) in t_nodes.iter().enumerate() {
        if tj as usize >= n {
            return Err(CfcmError::InvalidParameter(format!(
                "node {tj} in T out of range"
            )));
        }
        if in_s[tj as usize] {
            return Err(CfcmError::InvalidParameter(format!(
                "node {tj} is in both S and T"
            )));
        }
        if tpos[tj as usize] != usize::MAX {
            return Err(CfcmError::InvalidParameter(format!(
                "duplicate node {tj} in T"
            )));
        }
        tpos[tj as usize] = j;
        in_st[tj as usize] = true;
    }
    // L_TT of the grounded system: full degrees on the diagonal, −1 for
    // intra-T edges (S-columns are removed by grounding).
    let mut sc = DenseMatrix::zeros(t, t);
    for (i, &ti) in t_nodes.iter().enumerate() {
        sc.set(i, i, g.degree(ti) as f64);
        for &v in g.neighbors(ti) {
            let j = tpos[v as usize];
            if j != usize::MAX {
                sc.add_to(i, j, -1.0);
            }
        }
    }
    let u_count = in_st.iter().filter(|&&s| !s).count();
    if u_count == 0 {
        return Ok(sc);
    }
    let mut factor = sdd::factor(g, &in_st, backend, opts)?;
    // L_UT: one sparse incidence column per t (−1 at each U-neighbor).
    let mut rhs = DenseMatrix::zeros(u_count, t);
    for (j, &tj) in t_nodes.iter().enumerate() {
        for &v in g.neighbors(tj) {
            if let Some(cv) = factor.compact_of(v) {
                rhs.set(cv, j, -1.0);
            }
        }
    }
    let x = factor.solve_mat(&rhs)?; // L_UU^{-1} L_UT
                                     // S −= L_TU · X; the row L_TU[i] is −1 at each U-neighbor of t_i.
    for (i, &ti) in t_nodes.iter().enumerate() {
        for &v in g.neighbors(ti) {
            if let Some(cv) = factor.compact_of(v) {
                for j in 0..t {
                    sc.add_to(i, j, x.get(cv, j));
                }
            }
        }
    }
    Ok(sc)
}

/// Estimated Schur complement `S̃_T(L_{-S})` from rooted counts (Eq. 15):
///
/// ```text
/// S̃_ij = L_{t_i t_j} − Σ_{(u, t_i) ∈ E, u ∈ U} F̃_{u t_j}
/// ```
///
/// `in_root` marks `S ∪ T`; `t_nodes` orders the columns/rows.
pub fn estimated_schur(
    g: &Graph,
    in_root: &[bool],
    t_nodes: &[Node],
    rooted: &RootedCounts,
    num_forests: u64,
) -> DenseMatrix {
    let t = t_nodes.len();
    assert!(num_forests > 0);
    let inv_n = 1.0 / num_forests as f64;
    let mut sigma = DenseMatrix::zeros(t, t);
    for (i, &ti) in t_nodes.iter().enumerate() {
        sigma.set(i, i, g.degree(ti) as f64);
        for &v in g.neighbors(ti) {
            if let Some(j) = rooted.index().index_of(v) {
                // v ∈ T: the Laplacian off-diagonal −1 survives grounding.
                sigma.add_to(i, j, -1.0);
            } else if !in_root[v as usize] {
                // v ∈ U: subtract its empirical rooted-probability row.
                for &(tj, count) in rooted.entries(v) {
                    sigma.add_to(i, tj as usize, -(count as f64) * inv_n);
                }
            }
            // v ∈ S: column removed by grounding — contributes nothing.
        }
    }
    sigma
}

/// Symmetrize and invert an estimated Schur complement, escalating a ridge
/// until Cholesky succeeds. Returns the inverse and the ridge used.
pub fn invert_estimated_schur(mut sigma: DenseMatrix) -> Result<(DenseMatrix, f64), CfcmError> {
    sigma.symmetrize();
    let t = sigma.rows();
    let scale = (0..t)
        .map(|i| sigma.get(i, i).abs())
        .fold(1e-12f64, f64::max);
    let mut ridge = 0.0f64;
    for attempt in 0..14 {
        let mut trial = sigma.clone();
        if ridge > 0.0 {
            trial.add_ridge(ridge);
        }
        match trial.cholesky() {
            Ok(ch) => return Ok((ch.inverse(), ridge)),
            Err(_) => {
                // Escalate from a negligible perturbation up past the
                // diagonal scale (Gershgorin guarantees success by then).
                ridge = if attempt == 0 {
                    1e-10 * scale
                } else {
                    ridge * 30.0
                };
            }
        }
    }
    Err(CfcmError::Numerical(
        "estimated Schur complement stayed indefinite after ridge escalation".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_forest::estimators::{DiagMode, ElectricalAccumulator};
    use cfcc_forest::rooted::RootIndex;
    use cfcc_forest::sampler::{absorb_batch, SamplerConfig};
    use cfcc_graph::generators;
    use cfcc_linalg::laplacian::{laplacian_dense, laplacian_submatrix_dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Lemma 4.3: `S_T(L_{-S}) = (S_{S∪T}(L))_{-S}`.
    #[test]
    fn schur_of_submatrix_equals_submatrix_of_schur() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::barabasi_albert(18, 2, &mut rng);
        let n = g.num_nodes();
        let s = vec![0usize, 4];
        let t = [1usize, 2, 7];
        let u: Vec<usize> = (0..n)
            .filter(|i| !s.contains(i) && !t.contains(i))
            .collect();

        // Left side: S_T(L_{-S}) — indices of T within L_{-S}.
        let mut in_s = vec![false; n];
        for &x in &s {
            in_s[x] = true;
        }
        let (l_minus_s, keep) = laplacian_submatrix_dense(&g, &in_s);
        let pos = |node: usize| keep.iter().position(|&x| x as usize == node).unwrap();
        let t_in_sub: Vec<usize> = t.iter().map(|&x| pos(x)).collect();
        let u_in_sub: Vec<usize> = u.iter().map(|&x| pos(x)).collect();
        let left = schur_complement_dense(&l_minus_s, &t_in_sub, &u_in_sub).unwrap();

        // Right side: (S_{S∪T}(L))_{-S} — Schur of the full Laplacian onto
        // S∪T, then drop rows/cols of S.
        let l = laplacian_dense(&g);
        let st: Vec<usize> = s.iter().chain(t.iter()).copied().collect();
        let full_schur = schur_complement_dense(&l, &st, &u).unwrap();
        // Rows/cols of T within `st` order are positions |S|..|S|+|T|.
        let toff = s.len();
        let mut right = DenseMatrix::zeros(t.len(), t.len());
        for i in 0..t.len() {
            for j in 0..t.len() {
                right.set(i, j, full_schur.get(toff + i, toff + j));
            }
        }
        assert!(left.max_abs_diff(&right) < 1e-9);
    }

    /// Eq. 15 with exact probabilities equals the dense Schur complement:
    /// check by sampling many forests.
    #[test]
    fn estimated_schur_converges_to_exact() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::barabasi_albert(16, 2, &mut rng);
        let n = g.num_nodes();
        let s_nodes = [0u32];
        let t_nodes = vec![1u32, 3u32];
        let mut in_root = vec![false; n];
        for &x in s_nodes.iter().chain(t_nodes.iter()) {
            in_root[x as usize] = true;
        }
        // Exact S_T(L_{-S}).
        let mut in_s = vec![false; n];
        in_s[0] = true;
        let (l_minus_s, keep) = laplacian_submatrix_dense(&g, &in_s);
        let pos = |node: u32| keep.iter().position(|&x| x == node).unwrap();
        let t_idx: Vec<usize> = t_nodes.iter().map(|&x| pos(x)).collect();
        let u_idx: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter(|&(_, &x)| !t_nodes.contains(&x))
            .map(|(i, _)| i)
            .collect();
        let exact = schur_complement_dense(&l_minus_s, &t_idx, &u_idx).unwrap();

        // Estimated from forests.
        let idx = Arc::new(RootIndex::new(n, &t_nodes));
        let mut acc = ElectricalAccumulator::new(&g, &in_root, None, DiagMode::Diagonal, Some(idx));
        absorb_batch(
            &g,
            &in_root,
            0,
            30_000,
            &SamplerConfig {
                seed: 3,
                threads: 1,
            },
            &mut acc,
        );
        let est = estimated_schur(
            &g,
            &in_root,
            &t_nodes,
            acc.rooted().unwrap(),
            acc.num_forests(),
        );
        assert!(
            est.max_abs_diff(&exact) < 0.1,
            "diff {} too large",
            est.max_abs_diff(&exact)
        );
    }

    /// The graph-level Schur complement (through every SDD backend)
    /// matches the dense index-set oracle.
    #[test]
    fn grounded_schur_matches_dense_oracle_on_every_backend() {
        let mut rng = StdRng::seed_from_u64(25);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let n = g.num_nodes();
        let mut in_s = vec![false; n];
        in_s[0] = true;
        in_s[9] = true;
        let t_nodes = vec![2u32, 5, 11, 30];
        // Dense oracle: index T and U inside L_{-S}.
        let (l_minus_s, keep) = laplacian_submatrix_dense(&g, &in_s);
        let pos = |node: u32| keep.iter().position(|&x| x == node).unwrap();
        let t_idx: Vec<usize> = t_nodes.iter().map(|&x| pos(x)).collect();
        let u_idx: Vec<usize> = (0..keep.len()).filter(|i| !t_idx.contains(i)).collect();
        let oracle = schur_complement_dense(&l_minus_s, &t_idx, &u_idx).unwrap();
        for backend in [
            cfcc_linalg::SddBackend::DenseCholesky,
            cfcc_linalg::SddBackend::CgJacobi,
            cfcc_linalg::SddBackend::SparseCg,
        ] {
            let got = schur_complement_grounded(
                &g,
                &in_s,
                &t_nodes,
                backend,
                &SddOptions::with_tol(1e-12),
            )
            .unwrap();
            assert!(
                got.max_abs_diff(&oracle) < 1e-8,
                "{backend}: diff {}",
                got.max_abs_diff(&oracle)
            );
        }
    }

    /// Invalid T sets surface as errors, not panics.
    #[test]
    fn grounded_schur_rejects_bad_t_sets() {
        let g = generators::cycle(8);
        let mut in_s = vec![false; 8];
        in_s[0] = true;
        let opts = SddOptions::default();
        let auto = cfcc_linalg::SddBackend::Auto;
        // overlap with S
        assert!(matches!(
            schur_complement_grounded(&g, &in_s, &[0], auto, &opts),
            Err(CfcmError::InvalidParameter(_))
        ));
        // duplicate in T
        assert!(matches!(
            schur_complement_grounded(&g, &in_s, &[2, 2], auto, &opts),
            Err(CfcmError::InvalidParameter(_))
        ));
        // out of range
        assert!(matches!(
            schur_complement_grounded(&g, &in_s, &[99], auto, &opts),
            Err(CfcmError::InvalidParameter(_))
        ));
        // wrong mask length
        assert!(matches!(
            schur_complement_grounded(&g, &in_s[..7], &[2], auto, &opts),
            Err(CfcmError::InvalidParameter(_))
        ));
    }

    /// Degenerate split: T = V ∖ S leaves no U to eliminate — the Schur
    /// complement is L_{-S} itself.
    #[test]
    fn grounded_schur_with_empty_u_is_the_grounded_laplacian() {
        let g = generators::cycle(8);
        let mut in_s = vec![false; 8];
        in_s[0] = true;
        let t_nodes: Vec<u32> = (1..8).collect();
        let got = schur_complement_grounded(
            &g,
            &in_s,
            &t_nodes,
            cfcc_linalg::SddBackend::Auto,
            &SddOptions::default(),
        )
        .unwrap();
        let (expect, _) = laplacian_submatrix_dense(&g, &in_s);
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn threaded_schur_complement_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = generators::barabasi_albert(160, 3, &mut rng);
        let mut in_s = vec![false; g.num_nodes()];
        in_s[0] = true;
        let (l_minus_s, _) = laplacian_submatrix_dense(&g, &in_s);
        let d = l_minus_s.rows();
        let t_idx: Vec<usize> = (0..d / 8).collect();
        let u_idx: Vec<usize> = (d / 8..d).collect();
        let serial = schur_complement_dense(&l_minus_s, &t_idx, &u_idx).unwrap();
        for threads in [2, 4] {
            let par = schur_complement_dense_threaded(&l_minus_s, &t_idx, &u_idx, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn invert_handles_spd_directly() {
        let spd = DenseMatrix::from_rows(&[&[3.0, -1.0], &[-1.0, 2.0]]);
        let (inv, ridge) = invert_estimated_schur(spd.clone()).unwrap();
        assert_eq!(ridge, 0.0);
        assert!(spd.matmul(&inv).max_abs_diff(&DenseMatrix::identity(2)) < 1e-10);
    }

    #[test]
    fn invert_applies_ridge_to_indefinite_estimate() {
        // Symmetric but indefinite (eigenvalues 3, −1).
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let (_, ridge) = invert_estimated_schur(m).unwrap();
        assert!(ridge > 0.0);
    }
}
