//! Result types: the selected group and per-iteration run statistics.

use cfcc_graph::Node;

/// Statistics of one greedy iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterStats {
    /// Node chosen in this iteration.
    pub chosen: Node,
    /// Spanning forests sampled (0 for deterministic baselines).
    pub forests: u64,
    /// Total random-walk steps during sampling.
    pub walk_steps: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Estimated marginal gain Δ'(chosen, S) — `NaN` in the first iteration
    /// where the objective is `argmin L†_uu` instead.
    pub gain: f64,
}

/// Aggregate statistics of one CFCM run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Per-iteration details, in selection order.
    pub iterations: Vec<IterStats>,
}

impl RunStats {
    /// Total forests sampled across iterations.
    pub fn total_forests(&self) -> u64 {
        self.iterations.iter().map(|i| i.forests).sum()
    }

    /// Total random-walk steps across iterations.
    pub fn total_walk_steps(&self) -> u64 {
        self.iterations.iter().map(|i| i.walk_steps).sum()
    }

    /// Total wall-clock seconds across iterations.
    pub fn total_seconds(&self) -> f64 {
        self.iterations.iter().map(|i| i.seconds).sum()
    }
}

/// A selected node group with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Selected nodes in the order the greedy chose them.
    pub nodes: Vec<Node>,
    /// Per-run statistics.
    pub stats: RunStats,
}

impl Selection {
    /// The group as a sorted vector (canonical set form).
    pub fn sorted_nodes(&self) -> Vec<Node> {
        let mut v = self.nodes.clone();
        v.sort_unstable();
        v
    }

    /// Prefix of the selection of length `k` (greedy selections are
    /// nested, so this is the solution the same run would give for
    /// smaller budgets — what the paper's Figures 1–3 sweep).
    pub fn prefix(&self, k: usize) -> &[Node] {
        &self.nodes[..k.min(self.nodes.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel() -> Selection {
        Selection {
            nodes: vec![5, 2, 9],
            stats: RunStats {
                iterations: vec![
                    IterStats { chosen: 5, forests: 10, walk_steps: 100, seconds: 0.5, gain: f64::NAN },
                    IterStats { chosen: 2, forests: 20, walk_steps: 150, seconds: 0.25, gain: 1.5 },
                    IterStats { chosen: 9, forests: 30, walk_steps: 200, seconds: 0.25, gain: 0.5 },
                ],
            },
        }
    }

    #[test]
    fn aggregates() {
        let s = sel();
        assert_eq!(s.stats.total_forests(), 60);
        assert_eq!(s.stats.total_walk_steps(), 450);
        assert!((s.stats.total_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_and_prefix() {
        let s = sel();
        assert_eq!(s.sorted_nodes(), vec![2, 5, 9]);
        assert_eq!(s.prefix(2), &[5, 2]);
        assert_eq!(s.prefix(10), &[5, 2, 9]);
    }
}
