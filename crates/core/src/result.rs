//! Result types: the selected group and per-iteration run statistics.
//!
//! All three types serialize to JSON via hand-rolled `to_json` methods
//! (`cfcc_util::json`; the offline build has no serde), so CLI reports and
//! harness outputs are machine-consumable.

use cfcc_graph::Node;
use cfcc_linalg::SolveStats;
use cfcc_util::json::{self, JsonObject};

/// Statistics of one greedy iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterStats {
    /// Node chosen in this iteration.
    pub chosen: Node,
    /// Spanning forests sampled (0 for deterministic baselines).
    pub forests: u64,
    /// Total random-walk steps during sampling.
    pub walk_steps: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Estimated marginal gain Δ'(chosen, S) — `NaN` in the first iteration
    /// where the objective is `argmin L†_uu` instead.
    pub gain: f64,
}

impl IterStats {
    /// JSON object (`gain` is `null` in the first iteration, where it is
    /// NaN by construction).
    pub fn to_json(&self) -> String {
        self.to_json_with_chosen(u64::from(self.chosen))
    }

    /// JSON object with `chosen` replaced by `chosen_as` — for consumers
    /// (e.g. CLI reports) that re-label internal node ids back to the
    /// original input ids.
    pub fn to_json_with_chosen(&self, chosen_as: u64) -> String {
        JsonObject::new()
            .int("chosen", i128::from(chosen_as))
            .int("forests", i128::from(self.forests))
            .int("walk_steps", i128::from(self.walk_steps))
            .num("seconds", self.seconds)
            .num("gain", self.gain)
            .render()
    }
}

/// Aggregate statistics of one CFCM run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Per-iteration details, in selection order.
    pub iterations: Vec<IterStats>,
    /// Linear-solver work aggregated across **every** factor of the run
    /// (all greedy rounds together) — the observable the warm-start
    /// engine's iteration-count win is measured by. Zero for solvers that
    /// never touch the SDD backends (forest sampling, heuristics).
    pub solve: SolveStats,
}

impl RunStats {
    /// Total forests sampled across iterations.
    pub fn total_forests(&self) -> u64 {
        self.iterations.iter().map(|i| i.forests).sum()
    }

    /// Total random-walk steps across iterations.
    pub fn total_walk_steps(&self) -> u64 {
        self.iterations.iter().map(|i| i.walk_steps).sum()
    }

    /// Total wall-clock seconds across iterations.
    pub fn total_seconds(&self) -> f64 {
        self.iterations.iter().map(|i| i.seconds).sum()
    }

    /// JSON object with aggregates and the per-iteration detail array.
    pub fn to_json(&self) -> String {
        self.render_json(None)
    }

    /// Like [`RunStats::to_json`] but with each iteration's `chosen`
    /// re-labeled through `labels` (positional: iterations are in
    /// selection order, so `labels[i]` is the external id of the node
    /// chosen in iteration `i`). Lengths must match.
    pub fn to_json_with_labels(&self, labels: &[u64]) -> String {
        debug_assert_eq!(labels.len(), self.iterations.len());
        self.render_json(Some(labels))
    }

    fn render_json(&self, labels: Option<&[u64]>) -> String {
        let iterations = json::array(self.iterations.iter().enumerate().map(|(i, it)| {
            match labels.and_then(|l| l.get(i)) {
                Some(&label) => it.to_json_with_chosen(label),
                None => it.to_json(),
            }
        }));
        JsonObject::new()
            .int("total_forests", i128::from(self.total_forests()))
            .int("total_walk_steps", i128::from(self.total_walk_steps()))
            .num("total_seconds", self.total_seconds())
            .int("solver_solves", i128::from(self.solve.solves))
            .int("solver_iterations", i128::from(self.solve.iterations))
            .num("precond_stretch", self.solve.precond_stretch)
            .int(
                "precond_offtree_edges",
                i128::from(self.solve.precond_offtree_edges),
            )
            .raw("iterations", iterations)
            .render()
    }
}

/// A selected node group with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Selected nodes in the order the greedy chose them.
    pub nodes: Vec<Node>,
    /// Per-run statistics.
    pub stats: RunStats,
}

impl Selection {
    /// The group as a sorted vector (canonical set form).
    pub fn sorted_nodes(&self) -> Vec<Node> {
        let mut v = self.nodes.clone();
        v.sort_unstable();
        v
    }

    /// Prefix of the selection of length `k` (greedy selections are
    /// nested, so this is the solution the same run would give for
    /// smaller budgets — what the paper's Figures 1–3 sweep).
    pub fn prefix(&self, k: usize) -> &[Node] {
        &self.nodes[..k.min(self.nodes.len())]
    }

    /// JSON object: the selected nodes (greedy order) plus run stats.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .raw(
                "nodes",
                json::array(self.nodes.iter().map(|u| u.to_string())),
            )
            .raw("stats", self.stats.to_json())
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel() -> Selection {
        Selection {
            nodes: vec![5, 2, 9],
            stats: RunStats {
                iterations: vec![
                    IterStats {
                        chosen: 5,
                        forests: 10,
                        walk_steps: 100,
                        seconds: 0.5,
                        gain: f64::NAN,
                    },
                    IterStats {
                        chosen: 2,
                        forests: 20,
                        walk_steps: 150,
                        seconds: 0.25,
                        gain: 1.5,
                    },
                    IterStats {
                        chosen: 9,
                        forests: 30,
                        walk_steps: 200,
                        seconds: 0.25,
                        gain: 0.5,
                    },
                ],
                ..RunStats::default()
            },
        }
    }

    #[test]
    fn aggregates() {
        let s = sel();
        assert_eq!(s.stats.total_forests(), 60);
        assert_eq!(s.stats.total_walk_steps(), 450);
        assert!((s.stats.total_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_and_prefix() {
        let s = sel();
        assert_eq!(s.sorted_nodes(), vec![2, 5, 9]);
        assert_eq!(s.prefix(2), &[5, 2]);
        assert_eq!(s.prefix(10), &[5, 2, 9]);
    }

    #[test]
    fn json_round_structure() {
        let s = sel();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""nodes":[5,2,9]"#));
        assert!(j.contains(r#""total_forests":60"#));
        // First-iteration NaN gain must serialize as null, not NaN.
        assert!(j.contains(r#""gain":null"#));
        assert!(!j.contains("NaN"));
        assert!(j.contains(r#""gain":1.5"#));
    }
}
