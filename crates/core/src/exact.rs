//! The EXACT greedy baseline (paper §V-A).
//!
//! Greedy CFCM with exact marginal gains. The paper's description inverts
//! `L_{-S}` per iteration (`O(k n³)`); we keep the algebra exact but pay the
//! cube only once: after the first pick, the inverse `M = L_{-S}^{-1}` is
//! maintained under node removal with the Schur-complement rank-one update
//!
//! ```text
//! (L_{-(S∪u)})^{-1} = M_{-u,-u} − M_{-u,u} · M_{u,-u} / M_{uu}
//! ```
//!
//! making each subsequent iteration `O(n²)`. The marginal gain itself is
//! `Δ(u,S) = (L_{-S}^{-2})_{uu} / (L_{-S}^{-1})_{uu} = ‖M e_u‖² / M_{uu}`
//! (Eq. 5), and equals exactly the trace drop of the update above.

use crate::context::SolveContext;
use crate::result::{IterStats, RunStats, Selection};
use crate::solver::{CfcmSolver, SolverKind};
use crate::CfcmError;
use cfcc_graph::{Graph, Node};
use cfcc_linalg::dense::DenseMatrix;
use cfcc_linalg::laplacian::laplacian_submatrix_dense;
use cfcc_linalg::pinv::pseudoinverse_diag;
use cfcc_linalg::vector::norm2_sq;
use cfcc_util::Stopwatch;

/// Exact greedy CFCM solver.
///
/// Thin wrapper over [`exact_greedy_ctx`] with a default context (the
/// dense baseline takes no tuning parameters).
pub fn exact_greedy(g: &Graph, k: usize) -> Result<Selection, CfcmError> {
    exact_greedy_ctx(g, k, &SolveContext::default())
}

/// Context-aware exact greedy: honors cancellation/deadline (returning the
/// partial selection accumulated so far) and reports per-iteration progress.
pub fn exact_greedy_ctx(g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
    ctx.check_problem(g, k)?;
    let n = g.num_nodes();
    let mut stats = RunStats::default();
    let mut sw = Stopwatch::start();

    // Iteration 1: argmin_u L†_uu (Eq. 4: the trace term is shared). Only
    // the diagonal is consumed, so no full pseudoinverse is formed.
    let pdiag = pseudoinverse_diag(g);
    let first = (0..n)
        .min_by(|&a, &b| pdiag[a].partial_cmp(&pdiag[b]).unwrap())
        .unwrap() as Node;
    let mut chosen = vec![first];
    let it = IterStats {
        chosen: first,
        forests: 0,
        walk_steps: 0,
        seconds: sw.lap().as_secs_f64(),
        gain: f64::NAN,
    };
    ctx.emit(&it);
    stats.iterations.push(it);
    if k == 1 {
        return Ok(Selection {
            nodes: chosen,
            stats,
        });
    }

    // Dense inverse of L_{-S1}; `nodes[c]` maps compact index → node id.
    // Forming M = L_{-S}^{-1} once is the genuine inverse consumer here:
    // every subsequent iteration reads M's entries and maintains it with
    // the O(n²) rank-one removal update instead of refactorizing.
    let mask = crate::cfcc::group_mask(g, &chosen)?;
    let (sub, keep) = laplacian_submatrix_dense(g, &mask);
    let mut m = sub
        .cholesky_threaded(ctx.params.threads)
        .map_err(|e| CfcmError::Numerical(format!("L_-S not SPD: {e}")))?
        .inverse_threaded(ctx.params.threads);
    let mut nodes = keep;
    // Ping-pong workspace for the rank-one removal updates (no per
    // iteration allocation beyond the first).
    let mut scratch = DenseMatrix::zeros(0, 0);

    for _ in 1..k {
        if ctx.interrupted() {
            break;
        }
        let d = m.rows();
        // Δ(c) = ‖M e_c‖² / M_cc — symmetric M, so row c is column c.
        let mut best_c = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for c in 0..d {
            let gain = norm2_sq(m.row(c)) / m.get(c, c);
            if gain > best_gain {
                best_gain = gain;
                best_c = c;
            }
        }
        let u = nodes[best_c];
        chosen.push(u);
        let it = IterStats {
            chosen: u,
            forests: 0,
            walk_steps: 0,
            seconds: sw.lap().as_secs_f64(),
            gain: best_gain,
        };
        ctx.emit(&it);
        stats.iterations.push(it);
        if chosen.len() == k {
            break;
        }
        scratch.reshape(d - 1, d - 1);
        remove_index_into(&m, best_c, &mut scratch);
        std::mem::swap(&mut m, &mut scratch);
        nodes.remove(best_c);
    }
    Ok(Selection {
        nodes: chosen,
        stats,
    })
}

/// Registry entry for the dense exact greedy baseline.
pub struct ExactSolver;

impl CfcmSolver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::Exact
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        exact_greedy_ctx(g, k, ctx)
    }
}

/// Rank-one removal update: the inverse of the submatrix obtained by
/// deleting row/column `c` from the matrix whose inverse is `m`.
pub fn remove_index(m: &DenseMatrix, c: usize) -> DenseMatrix {
    let d = m.rows();
    let mut out = DenseMatrix::zeros(d - 1, d - 1);
    remove_index_into(m, c, &mut out);
    out
}

/// [`remove_index`] writing into a caller-owned `(d−1) × (d−1)` buffer —
/// the greedy loops ping-pong two buffers instead of allocating per
/// iteration. `out` is resized by truncation bookkeeping on the caller
/// side; only its leading `(d−1)²` entries are written.
pub fn remove_index_into(m: &DenseMatrix, c: usize, out: &mut DenseMatrix) {
    let d = m.rows();
    debug_assert!(c < d);
    debug_assert_eq!(out.rows(), d - 1);
    debug_assert_eq!(out.cols(), d - 1);
    let mcc = m.get(c, c);
    for i in 0..d - 1 {
        let oi = if i < c { i } else { i + 1 };
        let mic = m.get(oi, c);
        let row_src = m.row(oi);
        let crow = m.row(c);
        let row_dst = out.row_mut(i);
        let scale = mic / mcc;
        // Split at the removed column: both halves are contiguous copies.
        for (dst, (&src, &cj)) in row_dst[..c]
            .iter_mut()
            .zip(row_src[..c].iter().zip(crow[..c].iter()))
        {
            *dst = src - scale * cj;
        }
        for (dst, (&src, &cj)) in row_dst[c..]
            .iter_mut()
            .zip(row_src[c + 1..].iter().zip(crow[c + 1..].iter()))
        {
            *dst = src - scale * cj;
        }
    }
}

/// Exact marginal gains `Δ(u, S)` for every `u ∉ S` (test oracle and
/// reference for Fig. 5): returns `(node, gain)` pairs. A degenerate
/// group (disconnecting `S`, duplicates, out-of-range nodes) surfaces as
/// [`CfcmError`] instead of panicking.
pub fn exact_deltas(g: &Graph, group: &[Node]) -> Result<Vec<(Node, f64)>, CfcmError> {
    let mask = crate::cfcc::group_mask(g, group)?;
    let (sub, keep) = laplacian_submatrix_dense(g, &mask);
    let inv = sub
        .cholesky()
        .map_err(|e| CfcmError::Numerical(format!("L_-S not SPD: {e}")))?
        .inverse();
    Ok(keep
        .iter()
        .enumerate()
        .map(|(c, &u)| (u, norm2_sq(inv.row(c)) / inv.get(c, c)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfcc::{cfcc_group_exact, grounded_trace_exact};
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::cycle(6);
        assert!(exact_greedy(&g, 0).is_err());
        assert!(exact_greedy(&g, 6).is_err());
    }

    #[test]
    fn k1_picks_min_pinv_diagonal() {
        let g = generators::star(9);
        let sel = exact_greedy(&g, 1).unwrap();
        assert_eq!(sel.nodes, vec![0], "star hub has minimal L†_uu");
    }

    #[test]
    fn gains_equal_trace_drops() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let sel = exact_greedy(&g, 4).unwrap();
        for i in 1..4 {
            let before = grounded_trace_exact(&g, &sel.nodes[..i]);
            let after = grounded_trace_exact(&g, &sel.nodes[..i + 1]);
            let gain = sel.stats.iterations[i].gain;
            assert!(
                (before - after - gain).abs() < 1e-8,
                "iter {i}: drop {} vs gain {gain}",
                before - after
            );
        }
    }

    #[test]
    fn remove_index_matches_recomputation() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::barabasi_albert(20, 2, &mut rng);
        let mask = crate::cfcc::group_mask(&g, &[0]).unwrap();
        let (sub, keep) = laplacian_submatrix_dense(&g, &mask);
        let inv = sub.cholesky().unwrap().inverse();
        // remove compact index 3 (node keep[3]) via update vs direct.
        let updated = remove_index(&inv, 3);
        let mask2 = crate::cfcc::group_mask(&g, &[0, keep[3]]).unwrap();
        let (sub2, _) = laplacian_submatrix_dense(&g, &mask2);
        let direct = sub2.cholesky().unwrap().inverse();
        assert!(updated.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn greedy_is_at_least_as_good_as_each_iteration_alternative() {
        // At each step, swapping the chosen node for any other single node
        // cannot increase the trace drop (greedy optimality per step).
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let sel = exact_greedy(&g, 3).unwrap();
        let s2 = &sel.nodes[..2];
        let chosen_gain = sel.stats.iterations[2].gain;
        for (u, gain) in exact_deltas(&g, s2).unwrap() {
            if u == sel.nodes[2] {
                continue;
            }
            assert!(
                gain <= chosen_gain + 1e-9,
                "node {u} gain {gain} beats chosen {chosen_gain}"
            );
        }
    }

    #[test]
    fn cfcc_improves_monotonically_along_selection() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::barabasi_albert(30, 3, &mut rng);
        let sel = exact_greedy(&g, 5).unwrap();
        let mut prev = 0.0;
        for i in 1..=5 {
            let c = cfcc_group_exact(&g, sel.prefix(i));
            assert!(c > prev, "C(S) must grow with k");
            prev = c;
        }
    }

    #[test]
    fn barbell_first_pick_is_on_the_bridge() {
        // In a barbell, the most current-flow-central node sits on the path
        // between the cliques.
        let g = generators::barbell(6, 3);
        let sel = exact_greedy(&g, 1).unwrap();
        let bridge: Vec<Node> = (6..9).collect();
        assert!(
            bridge.contains(&sel.nodes[0]),
            "expected a bridge node, got {}",
            sel.nodes[0]
        );
    }
}
