//! ApproxGreedy — the state-of-the-art baseline (Li et al., WWW 2019)
//! the paper compares against (§II-F).
//!
//! Greedy CFCM where both the numerator and denominator of
//! `Δ(u,S) = ‖L_{-S}^{-1} e_u‖² / (L_{-S}^{-1})_{uu}` are JL-sketched and
//! evaluated through a Laplacian solver:
//!
//! * numerator: solve `L_{-S} y_j = w_j` for the `w` sketch rows, then
//!   `‖…‖² ≈ Σ_j y_j[u]²`;
//! * denominator: with the incidence factorization `L_{-S} = B_{-S}ᵀB_{-S}`,
//!   `(L_{-S}^{-1})_{uu} = ‖B_{-S} L_{-S}^{-1} e_u‖² ≈ Σ_j z_j[u]²` where
//!   `L_{-S} z_j = (Q B_{-S})ᵀ` rows;
//! * first pick: the same trick on `L†` (`L†_uu = ‖B L† e_u‖²`) with
//!   nullspace-projected solves.
//!
//! The original uses the Kyng–Sachdeva nearly-linear solver (Julia); this
//! reproduction dispatches every grounded solve through the pluggable
//! [`cfcc_linalg::sdd`] backend chosen by [`CfcmParams::backend`]
//! (factor once per iteration, then `2w` right-hand sides through
//! `solve_mat_into`): dense Cholesky amortizes its factorization on small
//! graphs, and the CSR/IC(0) `sparse-cg` and spanning-tree `tree-pcg`
//! backends carry the solver to large ones in `O(n + m)` memory — no
//! `n × n` matrix is ever allocated on that path, preserving the
//! baseline's edge-count-dominated scaling that Table II exercises. The
//! iterative backends answer each 16-column chunk with **blocked
//! multi-RHS PCG**: the whole chunk advances in lockstep, sharing every
//! SpMV/preconditioner sweep, instead of degenerating into 16
//! independent CG runs.
//!
//! Iterations run through the persistent execution engine
//! ([`crate::engine::GreedyWorkspace`]): the JL sketch and sketched
//! incidence are sampled once over the full node space, and each round's
//! solves are **warm-started** from the previous round's solutions
//! projected onto the new grounding — `L_{-S}` and `L_{-S∪{v}}` differ by
//! one grounded node, so the projected block is one rank-one correction
//! from converged. The aggregated solver work lands in
//! [`RunStats::solve`].

use crate::context::SolveContext;
use crate::result::{IterStats, RunStats, Selection};
use crate::solver::{CfcmSolver, SolverKind};
use crate::{CfcmError, CfcmParams};
use cfcc_graph::{Graph, Node};
use cfcc_linalg::cg::{solve_pseudoinverse, CgConfig};
use cfcc_util::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ApproxGreedy solver.
///
/// Thin wrapper over [`approx_greedy_ctx`] with a plain-parameter context.
pub fn approx_greedy(g: &Graph, k: usize, params: &CfcmParams) -> Result<Selection, CfcmError> {
    approx_greedy_ctx(g, k, &SolveContext::from_params(params))
}

/// Context-aware ApproxGreedy: honors cancellation/deadline (returning the
/// partial selection accumulated so far) and reports per-iteration progress.
pub fn approx_greedy_ctx(g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
    ctx.check_problem(g, k)?;
    let params = &ctx.params;
    let n = g.num_nodes();
    let w = params.width(n);
    let cg = CgConfig {
        rel_tol: params.cg_tol,
        max_iter: 50_000,
        threads: params.threads,
        // First-pick pseudoinverse solves poll the context's cancel
        // token / deadline, same as the grounded solves below.
        stop: ctx.stop_hook(),
    };
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xA99);
    let mut stats = RunStats::default();
    let mut sw = Stopwatch::start();
    let mut ws = ctx.workspace();
    ws.begin_run();

    // ---- first pick: argmin L†_uu via sketched incidence solves ----
    let mut diag = vec![0.0f64; n];
    let mut rhs = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    let scale = 1.0 / (w as f64).sqrt();
    for _ in 0..w {
        rhs.fill(0.0);
        for (a, b) in g.edges() {
            let s = if rng.gen::<bool>() { scale } else { -scale };
            rhs[a as usize] += s;
            rhs[b as usize] -= s;
        }
        x.fill(0.0);
        let st = solve_pseudoinverse(g, &rhs, &mut x, &cg);
        if st.stopped.is_some() {
            // Interrupted mid-first-pick: fall back to whatever probes
            // accumulated so far — the run still yields a selection, and
            // it yields it promptly.
            break;
        }
        if !st.converged {
            return Err(CfcmError::Numerical(
                "pseudoinverse CG did not converge".into(),
            ));
        }
        for u in 0..n {
            diag[u] += x[u] * x[u];
        }
    }
    let first = (0..n)
        .min_by(|&a, &b| diag[a].partial_cmp(&diag[b]).unwrap())
        .unwrap() as Node;
    let mut in_s = vec![false; n];
    in_s[first as usize] = true;
    let mut nodes = vec![first];
    let it = IterStats {
        chosen: first,
        forests: 0,
        walk_steps: 0,
        seconds: sw.lap().as_secs_f64(),
        gain: f64::NAN,
    };
    ctx.emit(&it);
    stats.iterations.push(it);

    // ---- iterations 2..k ----
    // The persistent sketches are sampled once over the full node space;
    // every iteration restricts them to its kept rows, so consecutive
    // rounds solve for right-hand sides that differ only by one deleted
    // row — the precondition for the engine's block warm start.
    ws.ensure_sketch(g, w, params.seed);
    for _ in 1..k {
        if ctx.interrupted() {
            break;
        }
        // Factor once per iteration, then push all 2w sketched right-hand
        // sides through the backend's multi-RHS solve — in column chunks
        // of `engine::RHS_CHUNK`, so the live workspace stays O(n · chunk)
        // (w grows with log n / ε², and explodes under the theoretical
        // bounds). Chunks amortize the dense factorization; on the
        // iterative backends each chunk runs as one blocked multi-RHS PCG
        // (shared SpMV/preconditioner sweeps, converged columns deflated),
        // seeded with the previous round's solutions when warm starts are
        // on.
        // A mid-solve interruption (cancel token, deadline) surfaces as a
        // typed error from the factor path; it ends the run with the
        // partial selection, exactly like the round-boundary
        // `interrupted()` check above. The workspace stays warm-start
        // consistent: an aborted round never swaps its `prev_*` blocks.
        let mut factor = match ctx.factor_grounded(g, &in_s) {
            Err(CfcmError::Interrupted(_)) => break,
            r => r?,
        };
        let d = factor.dim();
        let (num, den) = match ws.sketched_gains(factor.as_mut(), params.warm_start) {
            Err(CfcmError::Interrupted(_)) => break,
            r => r?,
        };
        let mut best_c = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for cix in 0..d {
            let u = factor.node_of(cix);
            let floor = 1.0 / g.degree(u) as f64;
            let gain = num[cix] / den[cix].max(floor);
            if gain > best_gain {
                best_gain = gain;
                best_c = cix;
            }
        }
        let u = factor.node_of(best_c);
        in_s[u as usize] = true;
        nodes.push(u);
        let it = IterStats {
            chosen: u,
            forests: 0,
            walk_steps: 0,
            seconds: sw.lap().as_secs_f64(),
            gain: best_gain,
        };
        ctx.emit(&it);
        stats.iterations.push(it);
    }
    stats.solve = ws.solve_stats();
    Ok(Selection { nodes, stats })
}

/// Registry entry for the ApproxGreedy baseline (Li et al., WWW'19).
pub struct ApproxSolver;

impl CfcmSolver for ApproxSolver {
    fn name(&self) -> &'static str {
        "approx"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::MonteCarlo
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        approx_greedy_ctx(g, k, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfcc::cfcc_group_exact;
    use crate::exact::exact_greedy;
    use cfcc_graph::generators;

    #[test]
    fn validates_inputs() {
        let g = generators::cycle(5);
        assert!(approx_greedy(&g, 0, &CfcmParams::default()).is_err());
    }

    #[test]
    fn close_to_exact_greedy_quality() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let k = 4;
        let exact = exact_greedy(&g, k).unwrap();
        let exact_c = cfcc_group_exact(&g, &exact.nodes);
        let sel = approx_greedy(&g, k, &CfcmParams::with_epsilon(0.15).seed(8)).unwrap();
        let got_c = cfcc_group_exact(&g, &sel.nodes);
        assert!(
            got_c >= 0.9 * exact_c,
            "ApproxGreedy C(S)={got_c} vs exact greedy {exact_c}"
        );
    }

    #[test]
    fn star_first_pick_is_hub() {
        let g = generators::star(30);
        let sel = approx_greedy(&g, 1, &CfcmParams::with_epsilon(0.3).seed(9)).unwrap();
        assert_eq!(sel.nodes, vec![0]);
    }

    #[test]
    fn distinct_nodes_selected() {
        let mut rng = StdRng::seed_from_u64(34);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let sel = approx_greedy(&g, 5, &CfcmParams::with_epsilon(0.3).seed(10)).unwrap();
        let set: std::collections::HashSet<_> = sel.nodes.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
