//! Heuristic baselines from the paper's evaluation (§V-A): `Degree`
//! (top-k degrees) and `Top-CFCC` (top-k single-node CFCC). Fig. 2 shows
//! these lag the greedy algorithms — single-node rankings cannot capture
//! group effects.

use crate::context::SolveContext;
use crate::first_phase::first_phase;
use crate::result::{IterStats, RunStats, Selection};
use crate::solver::{Capability, CfcmSolver, SolverKind};
use crate::{CfcmError, CfcmParams};
use cfcc_graph::{Graph, Node};
use cfcc_util::Stopwatch;

fn selection_from(nodes: Vec<Node>, seconds: f64) -> Selection {
    let iterations = nodes
        .iter()
        .map(|&u| IterStats {
            chosen: u,
            forests: 0,
            walk_steps: 0,
            seconds: seconds / nodes.len().max(1) as f64,
            gain: f64::NAN,
        })
        .collect();
    Selection {
        nodes,
        stats: RunStats {
            iterations,
            ..RunStats::default()
        },
    }
}

/// `Degree`: the `k` highest-degree nodes.
pub fn degree_baseline(g: &Graph, k: usize) -> Result<Selection, CfcmError> {
    degree_baseline_ctx(g, k, &SolveContext::default())
}

/// Context-aware `Degree` (single-shot ranking; progress fires once per
/// selected node as the finished ranking is reported).
pub fn degree_baseline_ctx(
    g: &Graph,
    k: usize,
    ctx: &SolveContext,
) -> Result<Selection, CfcmError> {
    ctx.check_problem(g, k)?;
    let sw = Stopwatch::start();
    let mut nodes = g.nodes_by_degree_desc();
    nodes.truncate(k);
    Ok(emit_all(ctx, selection_from(nodes, sw.seconds())))
}

/// `Top-CFCC` (exact): the `k` nodes with the largest single-node CFCC,
/// ranked by the dense `L†` diagonal — `O(n³)`, small graphs.
pub fn top_cfcc_exact(g: &Graph, k: usize) -> Result<Selection, CfcmError> {
    top_cfcc_exact_ctx(g, k, &SolveContext::default())
}

/// Context-aware exact `Top-CFCC`.
pub fn top_cfcc_exact_ctx(g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
    ctx.check_problem(g, k)?;
    let sw = Stopwatch::start();
    let pdiag = cfcc_linalg::pinv::pseudoinverse_diag(g);
    let mut order: Vec<Node> = (0..g.num_nodes() as Node).collect();
    // C(u) decreasing ⟺ L†_uu increasing.
    order.sort_by(|&a, &b| {
        pdiag[a as usize]
            .partial_cmp(&pdiag[b as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    order.truncate(k);
    Ok(emit_all(ctx, selection_from(order, sw.seconds())))
}

/// `Top-CFCC` (sampled): same ranking from the forest first-phase
/// estimates of `L†_uu` — nearly-linear, any graph size.
pub fn top_cfcc_sampled(g: &Graph, k: usize, params: &CfcmParams) -> Result<Selection, CfcmError> {
    top_cfcc_sampled_ctx(g, k, &SolveContext::from_params(params))
}

/// Context-aware sampled `Top-CFCC`.
pub fn top_cfcc_sampled_ctx(
    g: &Graph,
    k: usize,
    ctx: &SolveContext,
) -> Result<Selection, CfcmError> {
    ctx.check_problem(g, k)?;
    let sw = Stopwatch::start();
    let fp = first_phase(g, &ctx.params);
    let mut order: Vec<Node> = (0..g.num_nodes() as Node).collect();
    order.sort_by(|&a, &b| {
        fp.estimates[a as usize]
            .partial_cmp(&fp.estimates[b as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    order.truncate(k);
    let mut sel = selection_from(order, sw.seconds());
    if let Some(first) = sel.stats.iterations.first_mut() {
        first.forests = fp.forests;
        first.walk_steps = fp.walk_steps;
    }
    Ok(emit_all(ctx, sel))
}

fn emit_all(ctx: &SolveContext, sel: Selection) -> Selection {
    ctx.emit_all(&sel.stats.iterations);
    sel
}

/// Registry entry for the `Degree` heuristic.
pub struct DegreeSolver;

impl CfcmSolver for DegreeSolver {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::Heuristic
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        degree_baseline_ctx(g, k, ctx)
    }
}

/// Registry entry for sampled `Top-CFCC` (scales to any graph).
pub struct TopCfccSolver;

impl CfcmSolver for TopCfccSolver {
    fn name(&self) -> &'static str {
        "top-cfcc"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::Heuristic
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        top_cfcc_sampled_ctx(g, k, ctx)
    }
}

/// Registry entry for exact `Top-CFCC` (dense `L†`; small graphs only).
pub struct TopCfccExactSolver;

/// Largest node count the dense `Top-CFCC` ranking accepts through the
/// registry (an `n × n` pseudoinverse beyond this is a mistake — use the
/// sampled variant).
pub const TOP_CFCC_EXACT_MAX_NODES: usize = 10_000;

impl CfcmSolver for TopCfccExactSolver {
    fn name(&self) -> &'static str {
        "top-cfcc-exact"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::Heuristic
    }

    fn supports(&self, n: usize, _m: usize, _k: usize) -> Capability {
        if n > TOP_CFCC_EXACT_MAX_NODES {
            Capability::Unsupported(format!(
                "top-cfcc-exact inverts a dense n x n matrix; limited to \
                 n <= {TOP_CFCC_EXACT_MAX_NODES} (got n={n}) — use 'top-cfcc'"
            ))
        } else {
            Capability::Supported
        }
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        top_cfcc_exact_ctx(g, k, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfcc::{cfcc_group_exact, cfcc_single_exact};
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_takes_hubs() {
        let g = generators::star(10);
        let sel = degree_baseline(&g, 2).unwrap();
        assert_eq!(sel.nodes[0], 0);
        assert_eq!(sel.nodes.len(), 2);
    }

    #[test]
    fn top_cfcc_exact_matches_single_node_ranking() {
        let mut rng = StdRng::seed_from_u64(35);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let sel = top_cfcc_exact(&g, 3).unwrap();
        let scores = cfcc_single_exact(&g);
        let mut order: Vec<usize> = (0..30).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        assert_eq!(
            sel.nodes,
            order[..3].iter().map(|&u| u as Node).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sampled_top_cfcc_overlaps_exact() {
        let mut rng = StdRng::seed_from_u64(36);
        let g = generators::barabasi_albert(50, 3, &mut rng);
        let exact = top_cfcc_exact(&g, 5).unwrap();
        let sampled = top_cfcc_sampled(&g, 5, &CfcmParams::with_epsilon(0.15).seed(11)).unwrap();
        let es: std::collections::HashSet<_> = exact.nodes.iter().collect();
        let overlap = sampled.nodes.iter().filter(|u| es.contains(u)).count();
        assert!(
            overlap >= 3,
            "only {overlap}/5 overlap: {:?} vs {:?}",
            sampled.nodes,
            exact.nodes
        );
    }

    #[test]
    fn heuristics_no_worse_than_random_on_group_cfcc() {
        let mut rng = StdRng::seed_from_u64(37);
        let g = generators::scale_free_with_edges(60, 240, &mut rng);
        let k = 4;
        let deg = degree_baseline(&g, k).unwrap();
        let score_deg = cfcc_group_exact(&g, &deg.nodes);
        // Compare to an arbitrary fixed group of the same size.
        let arbitrary: Vec<Node> = (10..10 + k as Node).collect();
        let score_arb = cfcc_group_exact(&g, &arbitrary);
        assert!(score_deg >= score_arb, "{score_deg} vs {score_arb}");
    }

    #[test]
    fn validates_inputs() {
        let g = generators::cycle(4);
        assert!(degree_baseline(&g, 0).is_err());
        assert!(top_cfcc_exact(&g, 9).is_err());
    }
}
