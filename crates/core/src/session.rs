//! [`SolveSession`] — the builder-style front door to every solver:
//!
//! ```
//! use cfcc_core::SolveSession;
//! use cfcc_graph::generators;
//!
//! let g = generators::barbell(8, 3);
//! let sel = SolveSession::new(&g)
//!     .k(2)
//!     .epsilon(0.3)
//!     .solver("schur")
//!     .run()
//!     .unwrap();
//! assert_eq!(sel.nodes.len(), 2);
//! ```
//!
//! A session resolves its solver through [`crate::registry`], refuses runs
//! the solver declares itself incapable of (capability hints), and wires
//! parameters, cancellation, deadline, and progress reporting into one
//! [`SolveContext`].

use std::time::{Duration, Instant};

use crate::context::{CancelToken, ProgressSink, SolveContext};
use crate::engine::GreedyWorkspace;
use crate::registry;
use crate::result::{IterStats, Selection};
use crate::solver::{Capability, CfcmSolver};
use crate::{CfcmError, CfcmParams};
use cfcc_graph::Graph;

/// Builder for one CFCM solve. See the module docs for an example.
pub struct SolveSession<'g> {
    graph: &'g Graph,
    k: usize,
    solver: SolverChoice,
    params: CfcmParams,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    progress: Option<Box<ProgressSink>>,
}

enum SolverChoice {
    Named(String),
    Resolved(&'static dyn CfcmSolver),
}

impl<'g> SolveSession<'g> {
    /// A session on `graph` with the defaults: the flagship `"schur"`
    /// solver, `k = 1`, and default [`CfcmParams`].
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            k: 1,
            solver: SolverChoice::Named("schur".into()),
            params: CfcmParams::default(),
            cancel: None,
            deadline: None,
            progress: None,
        }
    }

    /// Group size to select.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Select the solver by registry name or alias (resolved at
    /// [`SolveSession::run`]; unknown names error there).
    pub fn solver(mut self, name: &str) -> Self {
        self.solver = SolverChoice::Named(name.to_string());
        self
    }

    /// Select a solver instance directly (e.g. one not in the registry).
    pub fn solver_impl(mut self, solver: &'static dyn CfcmSolver) -> Self {
        self.solver = SolverChoice::Resolved(solver);
        self
    }

    /// Replace the whole parameter set.
    pub fn params(mut self, params: CfcmParams) -> Self {
        self.params = params;
        self
    }

    /// Error parameter `ε` of the approximation guarantee.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.params.epsilon = epsilon;
        self
    }

    /// Master RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Worker threads for forest sampling.
    pub fn threads(mut self, threads: usize) -> Self {
        self.params.threads = threads.max(1);
        self
    }

    /// Cooperative cancellation: keep a clone of the token, call
    /// [`CancelToken::cancel`] from anywhere (another thread, a progress
    /// callback), and the run returns promptly with the partial selection.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Absolute wall-clock deadline; the run returns its partial selection
    /// once the deadline passes.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Relative deadline: `timeout` from now.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Per-iteration progress callback — invoked once per greedy iteration
    /// with that iteration's [`IterStats`].
    pub fn on_progress<F>(mut self, sink: F) -> Self
    where
        F: Fn(&IterStats) + Send + Sync + 'static,
    {
        self.progress = Some(Box::new(sink));
        self
    }

    /// Resolve the solver, check its capability hint, and run.
    pub fn run(self) -> Result<Selection, CfcmError> {
        let (solver, graph, k, ctx) = self.prepare()?;
        solver.solve(graph, k, &ctx)
    }

    /// Like [`SolveSession::run`], but threading a caller-owned
    /// [`GreedyWorkspace`] through the run instead of building a fresh one
    /// — the session-reuse path for callers that answer many requests on
    /// the same graph (the `cfcc-serve` daemon). The workspace's persisted
    /// sketches are revalidated by graph fingerprint, so repeat runs with
    /// the same graph, sketch width, and seed skip the `O(w·(n+m))`
    /// resample entirely, and results are identical to a cold run (the
    /// kept sketch is the one the same seed would resample). The workspace
    /// is returned to `ws` whether the run succeeds or fails.
    ///
    /// ```
    /// use cfcc_core::engine::GreedyWorkspace;
    /// use cfcc_core::SolveSession;
    /// use cfcc_graph::generators;
    ///
    /// let g = generators::barbell(8, 3);
    /// let mut ws = GreedyWorkspace::new();
    /// for _ in 0..2 {
    ///     let sel = SolveSession::new(&g)
    ///         .k(2)
    ///         .solver("approx")
    ///         .epsilon(0.4)
    ///         .run_reusing(&mut ws)
    ///         .unwrap();
    ///     assert_eq!(sel.nodes.len(), 2);
    /// }
    /// assert_eq!(ws.sketch_resamples(), 1); // second run reused the sketch
    /// ```
    pub fn run_reusing(self, ws: &mut GreedyWorkspace) -> Result<Selection, CfcmError> {
        let (solver, graph, k, mut ctx) = self.prepare()?;
        ctx = ctx.with_workspace(std::mem::take(ws));
        let out = solver.solve(graph, k, &ctx);
        *ws = ctx.take_workspace();
        out
    }

    /// Shared front half of [`SolveSession::run`] /
    /// [`SolveSession::run_reusing`]: resolve the solver, check its
    /// capability hint, and assemble the [`SolveContext`].
    fn prepare(
        self,
    ) -> Result<(&'static dyn CfcmSolver, &'g Graph, usize, SolveContext), CfcmError> {
        let solver = match self.solver {
            SolverChoice::Named(ref name) => registry::resolve(name)?,
            SolverChoice::Resolved(solver) => solver,
        };
        let (n, m) = (self.graph.num_nodes(), self.graph.num_edges());
        if let Capability::Unsupported(reason) = solver.supports(n, m, self.k) {
            return Err(CfcmError::Unsupported(reason));
        }
        let mut ctx = SolveContext::new(self.params);
        if let Some(token) = self.cancel {
            ctx = ctx.with_cancel(token);
        }
        if let Some(deadline) = self.deadline {
            ctx = ctx.with_deadline(deadline);
        }
        if let Some(sink) = self.progress {
            ctx = ctx.with_progress_box(sink);
        }
        Ok((solver, self.graph, self.k, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_the_default_flagship() {
        let g = generators::barbell(6, 3);
        let sel = SolveSession::new(&g)
            .k(2)
            .epsilon(0.3)
            .seed(1)
            .run()
            .unwrap();
        assert_eq!(sel.nodes.len(), 2);
    }

    #[test]
    fn unknown_solver_is_reported_at_run() {
        let g = generators::cycle(8);
        let err = SolveSession::new(&g)
            .k(2)
            .solver("warp-drive")
            .run()
            .unwrap_err();
        assert!(matches!(err, CfcmError::UnknownSolver(_)));
    }

    #[test]
    fn capability_gate_refuses_oversized_optimum() {
        let g = generators::cycle(120);
        let err = SolveSession::new(&g)
            .k(2)
            .solver("optimum")
            .run()
            .unwrap_err();
        assert!(matches!(err, CfcmError::Unsupported(_)));
        assert!(err.to_string().contains("exhaustive"));
    }

    #[test]
    fn progress_fires_once_per_iteration() {
        let g = generators::cycle(12);
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let sel = SolveSession::new(&g)
            .k(3)
            .solver("exact")
            .on_progress(move |_| {
                c2.fetch_add(1, Ordering::Relaxed);
            })
            .run()
            .unwrap();
        assert_eq!(sel.nodes.len(), 3);
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cancel_from_progress_returns_partial_promptly() {
        let g = generators::barbell(10, 4);
        let token = CancelToken::new();
        let t2 = token.clone();
        let sel = SolveSession::new(&g)
            .k(8)
            .solver("forest")
            .epsilon(0.3)
            .seed(2)
            .cancel_token(token)
            .on_progress(move |_| t2.cancel())
            .run()
            .unwrap();
        // Cancelled after the first iteration's progress report: the run
        // stops at the next iteration boundary with stats intact.
        assert_eq!(sel.nodes.len(), 1);
        assert_eq!(sel.stats.iterations.len(), 1);
    }

    #[test]
    fn elapsed_deadline_yields_partial_selection() {
        let g = generators::cycle(10);
        let sel = SolveSession::new(&g)
            .k(5)
            .solver("exact")
            .deadline(Instant::now() - Duration::from_secs(1))
            .run()
            .unwrap();
        // The first iteration always completes; the rest are skipped.
        assert_eq!(sel.nodes.len(), 1);
    }
}
