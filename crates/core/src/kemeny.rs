//! Random-walk cost quantities behind the paper's complexity analysis
//! (Lemma 3.7): the expected running time of `RandomForest` is
//! `Tr((I − P_{-S})^{-1})` — the sum over nodes of expected visits before
//! absorption in `S` — which relates to Kemeny's constant and absorbing
//! centralities (paper references 43 and 44).
//!
//! These utilities make that analysis executable: exact absorption cost by
//! dense algebra, sampled absorption cost from Wilson runs, and Kemeny's
//! constant itself. The agreement of the first two *is* Lemma 3.7's
//! statement, and is tested here.

use crate::CfcmError;
use cfcc_forest::sampler::{absorb_batch, ForestAccumulator, SamplerConfig};
use cfcc_forest::Forest;
use cfcc_graph::{Graph, Node};
use cfcc_linalg::pinv::pseudoinverse_dense;
use cfcc_linalg::sdd::{self, SddBackend, SddOptions};

/// Exact expected total Wilson walk length for root set `S`:
/// `Tr((I − P_{-S})^{-1}) = Σ_{u ∉ S} d_u · (L_{-S}^{-1})_{uu}`,
/// via `diag_inverse` of the auto-selected SDD backend (dense Cholesky on
/// small graphs, CSR/IC(0) solves past the dense ceiling).
pub fn absorption_cost_exact(g: &Graph, roots: &[Node]) -> Result<f64, CfcmError> {
    let mask = crate::cfcc::group_mask(g, roots)?;
    let mut factor = sdd::factor(g, &mask, SddBackend::Auto, &SddOptions::with_tol(1e-10))?;
    let diag = factor.diag_inverse()?;
    Ok(factor
        .kept_nodes()
        .iter()
        .zip(&diag)
        .map(|(&u, &duu)| g.degree(u) as f64 * duu)
        .sum())
}

/// Accumulator that only tallies walk steps.
#[derive(Debug, Clone, Default)]
struct StepTally {
    forests: u64,
    steps: u64,
}

impl ForestAccumulator for StepTally {
    fn absorb(&mut self, f: &Forest) {
        self.forests += 1;
        self.steps += f.walk_steps;
    }
    fn merge(&mut self, other: Self) {
        self.forests += other.forests;
        self.steps += other.steps;
    }
    fn fresh(&self) -> Self {
        Self::default()
    }
    fn count(&self) -> u64 {
        self.forests
    }
}

/// Sampled mean Wilson walk length for root set `S` over `samples` forests.
/// Converges to [`absorption_cost_exact`] — the empirical face of
/// Lemma 3.7.
pub fn absorption_cost_sampled(
    g: &Graph,
    roots: &[Node],
    samples: u64,
    seed: u64,
    threads: usize,
) -> Result<f64, CfcmError> {
    let mask = crate::cfcc::group_mask(g, roots)?;
    if roots.is_empty() {
        return Err(CfcmError::InvalidParameter("need at least one root".into()));
    }
    let mut tally = StepTally::default();
    let cfg = SamplerConfig { seed, threads };
    absorb_batch(g, &mask, 0, samples, &cfg, &mut tally);
    Ok(tally.steps as f64 / tally.forests.max(1) as f64)
}

/// Kemeny's constant `K(G) = Σ_v π_v H(u → v)` (independent of `u`),
/// computed from the Laplacian pseudoinverse:
/// `K = 2m · Σ_u π_u L†_uu − ‖L† d‖-cross term` reduces, for unweighted
/// graphs, to `K = Σ_u d_u L†_uu − (dᵀ L† d)/(2m)` — dense, small graphs.
pub fn kemeny_constant_exact(g: &Graph) -> f64 {
    let n = g.num_nodes();
    let pinv = pseudoinverse_dense(g);
    let two_m = g.degree_sum() as f64;
    let d: Vec<f64> = (0..n as Node).map(|u| g.degree(u) as f64).collect();
    let mut pd = vec![0.0; n];
    pinv.matvec(&d, &mut pd);
    let dpd: f64 = d.iter().zip(&pd).map(|(a, b)| a * b).sum();
    let diag_term: f64 = (0..n).map(|u| d[u] * pinv.get(u, u)).sum();
    diag_term - dpd / two_m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Lemma 3.7, empirically: the mean sampled walk length matches
    /// `Tr((I − P_{-S})^{-1})` exactly in expectation.
    #[test]
    fn sampled_absorption_cost_matches_exact() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        for roots in [vec![0u32], vec![0u32, 7, 19]] {
            let exact = absorption_cost_exact(&g, &roots).unwrap();
            let sampled = absorption_cost_sampled(&g, &roots, 20_000, 9, 1).unwrap();
            assert!(
                (sampled - exact).abs() / exact < 0.05,
                "roots {roots:?}: sampled {sampled} vs exact {exact}"
            );
        }
    }

    /// Enlarging the root set strictly reduces the absorption cost — the
    /// mechanism behind SchurCFCM's sampling speed-up (§IV).
    #[test]
    fn more_roots_cost_less() {
        let mut rng = StdRng::seed_from_u64(53);
        let g = generators::scale_free_with_edges(100, 400, &mut rng);
        let hubs = g.nodes_by_degree_desc();
        let c1 = absorption_cost_exact(&g, &hubs[..1]).unwrap();
        let c4 = absorption_cost_exact(&g, &hubs[..4]).unwrap();
        let c16 = absorption_cost_exact(&g, &hubs[..16]).unwrap();
        assert!(c4 < c1);
        assert!(c16 < c4);
    }

    #[test]
    fn path_graph_absorption_is_quadratic() {
        // Rooted at one end of a path, Tr((I−P_{-S})^{-1}) grows ~ n²
        // (the reason road networks are the hard case, §V).
        let g10 = generators::path(10);
        let g20 = generators::path(20);
        let c10 = absorption_cost_exact(&g10, &[0]).unwrap();
        let c20 = absorption_cost_exact(&g20, &[0]).unwrap();
        let ratio = c20 / c10;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected ~4x growth for 2x nodes, got {ratio}"
        );
    }

    #[test]
    fn kemeny_complete_graph_closed_form() {
        // For K_n: eigenvalues of P are 1 and −1/(n−1) (n−1 times);
        // K = Σ 1/(1−λ) = (n−1)²/n.
        for n in [4usize, 6, 9] {
            let g = generators::complete(n);
            let k = kemeny_constant_exact(&g);
            let expect = (n as f64 - 1.0).powi(2) / n as f64;
            assert!((k - expect).abs() < 1e-9, "n={n}: {k} vs {expect}");
        }
    }

    #[test]
    fn kemeny_positive_and_scale_reasonable() {
        let mut rng = StdRng::seed_from_u64(57);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let k = kemeny_constant_exact(&g);
        // K ≥ (n−1)²/n with equality only for complete-graph-like mixing.
        assert!(k > 0.0);
        assert!(k >= (60.0 - 1.0f64).powi(2) / 60.0 - 1e-9);
        assert!(k < 10_000.0);
    }

    #[test]
    fn rejects_empty_roots() {
        let g = generators::cycle(5);
        assert!(absorption_cost_sampled(&g, &[], 10, 1, 1).is_err());
    }
}
