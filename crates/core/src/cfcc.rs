//! CFCC evaluation and resistance-distance utilities (paper §II).
//!
//! * `C(S) = n / Tr(L_{-S}^{-1})` — [`cfcc_group_exact`] (dense, small
//!   graphs), [`cfcc_group_cg`] (per-column CG solves, mid-size), and
//!   [`cfcc_group_hutchinson`] (stochastic trace, large graphs — how the
//!   paper evaluates quality at scale, §V-B2).
//! * single-node CFCC `C(u) = n / (Tr(L†) + n·L†_uu)` for the Top-CFCC
//!   heuristic and sanity checks.
//! * resistance distances `R(u, v)` and `R(u, S)`.

use crate::engine;
use crate::{CfcmError, CfcmParams};
use cfcc_graph::{Graph, Node};
use cfcc_linalg::cg::CgConfig;
use cfcc_linalg::laplacian::laplacian_submatrix_dense;
use cfcc_linalg::pinv::{pseudoinverse_dense, pseudoinverse_diag};
use cfcc_linalg::sdd::{self, SddOptions};
use cfcc_linalg::trace::{
    trace_inverse_exact_cg, trace_inverse_exact_factor, trace_inverse_hutchinson_factor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SDD options derived from solver parameters — the engine's shared
/// derivation, so tolerance and the worker-pool thread count reach the
/// evaluators exactly like they reach the greedy loops.
fn sdd_opts(params: &CfcmParams) -> SddOptions {
    engine::solve_options(params)
}

/// Build the `in_s` mask from a node list, rejecting duplicates/overflow.
pub fn group_mask(g: &Graph, group: &[Node]) -> Result<Vec<bool>, CfcmError> {
    let n = g.num_nodes();
    let mut mask = vec![false; n];
    for &u in group {
        if u as usize >= n {
            return Err(CfcmError::InvalidParameter(format!(
                "node {u} out of range"
            )));
        }
        if mask[u as usize] {
            return Err(CfcmError::InvalidParameter(format!(
                "duplicate node {u} in group"
            )));
        }
        mask[u as usize] = true;
    }
    Ok(mask)
}

/// Exact `Tr(L_{-S}^{-1})` by dense Cholesky — `O(n³)`, small graphs.
pub fn grounded_trace_exact(g: &Graph, group: &[Node]) -> f64 {
    let mask = group_mask(g, group).expect("valid group");
    let (sub, _) = laplacian_submatrix_dense(g, &mask);
    sub.cholesky()
        .expect("L_{-S} of a connected graph is positive definite")
        .trace_inverse()
}

/// Exact group CFCC `C(S)` by dense Cholesky.
pub fn cfcc_group_exact(g: &Graph, group: &[Node]) -> f64 {
    g.num_nodes() as f64 / grounded_trace_exact(g, group)
}

/// `Tr(L_{-S}^{-1})` by `|V∖S|` CG solves (exact up to CG tolerance).
pub fn grounded_trace_cg(g: &Graph, group: &[Node], tol: f64) -> Result<f64, CfcmError> {
    let mask = group_mask(g, group)?;
    let est = trace_inverse_exact_cg(g, &mask, &CgConfig::with_tol(tol))?;
    Ok(est.trace)
}

/// `Tr(L_{-S}^{-1})` through the SDD backend chosen by
/// [`CfcmParams::backend`]: direct backends read the trace off their
/// factorization, iterative ones pay one solve per column.
pub fn grounded_trace(g: &Graph, group: &[Node], params: &CfcmParams) -> Result<f64, CfcmError> {
    let mask = group_mask(g, group)?;
    let mut factor = sdd::factor(g, &mask, params.backend, &sdd_opts(params))?;
    Ok(trace_inverse_exact_factor(factor.as_mut())?.trace)
}

/// Group CFCC via per-column CG solves.
pub fn cfcc_group_cg(g: &Graph, group: &[Node], tol: f64) -> Result<f64, CfcmError> {
    Ok(g.num_nodes() as f64 / grounded_trace_cg(g, group, tol)?)
}

/// Group CFCC through the configured SDD backend (exact trace).
pub fn cfcc_group(g: &Graph, group: &[Node], params: &CfcmParams) -> Result<f64, CfcmError> {
    Ok(g.num_nodes() as f64 / grounded_trace(g, group, params)?)
}

/// Group CFCC via Hutchinson trace estimation — the scalable evaluator.
/// Probe solves run through the backend chosen by
/// [`CfcmParams::backend`] (the CSR/IC(0) sparse solver at scale).
pub fn cfcc_group_hutchinson(
    g: &Graph,
    group: &[Node],
    probes: usize,
    params: &CfcmParams,
) -> Result<f64, CfcmError> {
    let mask = group_mask(g, group)?;
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x7ace);
    let mut factor = sdd::factor(g, &mask, params.backend, &sdd_opts(params))?;
    let est = trace_inverse_hutchinson_factor(factor.as_mut(), probes, &mut rng)?;
    Ok(g.num_nodes() as f64 / est.trace)
}

/// Exact single-node CFCC for every node:
/// `C(u) = n / (Tr(L†) + n·L†_uu)` — dense, small graphs. Only diagonal
/// entries are consumed, so the full pseudoinverse is never formed.
pub fn cfcc_single_exact(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let pdiag = pseudoinverse_diag(g);
    let trace: f64 = pdiag.iter().sum();
    pdiag
        .iter()
        .map(|&duu| n as f64 / (trace + n as f64 * duu))
        .collect()
}

/// The canonical grounding node for [`node_centrality`]: the max-degree
/// node. Any choice is mathematically equivalent (the formula corrects
/// for it); fixing one makes the factor shareable — a service caching
/// factors by grounding set hits the same entry for every
/// `node_centrality` request on a graph.
pub fn node_centrality_ground(g: &Graph) -> Node {
    g.max_degree_node().unwrap_or(0)
}

/// Current-flow closeness centrality of **every** node,
/// `C(u) = n / Σ_w R(u, w)` (Brandes–Fleischer; the networkx
/// `current_flow_closeness_centrality`), via **one** grounded factor.
///
/// Ground a single node `v` and let `M = L_{-v}^{-1}` (padded with a zero
/// row/column at `v`). Then `R(u, w) = M_uu + M_ww − 2·M_uw`, so
///
/// ```text
/// Σ_w R(u, w) = n·M_uu + Tr(M) − 2·(M·1)_u
/// ```
///
/// — everything needed is `diag(M)` ([`cfcc_linalg::sdd::SddFactor::diag_inverse`])
/// plus one extra solve for the row sums `M·1`. This matches the
/// pseudoinverse form `Σ_w R(u, w) = Tr(L†) + n·L†_uu` that
/// [`cfcc_single_exact`] evaluates densely, but runs through any backend.
pub fn node_centrality(g: &Graph, params: &CfcmParams) -> Result<Vec<f64>, CfcmError> {
    let n = g.num_nodes();
    if n < 2 {
        return Err(CfcmError::InvalidParameter(
            "node centrality needs at least 2 nodes".into(),
        ));
    }
    if !g.is_connected() {
        return Err(CfcmError::Disconnected);
    }
    let v = node_centrality_ground(g);
    let mut mask = vec![false; n];
    mask[v as usize] = true;
    let mut factor = sdd::factor(g, &mask, params.backend, &sdd_opts(params))?;
    node_centrality_from_factor(n, factor.as_mut())
}

/// The algebra of [`node_centrality`] against an already-built factor
/// grounded at exactly one node — the entry point for callers that keep
/// factors resident across requests (the `cfcc-serve` daemon).
pub fn node_centrality_from_factor(
    n: usize,
    factor: &mut dyn cfcc_linalg::SddFactor,
) -> Result<Vec<f64>, CfcmError> {
    let d = factor.dim();
    if d + 1 != n {
        return Err(CfcmError::InvalidParameter(format!(
            "node centrality needs a single-node grounding: factor dimension {d} vs n = {n}"
        )));
    }
    let diag = factor.diag_inverse()?;
    let ones = vec![1.0; d];
    let rowsum = factor.solve_vec(&ones)?;
    let trace: f64 = diag.iter().sum();
    let nf = n as f64;
    // The grounded node's own row of `M` is zero: Σ_w R(v, w) = Tr(M).
    let mut c = vec![nf / trace; n];
    for i in 0..d {
        let u = factor.node_of(i) as usize;
        c[u] = nf / (nf * diag[i] + trace - 2.0 * rowsum[i]);
    }
    Ok(c)
}

/// Resistance distance `R(u, v)` (dense, small graphs).
pub fn resistance_exact(g: &Graph, u: Node, v: Node) -> f64 {
    let pinv = pseudoinverse_dense(g);
    cfcc_linalg::pinv::resistance_distance(&pinv, u as usize, v as usize)
}

/// Resistance `R(u, S) = (L_{-S}^{-1})_{uu}` between a node and a grounded
/// group, via one solve through the `sparse-cg` backend — a single RHS
/// never justifies a dense `O(n³)` factorization, and the `O(m)` IC(0)
/// setup beats plain Jacobi CG on its own solve.
pub fn resistance_to_group_cg(
    g: &Graph,
    u: Node,
    group: &[Node],
    tol: f64,
) -> Result<f64, CfcmError> {
    let mask = group_mask(g, group)?;
    if mask[u as usize] {
        return Ok(0.0);
    }
    let mut factor = sdd::factor(
        g,
        &mask,
        cfcc_linalg::SddBackend::SparseCg,
        &SddOptions::with_tol(tol),
    )?;
    let ci = factor.compact_of(u).expect("u not in S");
    let mut b = vec![0.0; factor.dim()];
    b[ci] = 1.0;
    let x = factor.solve_vec(&b)?;
    Ok(x[ci])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use rand::Rng;

    #[test]
    fn group_mask_rejects_bad_groups() {
        let g = generators::cycle(5);
        assert!(group_mask(&g, &[1, 2]).is_ok());
        assert!(group_mask(&g, &[9]).is_err());
        assert!(group_mask(&g, &[1, 1]).is_err());
    }

    #[test]
    fn exact_and_cg_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::barabasi_albert(50, 2, &mut rng);
        let group = vec![3, 17];
        let a = cfcc_group_exact(&g, &group);
        let b = cfcc_group_cg(&g, &group, 1e-10).unwrap();
        assert!((a - b).abs() / a < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn hutchinson_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let group = vec![0, 10, 20];
        let exact = cfcc_group_exact(&g, &group);
        let params = CfcmParams::default();
        let est = cfcc_group_hutchinson(&g, &group, 600, &params).unwrap();
        assert!((est - exact).abs() / exact < 0.1, "{est} vs {exact}");
    }

    #[test]
    fn single_node_cfcc_matches_resistance_sum() {
        // C(u) = n / Σ_v R(u,v) by definition.
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::barabasi_albert(20, 2, &mut rng);
        let n = g.num_nodes();
        let c = cfcc_single_exact(&g);
        let pinv = pseudoinverse_dense(&g);
        for (u, &cu) in c.iter().enumerate() {
            let sum_r: f64 = (0..n)
                .map(|v| cfcc_linalg::pinv::resistance_distance(&pinv, u, v))
                .sum();
            assert!((cu - n as f64 / sum_r).abs() < 1e-9);
        }
    }

    #[test]
    fn node_centrality_star_closed_form() {
        // Star on n nodes, center 0: R(0, leaf) = 1, R(leaf, leaf') = 2.
        // C(center) = n/(n−1); C(leaf) = n/(1 + 2(n−2)) = n/(2n−3).
        let n = 9;
        let g = generators::star(n);
        let c = node_centrality(&g, &CfcmParams::default()).unwrap();
        let nf = n as f64;
        assert!((c[0] - nf / (nf - 1.0)).abs() < 1e-10, "center {}", c[0]);
        for &cu in &c[1..] {
            assert!((cu - nf / (2.0 * nf - 3.0)).abs() < 1e-10, "leaf {cu}");
        }
    }

    #[test]
    fn node_centrality_path_closed_form() {
        // Path: R(u, v) = |u − v|, so C(u) = n / Σ_v |u − v|.
        let n = 11;
        let g = generators::path(n);
        let c = node_centrality(&g, &CfcmParams::default()).unwrap();
        for (u, &cu) in c.iter().enumerate() {
            let sum_r: f64 = (0..n).map(|v| (v as f64 - u as f64).abs()).sum();
            assert!((cu - n as f64 / sum_r).abs() < 1e-10, "node {u}: {cu}");
        }
    }

    #[test]
    fn node_centrality_matches_networkx_formula_across_backends() {
        // Parity with the pseudoinverse form the networkx implementation
        // evaluates: C(u) = n / (Tr(L†) + n·L†_uu) (cfcc_single_exact).
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::barabasi_albert(60, 2, &mut rng);
        let reference = cfcc_single_exact(&g);
        for backend in [
            cfcc_linalg::SddBackend::DenseCholesky,
            cfcc_linalg::SddBackend::SparseCg,
            cfcc_linalg::SddBackend::TreePcg,
        ] {
            let params = CfcmParams {
                backend,
                cg_tol: 1e-11,
                ..CfcmParams::default()
            };
            let c = node_centrality(&g, &params).unwrap();
            for (u, (&a, &b)) in reference.iter().zip(&c).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-6 * a.abs(),
                    "{backend:?} node {u}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn node_centrality_rejects_degenerate_inputs() {
        let lonely = cfcc_graph::Graph::from_edges(1, &[]).unwrap();
        assert!(node_centrality(&lonely, &CfcmParams::default()).is_err());
        let split = cfcc_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            node_centrality(&split, &CfcmParams::default()),
            Err(CfcmError::Disconnected)
        ));
    }

    #[test]
    fn grounding_a_group_beats_its_members() {
        // C(S) ≥ max_u∈S C({u}) — grounding more nodes can only help.
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let s = vec![4, 9];
        let group = cfcc_group_exact(&g, &s);
        for &u in &s {
            assert!(group >= cfcc_group_exact(&g, &[u]) - 1e-12);
        }
    }

    #[test]
    fn resistance_to_group_matches_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let group = vec![0, 7];
        let mask = group_mask(&g, &group).unwrap();
        let (sub, keep) = laplacian_submatrix_dense(&g, &mask);
        let inv = sub.cholesky().unwrap().inverse();
        for (ci, &u) in keep.iter().enumerate() {
            let r = resistance_to_group_cg(&g, u, &group, 1e-11).unwrap();
            assert!((r - inv.get(ci, ci)).abs() < 1e-7);
        }
        assert_eq!(resistance_to_group_cg(&g, 0, &group, 1e-11).unwrap(), 0.0);
    }

    #[test]
    fn star_center_is_most_centrall() {
        let g = generators::star(12);
        let c = cfcc_single_exact(&g);
        let best = (0..12)
            .max_by(|&a, &b| c[a].partial_cmp(&c[b]).unwrap())
            .unwrap();
        assert_eq!(best, 0);
    }

    #[test]
    fn random_group_never_beats_containing_group() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        for _ in 0..5 {
            let a = rng.gen_range(0..40u32);
            let mut b = rng.gen_range(0..40u32);
            while b == a {
                b = rng.gen_range(0..40u32);
            }
            assert!(cfcc_group_exact(&g, &[a, b]) >= cfcc_group_exact(&g, &[a]) - 1e-12);
        }
    }
}
