//! Execution context shared by every CFCM solver: parameters, cooperative
//! cancellation, wall-clock deadlines, and per-iteration progress reporting.
//!
//! [`SolveContext`] is the single entry point for problem validation — every
//! solver calls [`SolveContext::check_problem`] before touching the graph,
//! so invalid `k`, disconnected inputs, and out-of-range parameters are
//! rejected uniformly (historically `exact_greedy` and the heuristics
//! skipped the parameter checks the Monte-Carlo solvers performed).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::engine::{self, GreedyWorkspace};
use crate::result::IterStats;
use crate::{CfcmError, CfcmParams};
use cfcc_graph::Graph;
use cfcc_linalg::sdd::{self, SddFactor, SddOptions};
use cfcc_linalg::{StopCause, StopHook};

/// Cooperative cancellation flag, cheaply cloneable across threads.
///
/// Solvers poll the token between greedy iterations; once cancelled they
/// return promptly with the partial [`crate::Selection`] accumulated so far
/// (fewer than `k` nodes, per-iteration stats intact).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Per-iteration progress callback.
pub type ProgressSink = dyn Fn(&IterStats) + Send + Sync;

/// Everything a [`crate::solver::CfcmSolver`] needs besides the problem
/// instance: tuning parameters plus run control (cancellation, deadline,
/// progress). Construct directly for library use, or let
/// [`crate::SolveSession`] assemble one.
pub struct SolveContext {
    /// Solver tuning parameters.
    pub params: CfcmParams,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    progress: Option<Box<ProgressSink>>,
    /// Persistent greedy execution state (sketches, warm-start solution
    /// blocks, round scratch, aggregated solver stats) — see
    /// [`crate::engine`]. Behind a mutex only so the context stays `Sync`;
    /// solvers access it from one thread at a time.
    workspace: Mutex<GreedyWorkspace>,
}

impl std::fmt::Debug for SolveContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveContext")
            .field("params", &self.params)
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field(
                "progress",
                &self.progress.as_ref().map(|_| "Fn(&IterStats)"),
            )
            .finish()
    }
}

impl Default for SolveContext {
    fn default() -> Self {
        Self::new(CfcmParams::default())
    }
}

impl SolveContext {
    /// A context with the given parameters and no run control attached.
    pub fn new(params: CfcmParams) -> Self {
        Self {
            params,
            cancel: None,
            deadline: None,
            progress: None,
            workspace: Mutex::new(GreedyWorkspace::new()),
        }
    }

    /// The run's persistent [`GreedyWorkspace`] (warm-start state, reusable
    /// buffers, aggregated solver stats).
    pub fn workspace(&self) -> MutexGuard<'_, GreedyWorkspace> {
        self.workspace.lock().expect("workspace mutex poisoned")
    }

    /// Convenience: borrow-and-clone construction from existing parameters
    /// (the path the legacy free functions take).
    pub fn from_params(params: &CfcmParams) -> Self {
        Self::new(params.clone())
    }

    /// Seed the context with a recycled [`GreedyWorkspace`] (builder
    /// style). Persisted sketches are revalidated against the graph by
    /// fingerprint inside the engine, so handing a workspace from a
    /// previous run — even one on a different graph — is always safe and
    /// skips the per-run resample when the graph, sketch width, and seed
    /// match. Pair with [`SolveContext::take_workspace`] to thread one
    /// workspace through a sequence of runs (what
    /// [`crate::SolveSession::run_reusing`] does).
    pub fn with_workspace(mut self, ws: GreedyWorkspace) -> Self {
        self.workspace = Mutex::new(ws);
        self
    }

    /// Take the workspace back out of a finished run, leaving a fresh one
    /// behind — the other half of the recycle loop.
    pub fn take_workspace(&mut self) -> GreedyWorkspace {
        std::mem::take(self.workspace.get_mut().expect("workspace mutex poisoned"))
    }

    /// Attach a cancellation token (builder style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach an absolute wall-clock deadline (builder style).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a deadline `timeout` from now (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Attach a per-iteration progress callback (builder style). Every
    /// greedy loop invokes it once per iteration, as the iteration's
    /// [`IterStats`] is recorded.
    pub fn with_progress<F>(mut self, sink: F) -> Self
    where
        F: Fn(&IterStats) + Send + Sync + 'static,
    {
        self.progress = Some(Box::new(sink));
        self
    }

    /// Attach an already-boxed progress sink (session internals).
    pub(crate) fn with_progress_box(mut self, sink: Box<ProgressSink>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// The uniform precondition check every solver runs first: `k` range,
    /// parameter ranges, then connectivity (cheapest first).
    pub fn check_problem(&self, g: &Graph, k: usize) -> Result<(), CfcmError> {
        let n = g.num_nodes();
        if k == 0 || k >= n {
            return Err(CfcmError::InvalidK { k, n });
        }
        self.params.validate()?;
        if !g.is_connected() {
            return Err(CfcmError::Disconnected);
        }
        Ok(())
    }

    /// SDD solver options derived from the parameters (CG tolerance,
    /// thread count for the worker pool behind the blocked kernels and
    /// the blocked multi-RHS PCG), with this context's run control
    /// attached: when a cancel token or deadline is present, every
    /// iterative solve polls it each sweep, so interruption reaches
    /// *inside* in-flight solves instead of waiting for round boundaries.
    pub fn sdd_options(&self) -> SddOptions {
        SddOptions {
            stop: self.stop_hook(),
            ..engine::solve_options(&self.params)
        }
    }

    /// The [`StopHook`] mirroring [`SolveContext::interrupted`]: fires
    /// [`StopCause::Cancelled`] when the cancel token trips and
    /// [`StopCause::DeadlineExceeded`] once the deadline passes. Returns
    /// a no-op hook when neither is attached, so unconstrained solves
    /// pay nothing per iteration.
    pub fn stop_hook(&self) -> StopHook {
        match (self.cancel.clone(), self.deadline) {
            (None, None) => StopHook::none(),
            (cancel, deadline) => StopHook::new(move || {
                if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Some(StopCause::Cancelled);
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Some(StopCause::DeadlineExceeded);
                }
                None
            }),
        }
    }

    /// Factor the grounded Laplacian `L_{-S}` through the backend chosen
    /// by [`CfcmParams::backend`] — the factor-once/solve-many seam every
    /// solver that needs `L_{-S}^{-1}` applications dispatches through.
    /// Iterative backends answer the greedy loops' multi-column
    /// `solve_mat` chunks with blocked multi-RHS PCG (one operator sweep
    /// shared by all columns per iteration), and reject groundings that
    /// leave part of the graph unreachable from `S` with a structured
    /// error instead of diverging.
    pub fn factor_grounded<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
    ) -> Result<Box<dyn SddFactor + Send + 'g>, CfcmError> {
        // The front door resolves `auto` (size-only since the lsst-pcg
        // routing change — no per-round topology sniff to memoize) and
        // falls back to sparse-cg if an auto-routed lsst factorization
        // fails on a pathological input.
        sdd::factor(g, in_s, self.params.backend, &self.sdd_options()).map_err(CfcmError::from)
    }

    /// Should the solver stop early? True once the cancel token fires or
    /// the deadline passes. Solvers poll this between iterations and return
    /// the partial selection accumulated so far.
    pub fn interrupted(&self) -> bool {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Report one completed iteration to the progress sink, if any.
    pub fn emit(&self, iteration: &IterStats) {
        if let Some(sink) = &self.progress {
            sink(iteration);
        }
    }

    /// Replay a whole run's iterations to the progress sink — for
    /// single-shot solvers (heuristics, exhaustive search) that produce
    /// their per-node stats after the fact rather than iteratively.
    pub fn emit_all(&self, iterations: &[IterStats]) {
        for it in iterations {
            self.emit(it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cancel_token_propagates_to_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled() && !t2.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled() && t2.is_cancelled());
    }

    #[test]
    fn interrupted_tracks_cancel_and_deadline() {
        let ctx = SolveContext::default();
        assert!(!ctx.interrupted());

        let token = CancelToken::new();
        let ctx = SolveContext::default().with_cancel(token.clone());
        assert!(!ctx.interrupted());
        token.cancel();
        assert!(ctx.interrupted());

        let past = Instant::now() - Duration::from_secs(1);
        assert!(SolveContext::default().with_deadline(past).interrupted());
        let future = Duration::from_secs(3600);
        assert!(!SolveContext::default().with_timeout(future).interrupted());
    }

    #[test]
    fn check_problem_orders_errors() {
        let g = generators::cycle(6);
        let bad_params = SolveContext::new(CfcmParams::with_epsilon(2.0));
        // k errors trump parameter errors; valid k surfaces the bad epsilon.
        assert!(matches!(
            bad_params.check_problem(&g, 0),
            Err(CfcmError::InvalidK { .. })
        ));
        assert!(matches!(
            bad_params.check_problem(&g, 2),
            Err(CfcmError::InvalidParameter(_))
        ));
        let disconnected = cfcc_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            SolveContext::default().check_problem(&disconnected, 2),
            Err(CfcmError::Disconnected)
        );
        assert!(SolveContext::default().check_problem(&g, 2).is_ok());
    }

    #[test]
    fn emit_reaches_the_sink() {
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let ctx = SolveContext::default().with_progress(move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        let it = IterStats {
            chosen: 0,
            forests: 0,
            walk_steps: 0,
            seconds: 0.0,
            gain: f64::NAN,
        };
        ctx.emit(&it);
        ctx.emit(&it);
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
