//! The persistent greedy execution engine: cross-iteration state that the
//! greedy solvers reuse instead of rebuilding every round.
//!
//! # DESIGN
//!
//! The paper's ApproxGreedy amortizes cost *within* one iteration (one
//! factorization, `2w` sketched right-hand sides), but a greedy run is a
//! *sequence* of nearly identical iterations: `L_{-S}` and `L_{-S∪{v}}`
//! differ by one grounded node. Treating every round as a cold universe
//! throws that structure away. [`GreedyWorkspace`] — owned by
//! [`crate::SolveContext`], one per run — keeps three things alive across
//! iterations:
//!
//! * **Persistent sketches.** The JL sketch `W` and the sketched
//!   incidence `(Q B)ᵀ` are sampled **once over the full node space** and
//!   restricted to the kept nodes each round, instead of being resampled
//!   per iteration. A row subset of a Rademacher matrix is a Rademacher
//!   matrix, so each round sees a correctly distributed sketch of its
//!   compact space; note, though, that because the grounding chosen in
//!   round `t` depends on the sketch, rounds are no longer statistically
//!   independent — one unlucky draw biases every round the same way
//!   rather than failing independently per round (the classical
//!   per-round JL guarantee becomes a heuristic across rounds, the trade
//!   the warm start buys; cross-backend selection tests and the
//!   exact-greedy quality gates hold). Consecutive iterations now solve
//!   for right-hand sides that differ only by one deleted row — which is
//!   what makes warm starts meaningful.
//! * **Warm-started solution blocks.** The previous iteration's `2w`
//!   solutions are kept and projected onto the new grounding (the newly
//!   grounded row is dropped; everything else carries over) to seed the
//!   backend's block warm-start entry point
//!   [`SddFactor::solve_mat_into`]. On the iterative backends the blocked
//!   PCG then starts from a residual that is one rank-one correction away
//!   from converged, cutting the Krylov iteration count of rounds `3..k`
//!   sharply (see `BENCH_PR5.json`).
//! * **Round scratch.** The chunked RHS/solution buffers and SchurDelta's
//!   dense round buffers are reused across iterations instead of being
//!   reallocated.
//!
//! The workspace also **aggregates [`SolveStats`] across every factor of
//! the run**, so the warm-start win is observable end to end:
//! [`crate::RunStats::solve`] carries the totals into reports and the
//! regression tests.

use crate::{CfcmError, CfcmParams};
use cfcc_graph::{Graph, Node};
use cfcc_linalg::jl::JlSketch;
use cfcc_linalg::sdd::{SddFactor, SddOptions, SolveStats};
use cfcc_linalg::vector::norm2_sq;
use cfcc_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Column-chunk width of the sketched multi-RHS solves: bounds the live
/// solver workspace at `O(n · RHS_CHUNK)` while still amortizing each
/// factorization and each blocked-PCG sweep over a full chunk.
pub const RHS_CHUNK: usize = 16;

/// SDD solver options derived from solver parameters — the one place the
/// CG tolerance and the worker-pool thread count are wired together, used
/// by [`crate::SolveContext::sdd_options`] and the `cfcc` evaluators
/// alike.
pub fn solve_options(params: &CfcmParams) -> SddOptions {
    SddOptions {
        rel_tol: params.cg_tol,
        max_iter: 50_000,
        threads: params.threads,
        // Run control (cancel/deadline) is attached by the owning
        // `SolveContext`, which layers its stop hook on top of these.
        ..SddOptions::default()
    }
}

/// Reusable dense buffers for SchurDelta rounds — held by the workspace
/// so SchurCFCM's greedy loop re-fills the same allocations every
/// iteration (the `|T|` shrinks as `T ∖ S` loses nodes; shrinking a
/// buffer never reallocates).
#[derive(Default)]
pub(crate) struct SchurScratch {
    /// `(W·F̃ + Q)ᵀ ∈ R^{|T| × w}`, rows contiguous per root.
    pub wfq_t: DenseMatrix,
    /// `G · wfq_t ∈ R^{|T| × w}`.
    pub ht: DenseMatrix,
    /// Scratch for the `fᵀ G f` quadratic form.
    pub gf: Vec<f64>,
}

impl SchurScratch {
    /// Shape the buffers for a round with `t_len` roots and width `w`.
    pub fn ensure(&mut self, t_len: usize, w: usize) {
        self.wfq_t.reshape(t_len, w);
        self.ht.reshape(t_len, w);
        self.gf.resize(t_len, 0.0);
    }
}

/// Cross-iteration state of one greedy run. Obtain it through
/// [`crate::SolveContext::workspace`]; see the module docs for what is
/// persisted and why.
#[derive(Default)]
pub struct GreedyWorkspace {
    /// JL sketch `W` over the full node space (`w × n`), sampled once.
    sketch: Option<JlSketch>,
    /// Full-space sketched incidence `(Q B)ᵀ` (`n × w`), sampled once.
    den_rhs: Option<DenseMatrix>,
    /// Identity of the persisted sketches: `(graph fingerprint, w, seed)`.
    /// Sketches survive across runs (service reuse) and are resampled
    /// only when this key changes — a different graph, width, or seed.
    sketch_key: Option<(u64, usize, u64)>,
    /// How many times the sketches have been (re)sampled over this
    /// workspace's lifetime — lets reuse tests observe that consecutive
    /// runs on the same graph skip the `O(w·(n+m))` resample.
    resamples: u64,
    /// Previous iteration's solution blocks (`d_prev × w` each) and the
    /// compact-order kept nodes they are indexed by.
    prev_num: DenseMatrix,
    prev_den: DenseMatrix,
    prev_kept: Vec<Node>,
    /// Current iteration's solution blocks, filled chunk by chunk and
    /// swapped into `prev_*` at the end of the round.
    cur_num: DenseMatrix,
    cur_den: DenseMatrix,
    /// Chunked RHS / solution scratch (`d × RHS_CHUNK`).
    rhs_chunk: DenseMatrix,
    x_chunk: DenseMatrix,
    /// SchurDelta round buffers.
    pub(crate) schur: SchurScratch,
    /// Aggregated solver work across every factor this run touched.
    solve: SolveStats,
}

impl GreedyWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new run: drop warm-start state from any previous run and
    /// reset the aggregated solver stats. Sketches are **kept** — they are
    /// validated against the graph by fingerprint in
    /// [`GreedyWorkspace::ensure_sketch`], so a workspace recycled across
    /// requests (see [`crate::SolveSession::run_reusing`]) skips the
    /// per-run resample instead of re-sketching every time.
    pub fn begin_run(&mut self) {
        self.prev_kept.clear();
        self.solve = SolveStats::default();
    }

    /// Times the sketches have been (re)sampled over this workspace's
    /// lifetime (1 after any number of same-graph/same-seed runs).
    pub fn sketch_resamples(&self) -> u64 {
        self.resamples
    }

    /// Aggregated [`SolveStats`] across every factor absorbed so far.
    pub fn solve_stats(&self) -> SolveStats {
        self.solve
    }

    /// Fold one factor's cumulative stats into the run aggregate. Call
    /// once per factor, after its last solve.
    pub fn absorb_solve_stats(&mut self, s: SolveStats) {
        self.solve.solves += s.solves;
        self.solve.iterations += s.iterations;
        self.solve.max_rel_residual = self.solve.max_rel_residual.max(s.max_rel_residual);
        self.solve.last_rel_residual = s.last_rel_residual;
        self.solve.flops += s.flops;
        self.solve.precond_shift = self.solve.precond_shift.max(s.precond_shift);
        self.solve.precond_stretch = self.solve.precond_stretch.max(s.precond_stretch);
        self.solve.precond_offtree_edges = self
            .solve
            .precond_offtree_edges
            .max(s.precond_offtree_edges);
    }

    /// Sample the persistent sketches for graph `g` at width `w`
    /// (idempotent while the `(graph, w, seed)` identity matches — across
    /// runs, not just within one). The RNG stream is derived from `seed`
    /// alone, so runs stay deterministic, and a reused workspace produces
    /// exactly the sketch a fresh one would: resampling from the same seed
    /// and keeping the old sample are indistinguishable.
    pub fn ensure_sketch(&mut self, g: &Graph, w: usize, seed: u64) {
        let n = g.num_nodes();
        let key = (graph_fingerprint(g), w, seed);
        if self.sketch.is_some() && self.sketch_key == Some(key) {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE2617E);
        self.sketch = Some(JlSketch::sample(w, n, &mut rng));
        let scale = 1.0 / (w as f64).sqrt();
        let mut den = DenseMatrix::zeros(n, w);
        for j in 0..w {
            for (a, b) in g.edges() {
                let s = if rng.gen::<bool>() { scale } else { -scale };
                den.add_to(a as usize, j, s);
                den.add_to(b as usize, j, -s);
            }
        }
        self.den_rhs = Some(den);
        self.sketch_key = Some(key);
        self.resamples += 1;
        // New sketches invalidate any previous solutions as warm starts.
        self.prev_kept.clear();
    }

    /// If the previous iteration's kept set is exactly `kept` plus one
    /// newly grounded node, return that node's previous compact index
    /// (the row to drop when projecting old solutions onto the new
    /// grounding).
    fn warm_shift(&self, kept: &[Node]) -> Option<usize> {
        if self.prev_kept.len() != kept.len() + 1 {
            return None;
        }
        let mut i = 0;
        while i < kept.len() && self.prev_kept[i] == kept[i] {
            i += 1;
        }
        debug_assert!(
            kept[i..]
                .iter()
                .zip(&self.prev_kept[i + 1..])
                .all(|(a, b)| a == b),
            "kept sets differ by more than one grounding"
        );
        Some(i)
    }

    /// One greedy iteration's `2w` sketched solves through `factor`:
    /// numerator solves `L_{-S} Y = Wᵀ` and denominator solves
    /// `L_{-S} Z = (Q B)ᵀ`, both restricted to the kept rows, in
    /// [`RHS_CHUNK`]-column chunks. With `warm` (and a previous round one
    /// grounding away) every chunk's initial guess is the previous
    /// round's solution block with the newly grounded row dropped —
    /// the block warm start. Returns the per-node accumulators
    /// `num[i] = Σ_j Y[i,j]²` and `den[i] = Σ_j Z[i,j]²` over the compact
    /// space, and retains the solutions to seed the next round.
    ///
    /// [`GreedyWorkspace::ensure_sketch`] must have been called for this
    /// graph first.
    pub fn sketched_gains(
        &mut self,
        factor: &mut dyn SddFactor,
        warm: bool,
    ) -> Result<(Vec<f64>, Vec<f64>), CfcmError> {
        let sketch = self.sketch.as_ref().expect("ensure_sketch first");
        let w = sketch.width();
        let d = factor.dim();
        let kept: Vec<Node> = factor.kept_nodes().to_vec();
        let shift = if warm { self.warm_shift(&kept) } else { None };
        self.cur_num.reshape(d, w);
        self.cur_den.reshape(d, w);
        let mut num = vec![0.0f64; d];
        let mut den = vec![0.0f64; d];
        let mut j0 = 0;
        while j0 < w {
            let c = (w - j0).min(RHS_CHUNK);
            self.rhs_chunk.reshape(d, c);
            self.x_chunk.reshape(d, c);
            // Numerator chunk: rows of W (as columns) on the kept nodes.
            let sketch = self.sketch.as_ref().unwrap();
            for (i, &u) in kept.iter().enumerate() {
                self.rhs_chunk
                    .row_mut(i)
                    .copy_from_slice(&sketch.column(u as usize)[j0..j0 + c]);
            }
            seed_guess(&self.prev_num, shift, &mut self.x_chunk, j0, c);
            // On a failed or interrupted solve the round is abandoned
            // without swapping `prev_*` — they still describe the
            // `prev_kept` grounding, so the workspace stays reusable for
            // a retry — but the factor's partial work is absorbed first
            // so aborted sweeps show up in the run's stats.
            if let Err(e) = factor.solve_mat_into(&self.rhs_chunk, &mut self.x_chunk) {
                self.absorb_solve_stats(factor.stats());
                return Err(CfcmError::from(e));
            }
            for (i, acc) in num.iter_mut().enumerate() {
                let row = self.x_chunk.row(i);
                *acc += norm2_sq(row);
                self.cur_num.row_mut(i)[j0..j0 + c].copy_from_slice(row);
            }
            // Denominator chunk: sketched incidence columns on the kept
            // nodes.
            let den_rhs = self.den_rhs.as_ref().unwrap();
            for (i, &u) in kept.iter().enumerate() {
                self.rhs_chunk
                    .row_mut(i)
                    .copy_from_slice(&den_rhs.row(u as usize)[j0..j0 + c]);
            }
            seed_guess(&self.prev_den, shift, &mut self.x_chunk, j0, c);
            if let Err(e) = factor.solve_mat_into(&self.rhs_chunk, &mut self.x_chunk) {
                self.absorb_solve_stats(factor.stats());
                return Err(CfcmError::from(e));
            }
            for (i, acc) in den.iter_mut().enumerate() {
                let row = self.x_chunk.row(i);
                *acc += norm2_sq(row);
                self.cur_den.row_mut(i)[j0..j0 + c].copy_from_slice(row);
            }
            j0 += c;
        }
        std::mem::swap(&mut self.prev_num, &mut self.cur_num);
        std::mem::swap(&mut self.prev_den, &mut self.cur_den);
        self.prev_kept = kept;
        self.absorb_solve_stats(factor.stats());
        Ok((num, den))
    }
}

/// FNV-1a over the node count, edge count, and edge list — the identity
/// under which persisted sketches stay valid. `O(m)`, a factor `w` cheaper
/// than resampling the sketched incidence, which is the point: recycled
/// workspaces (daemon requests, repeated sessions) pay a hash, not a
/// resample. Collisions would need two different graphs with identical
/// FNV streams — vanishingly unlikely and at worst a quality (not
/// soundness) issue, since sketches are random projections to begin with.
fn graph_fingerprint(g: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(PRIME)
    }
    let mut h = mix(mix(OFFSET, g.num_nodes() as u64), g.num_edges() as u64);
    for (a, b) in g.edges() {
        h = mix(h, (u64::from(a) << 32) | u64::from(b));
    }
    h
}

/// Seed `x` (a `d × c` chunk covering sketch columns `j0..j0+c`) from the
/// previous round's solutions: row `i` of the new compact space maps to
/// previous row `i` (before the dropped row) or `i + 1` (after it). With
/// no usable previous round, the guess is zero (cold start).
fn seed_guess(prev: &DenseMatrix, shift: Option<usize>, x: &mut DenseMatrix, j0: usize, c: usize) {
    match shift {
        None => x.fill_zero(),
        Some(dropped) => {
            for i in 0..x.rows() {
                let pi = if i < dropped { i } else { i + 1 };
                x.row_mut(i).copy_from_slice(&prev.row(pi)[j0..j0 + c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use cfcc_linalg::sdd::{self, SddBackend};

    #[test]
    fn solve_options_carry_tolerance_and_threads() {
        let p = CfcmParams {
            cg_tol: 1e-9,
            threads: 3,
            ..CfcmParams::default()
        };
        let o = solve_options(&p);
        assert_eq!(o.rel_tol, 1e-9);
        assert_eq!(o.threads, 3);
    }

    #[test]
    fn ensure_sketch_is_idempotent_and_resets_on_reshape() {
        let g = generators::cycle(30);
        let mut ws = GreedyWorkspace::new();
        ws.ensure_sketch(&g, 8, 7);
        let col0: Vec<f64> = ws.sketch.as_ref().unwrap().column(3).to_vec();
        ws.ensure_sketch(&g, 8, 7);
        assert_eq!(ws.sketch.as_ref().unwrap().column(3), &col0[..]);
        ws.ensure_sketch(&g, 12, 7);
        assert_eq!(ws.sketch.as_ref().unwrap().width(), 12);
    }

    #[test]
    fn sketches_survive_begin_run_and_track_graph_identity() {
        let g = generators::cycle(30);
        let mut ws = GreedyWorkspace::new();
        ws.ensure_sketch(&g, 8, 7);
        assert_eq!(ws.sketch_resamples(), 1);
        // A new run on the same graph/width/seed reuses the sample.
        ws.begin_run();
        ws.ensure_sketch(&g, 8, 7);
        assert_eq!(ws.sketch_resamples(), 1);
        // Same shape but different edges: fingerprint forces a resample.
        let g2 = generators::path(30);
        ws.ensure_sketch(&g2, 8, 7);
        assert_eq!(ws.sketch_resamples(), 2);
        // Different seed: the persisted sample no longer matches.
        ws.ensure_sketch(&g2, 8, 9);
        assert_eq!(ws.sketch_resamples(), 3);
    }

    #[test]
    fn warm_shift_maps_the_dropped_row() {
        let mut ws = GreedyWorkspace::new();
        ws.prev_kept = vec![0, 1, 3, 5, 6];
        assert_eq!(ws.warm_shift(&[0, 1, 3, 6]), Some(3));
        assert_eq!(ws.warm_shift(&[1, 3, 5, 6]), Some(0));
        assert_eq!(ws.warm_shift(&[0, 1, 3, 5]), Some(4));
        assert_eq!(ws.warm_shift(&[0, 1, 3, 5, 6]), None); // same length
        ws.prev_kept.clear();
        assert_eq!(ws.warm_shift(&[0, 1]), None);
    }

    #[test]
    fn sketched_gains_warm_start_cuts_iterations_and_keeps_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x6A1);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let n = g.num_nodes();
        let params = CfcmParams {
            cg_tol: 1e-9,
            ..CfcmParams::default()
        };
        let opts = solve_options(&params);
        let mut in_s = vec![false; n];
        in_s[5] = true;

        // Cold workspace: two successive groundings, no warm start.
        let mut cold = GreedyWorkspace::new();
        cold.ensure_sketch(&g, 8, 3);
        let mut f = sdd::factor(&g, &in_s, SddBackend::SparseCg, &opts).unwrap();
        cold.sketched_gains(f.as_mut(), false).unwrap();
        in_s[17] = true;
        let mut f = sdd::factor(&g, &in_s, SddBackend::SparseCg, &opts).unwrap();
        let (num_c, den_c) = cold.sketched_gains(f.as_mut(), false).unwrap();
        let cold_iters = cold.solve_stats().iterations;

        // Warm workspace: same rounds, second one warm-started.
        in_s[17] = false;
        let mut warm = GreedyWorkspace::new();
        warm.ensure_sketch(&g, 8, 3);
        let mut f = sdd::factor(&g, &in_s, SddBackend::SparseCg, &opts).unwrap();
        warm.sketched_gains(f.as_mut(), true).unwrap();
        in_s[17] = true;
        let mut f = sdd::factor(&g, &in_s, SddBackend::SparseCg, &opts).unwrap();
        let (num_w, den_w) = warm.sketched_gains(f.as_mut(), true).unwrap();
        let warm_iters = warm.solve_stats().iterations;

        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} must beat cold {cold_iters}"
        );
        // Both converge to the same tolerance: the accumulators agree.
        for (a, b) in num_c.iter().zip(&num_w) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
        for (a, b) in den_c.iter().zip(&den_w) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
}
