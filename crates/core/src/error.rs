//! Error type for the CFCM solvers.

use std::fmt;

/// Errors from CFCM algorithm entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum CfcmError {
    /// `k` must satisfy `1 ≤ k < n`.
    InvalidK {
        /// Requested group size.
        k: usize,
        /// Graph size.
        n: usize,
    },
    /// CFCM is defined on connected graphs (extract the LCC first).
    Disconnected,
    /// A parameter was out of range (message explains).
    InvalidParameter(String),
    /// A linear-algebra subroutine failed (e.g. an estimated Schur
    /// complement stayed indefinite after regularization).
    Numerical(String),
    /// No registered solver under this name (see `registry::all`).
    UnknownSolver(String),
    /// The selected solver declared itself unable to run at this problem
    /// size (its `supports` capability hint).
    Unsupported(String),
    /// The run was interrupted mid-solve by its cancel token or deadline
    /// (see [`crate::SolveContext::stop_hook`]). Greedy loops catch this
    /// and return the partial selection accumulated so far; it only
    /// escapes from entry points with nothing partial to return.
    Interrupted(cfcc_linalg::StopCause),
}

impl fmt::Display for CfcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfcmError::InvalidK { k, n } => {
                write!(f, "group size k={k} must satisfy 1 <= k < n={n}")
            }
            CfcmError::Disconnected => {
                write!(
                    f,
                    "graph must be connected (run on the largest connected component)"
                )
            }
            CfcmError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CfcmError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            CfcmError::UnknownSolver(name) => {
                write!(
                    f,
                    "unknown solver '{name}' (see registry::all for the available names)"
                )
            }
            CfcmError::Unsupported(msg) => write!(f, "solver unsupported here: {msg}"),
            CfcmError::Interrupted(cause) => {
                let what = match cause {
                    cfcc_linalg::StopCause::Cancelled => "cancelled",
                    cfcc_linalg::StopCause::DeadlineExceeded => "deadline exceeded",
                };
                write!(f, "run interrupted: {what}")
            }
        }
    }
}

impl std::error::Error for CfcmError {}

impl From<cfcc_linalg::LinalgError> for CfcmError {
    fn from(e: cfcc_linalg::LinalgError) -> Self {
        match e {
            cfcc_linalg::LinalgError::Cancelled { .. } => {
                CfcmError::Interrupted(cfcc_linalg::StopCause::Cancelled)
            }
            cfcc_linalg::LinalgError::DeadlineExceeded { .. } => {
                CfcmError::Interrupted(cfcc_linalg::StopCause::DeadlineExceeded)
            }
            other => CfcmError::Numerical(other.to_string()),
        }
    }
}

/// Validate common preconditions shared by all CFCM entry points.
pub(crate) fn validate(g: &cfcc_graph::Graph, k: usize) -> Result<(), CfcmError> {
    let n = g.num_nodes();
    if k == 0 || k >= n {
        return Err(CfcmError::InvalidK { k, n });
    }
    if !g.is_connected() {
        return Err(CfcmError::Disconnected);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::{generators, Graph};

    #[test]
    fn validates_k_range() {
        let g = generators::cycle(5);
        assert!(validate(&g, 1).is_ok());
        assert!(validate(&g, 4).is_ok());
        assert_eq!(validate(&g, 0), Err(CfcmError::InvalidK { k: 0, n: 5 }));
        assert_eq!(validate(&g, 5), Err(CfcmError::InvalidK { k: 5, n: 5 }));
    }

    #[test]
    fn validates_connectivity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(validate(&g, 1), Err(CfcmError::Disconnected));
    }

    #[test]
    fn display_strings() {
        assert!(CfcmError::InvalidK { k: 3, n: 2 }
            .to_string()
            .contains("k=3"));
        assert!(CfcmError::Disconnected.to_string().contains("connected"));
        assert!(CfcmError::Numerical("x".into()).to_string().contains('x'));
    }
}
