//! Tuning parameters shared by all CFCM solvers, plus the auxiliary
//! root-set sizing rule `|T*|` of SchurCFCM (paper §V-A).

use cfcc_graph::{Graph, Node};
use cfcc_linalg::jl;
use cfcc_linalg::sdd::SddBackend;

/// Parameters for the Monte-Carlo CFCM solvers.
///
/// Defaults follow the paper's experimental setup (`ε = 0.2`) with
/// *practical-mode* constants: sketch widths of `O(log n)` and a bounded
/// forest budget, both of which the adaptive Bernstein stop usually
/// undercuts. Set [`CfcmParams::use_theoretical_bounds`] to reproduce the
/// (astronomically conservative) Lemma 3.9 / Lemma 4.5 sample sizes.
#[derive(Debug, Clone)]
pub struct CfcmParams {
    /// Error parameter `ε ∈ (0, 1)` of the approximation guarantee.
    pub epsilon: f64,
    /// Master RNG seed — all sampling is deterministic given this.
    pub seed: u64,
    /// Worker threads for forest sampling *and* the blocked dense kernels
    /// (1 = serial; selections are thread-count independent, and the
    /// dense kernels are bit-identical across thread counts).
    pub threads: usize,
    /// Override the JL sketch width (`None` = practical width from ε, n).
    pub jl_width: Option<usize>,
    /// First batch size of the doubling schedule.
    pub min_batch: u64,
    /// Practical ceiling on forests per greedy iteration.
    pub max_forests: u64,
    /// Confidence δ for the empirical-Bernstein stop.
    pub delta_confidence: f64,
    /// Relative tolerance of the CG Laplacian solves (ApproxGreedy, CFCC
    /// evaluation).
    pub cg_tol: f64,
    /// SDD solver backend for grounded Laplacian systems (`auto` picks
    /// dense Cholesky on small systems and the CSR/IC(0) sparse solver on
    /// large ones; `tree-pcg` — the compensated spanning-tree
    /// preconditioner — is an explicit opt-in for meshes and road
    /// networks; see `cfcc_linalg::sdd`).
    pub backend: SddBackend,
    /// Size `c` of SchurCFCM's auxiliary root set `T` (`None` = `|T*|`).
    pub schur_c: Option<usize>,
    /// Warm-start the greedy iterations' sketched solves from the
    /// previous iteration's solutions (the systems differ by one grounded
    /// node; see `cfcc_core::engine`). On by default — turning it off
    /// forces every round to cold-start, which only the warm-vs-cold
    /// benchmarks and regression tests want.
    pub warm_start: bool,
    /// Use the paper's worst-case Hoeffding sample bounds instead of the
    /// practical ceiling (matches the theory, explodes the runtime).
    pub use_theoretical_bounds: bool,
}

impl Default for CfcmParams {
    fn default() -> Self {
        Self {
            epsilon: 0.2,
            seed: 0x5EED,
            threads: 1,
            jl_width: None,
            min_batch: 64,
            max_forests: 4096,
            delta_confidence: 0.01,
            cg_tol: 1e-6,
            backend: SddBackend::Auto,
            schur_c: None,
            warm_start: true,
            use_theoretical_bounds: false,
        }
    }
}

impl CfcmParams {
    /// Defaults with the given `ε`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style thread count override.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style SDD backend override.
    pub fn backend(mut self, backend: SddBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style warm-start override (off = cold-start every greedy
    /// iteration's solves).
    pub fn warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Effective JL width for an `n`-node problem.
    pub fn width(&self, n: usize) -> usize {
        if let Some(w) = self.jl_width {
            return w.max(1);
        }
        if self.use_theoretical_bounds {
            jl::theoretical_width(n, self.epsilon)
        } else {
            jl::practical_width(n, self.epsilon)
        }
    }

    /// Effective forest cap for one greedy iteration.
    ///
    /// `tau` and `dmax_s` feed the Lemma 3.9 bound in theoretical mode.
    pub fn forest_cap(&self, n: usize, tau: u32, dmax_s: usize) -> u64 {
        if self.use_theoretical_bounds {
            cfcc_forest::bernstein::hoeffding_cap(
                n,
                tau,
                dmax_s,
                self.epsilon,
                self.min_batch,
                u64::MAX / 2,
            )
        } else {
            self.max_forests.max(self.min_batch)
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), crate::CfcmError> {
        if !(0.0 < self.epsilon && self.epsilon < 1.0) {
            return Err(crate::CfcmError::InvalidParameter(format!(
                "epsilon must be in (0,1), got {}",
                self.epsilon
            )));
        }
        if self.min_batch == 0 {
            return Err(crate::CfcmError::InvalidParameter(
                "min_batch must be >= 1".into(),
            ));
        }
        if !(0.0 < self.delta_confidence && self.delta_confidence < 1.0) {
            return Err(crate::CfcmError::InvalidParameter(
                "delta_confidence must be in (0,1)".into(),
            ));
        }
        Ok(())
    }
}

/// The paper's auxiliary root-set sizing rule: the balance point
/// `|T*| = argmin_{|T|} {| |T| − d_max(T) |}` between the cost of inverting
/// the `|T| × |T|` Schur complement (grows with `|T|`) and the sampling
/// bound driven by `d_max(T)` (shrinks with `|T|`). Implemented as the
/// smallest `c` with `c ≥ d_max` after removing the top-`c` hubs.
pub fn t_star(g: &Graph) -> usize {
    let n = g.num_nodes();
    if n <= 2 {
        return 1;
    }
    let by_degree = g.nodes_by_degree_desc();
    // Residual degrees after removing hubs one at a time, tracked with a
    // bucket count per degree value so the residual maximum updates in
    // O(1) amortized per removal (degrees only decrease, so the max
    // pointer only ever moves down): O(n + m) total instead of the O(n)
    // full rescan per removal (O(n²)) this used to do.
    let mut residual: Vec<usize> = (0..n as Node).map(|u| g.degree(u)).collect();
    let max_degree = residual.iter().copied().max().unwrap_or(0);
    let mut bucket = vec![0usize; max_degree + 1];
    for &d in &residual {
        bucket[d] += 1;
    }
    let mut dmax = max_degree;
    let mut removed = vec![false; n];
    for (c, &hub) in by_degree.iter().enumerate() {
        removed[hub as usize] = true;
        bucket[residual[hub as usize]] -= 1;
        for &v in g.neighbors(hub) {
            let v = v as usize;
            if !removed[v] {
                bucket[residual[v]] -= 1;
                residual[v] -= 1;
                bucket[residual[v]] += 1;
            }
        }
        while dmax > 0 && bucket[dmax] == 0 {
            dmax -= 1;
        }
        let size = c + 1;
        if size >= dmax {
            return size.max(1);
        }
    }
    n - 1
}

/// The top-`c` degree nodes (SchurCFCM's `T`, Line 1 of Algorithm 5).
pub fn top_degree_nodes(g: &Graph, c: usize) -> Vec<Node> {
    let mut nodes = g.nodes_by_degree_desc();
    nodes.truncate(c);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_validate() {
        assert!(CfcmParams::default().validate().is_ok());
        assert!(CfcmParams::with_epsilon(1.5).validate().is_err());
        assert!(CfcmParams::with_epsilon(0.0).validate().is_err());
        let p = CfcmParams {
            min_batch: 0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn width_respects_override_and_mode() {
        let mut p = CfcmParams::default();
        assert!(p.width(10_000) >= 8);
        p.jl_width = Some(4);
        assert_eq!(p.width(10_000), 4);
        p.jl_width = None;
        p.use_theoretical_bounds = true;
        assert!(p.width(10_000) > 10_000);
    }

    #[test]
    fn forest_cap_modes() {
        let mut p = CfcmParams::default();
        assert_eq!(p.forest_cap(1000, 10, 50), 4096);
        p.use_theoretical_bounds = true;
        assert!(p.forest_cap(1000, 10, 50) > 4096);
    }

    #[test]
    fn t_star_on_star_graph() {
        // Star: removing the hub leaves isolated leaves (d_max = 0), so
        // c = 1 already satisfies c >= d_max.
        let g = generators::star(50);
        assert_eq!(t_star(&g), 1);
    }

    #[test]
    fn t_star_balances_on_scale_free() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::scale_free_with_edges(2000, 8000, &mut rng);
        let c = t_star(&g);
        assert!((1..2000).contains(&c));
        // At the balance point, c is at least the residual max degree.
        let t = top_degree_nodes(&g, c);
        let mut in_t = vec![false; 2000];
        for &h in &t {
            in_t[h as usize] = true;
        }
        assert!(c >= g.max_degree_excluding(&in_t));
    }

    /// The pre-optimization reference: full residual-degree rescan per
    /// removed hub (O(n²)). Kept as the oracle for the incremental version.
    fn t_star_naive(g: &Graph) -> usize {
        let n = g.num_nodes();
        if n <= 2 {
            return 1;
        }
        let by_degree = g.nodes_by_degree_desc();
        let mut residual: Vec<i64> = (0..n as Node).map(|u| g.degree(u) as i64).collect();
        let mut removed = vec![false; n];
        for (c, &hub) in by_degree.iter().enumerate() {
            removed[hub as usize] = true;
            for &v in g.neighbors(hub) {
                residual[v as usize] -= 1;
            }
            let dmax = (0..n)
                .filter(|&u| !removed[u])
                .map(|u| residual[u])
                .max()
                .unwrap_or(0);
            let size = c + 1;
            if size as i64 >= dmax {
                return size.max(1);
            }
        }
        n - 1
    }

    #[test]
    fn incremental_t_star_matches_naive_scan() {
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..12u64 {
            let g = match trial % 4 {
                0 => generators::barabasi_albert(150 + 17 * trial as usize, 3, &mut rng),
                1 => generators::scale_free_with_edges(400, 1600, &mut rng),
                2 => generators::erdos_renyi_gnm(200, 800, &mut rng),
                _ => generators::geometric_with_edges(300, 900, &mut rng),
            };
            assert_eq!(t_star(&g), t_star_naive(&g), "trial {trial}");
        }
        // Structured corner cases.
        for g in [
            generators::star(50),
            generators::cycle(40),
            generators::complete(12),
        ] {
            assert_eq!(t_star(&g), t_star_naive(&g));
        }
    }

    #[test]
    fn top_degree_nodes_sorted() {
        let g = generators::star(10);
        let t = top_degree_nodes(&g, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], 0); // the hub
    }

    #[test]
    fn builder_methods() {
        let p = CfcmParams::default().seed(9).threads(0);
        assert_eq!(p.seed, 9);
        assert_eq!(p.threads, 1);
    }
}
