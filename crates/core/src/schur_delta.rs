//! SchurDelta (paper Algorithm 4): marginal gains via forests rooted at
//! the *enlarged* set `S ∪ T`.
//!
//! With `U = V ∖ (S ∪ T)` and `Σ = S_T(L_{-S})`, Eq. (11) block-decomposes
//!
//! ```text
//! L_{-S}^{-1} = [ L_UU^{-1} + F Σ^{-1} Fᵀ    F Σ^{-1}  ]
//!               [ Σ^{-1} Fᵀ                 Σ^{-1}     ]
//! ```
//!
//! where `F_{ut} = Pr(ρ_u = t)` (Lemma 4.2). The forests rooted at `S ∪ T`
//! supply three things at once: the `L_UU^{-1}` estimators (same machinery
//! as ForestDelta, but with much shorter walks — the paper's speed-up),
//! the rooted probabilities `F̃`, and, through Eq. (15), the estimated
//! `Σ̃` — inverted densely since `|T| ≪ n`.

use crate::adaptive::{batch_schedule, Candidate, StopRule};
use crate::engine::{GreedyWorkspace, SchurScratch};
use crate::forest_delta::top2_max;
use crate::schur::{estimated_schur, invert_estimated_schur};
use crate::{CfcmError, CfcmParams};
use cfcc_forest::bernstein::bernstein_halfwidth;
use cfcc_forest::estimators::{DiagMode, ElectricalAccumulator, YMatrix};
use cfcc_forest::rooted::{RootIndex, RootedCounts};
use cfcc_forest::sampler::{absorb_batch, SamplerConfig};
use cfcc_graph::{Graph, Node};
use cfcc_linalg::jl::JlSketch;
use cfcc_linalg::vector::norm2_sq;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Output of one Schur delta-estimation round.
#[derive(Debug, Clone)]
pub struct SchurDeltaEstimates {
    /// `Δ'(u, S)` per node (`NaN` for `u ∈ S`).
    pub deltas: Vec<f64>,
    /// Argmax node.
    pub best: Node,
    /// Forests sampled.
    pub forests: u64,
    /// Random-walk steps performed.
    pub walk_steps: u64,
    /// Ridge added to the estimated Schur complement (0 in the common case).
    pub ridge: f64,
}

/// Estimate marginal gains with the auxiliary root set `T` (Algorithm 4),
/// with a fresh (throwaway) workspace. Greedy loops should prefer
/// [`schur_delta_ws`] with the run's persistent
/// [`crate::engine::GreedyWorkspace`] so the dense round buffers are
/// reused across iterations instead of reallocated.
pub fn schur_delta(
    g: &Graph,
    in_s: &[bool],
    t_nodes: &[Node],
    params: &CfcmParams,
    iteration: u64,
) -> Result<SchurDeltaEstimates, CfcmError> {
    let mut ws = GreedyWorkspace::new();
    schur_delta_ws(g, in_s, t_nodes, params, iteration, &mut ws)
}

/// [`schur_delta`] against the run's persistent workspace: the
/// `|T| × w` round buffers live in `ws` and are re-shaped (never
/// reallocated while shrinking) across greedy iterations.
///
/// `in_s` marks `S`; `t_nodes` must be disjoint from `S` and non-empty.
pub fn schur_delta_ws(
    g: &Graph,
    in_s: &[bool],
    t_nodes: &[Node],
    params: &CfcmParams,
    iteration: u64,
    ws: &mut GreedyWorkspace,
) -> Result<SchurDeltaEstimates, CfcmError> {
    let n = g.num_nodes();
    assert!(!t_nodes.is_empty());
    debug_assert!(
        t_nodes.iter().all(|&t| !in_s[t as usize]),
        "T must be disjoint from S"
    );
    let mut in_root = in_s.to_vec();
    for &t in t_nodes {
        in_root[t as usize] = true;
    }

    let w = params.width(n);
    let mut sketch_rng =
        StdRng::seed_from_u64(params.seed ^ 0x5C47A ^ iteration.wrapping_mul(0x9E37));
    let sketch_w = JlSketch::sample(w, n, &mut sketch_rng);
    let sketch_q = JlSketch::sample(w, t_nodes.len(), &mut sketch_rng);
    let index = Arc::new(RootIndex::new(n, t_nodes));
    let mut acc = ElectricalAccumulator::new(
        g,
        &in_root,
        Some(sketch_w.clone()),
        DiagMode::Diagonal,
        Some(index),
    );
    let cfg = SamplerConfig {
        seed: params.seed ^ 0x5DE17 ^ iteration.wrapping_mul(0x85EB),
        threads: params.threads,
    };
    let dmax = g.max_degree_excluding(&in_root);
    let cap = params.forest_cap(n, 0, dmax);
    let mut rule = StopRule::new();
    let mut sampled = 0u64;
    let mut deltas = vec![f64::NAN; n];
    let mut last_ridge = 0.0f64;
    // Dense round buffers live in the run's persistent workspace: each
    // adaptive round — and each greedy iteration — re-fills the same
    // allocations instead of creating new ones.
    ws.schur.ensure(t_nodes.len(), w);
    for total in batch_schedule(params.min_batch, cap) {
        absorb_batch(g, &in_root, sampled, total - sampled, &cfg, &mut acc);
        sampled = total;
        last_ridge = compute_schur_deltas(
            g,
            in_s,
            t_nodes,
            &acc,
            &sketch_w,
            &sketch_q,
            params.threads,
            &mut ws.schur,
            &mut deltas,
        )?;
        let (best, second) = top2_max(&deltas);
        let mk = |u: Node| Candidate {
            node: u,
            score: deltas[u as usize],
            halfwidth: if in_root[u as usize] {
                // t ∈ T: denominator comes from Σ̃^{-1}, treated via the
                // stability criterion only.
                0.0
            } else {
                let hz = bernstein_halfwidth(
                    acc.num_forests(),
                    acc.diag_variance(u),
                    acc.diag_sup(u).max(1.0),
                    params.delta_confidence,
                );
                let z = acc.diag_means()[u as usize].max(f64::MIN_POSITIVE);
                deltas[u as usize] * (hz / z).min(1.0)
            },
        };
        if rule.check(mk(best), second.map(mk), params.epsilon) {
            break;
        }
    }
    let (best, _) = top2_max(&deltas);
    Ok(SchurDeltaEstimates {
        deltas,
        best,
        forests: acc.num_forests(),
        walk_steps: acc.total_walk_steps(),
        ridge: last_ridge,
    })
}

/// Assemble Δ' for all `u ∉ S` from the current accumulator state. The
/// `|T| × w` round buffers come from the run's persistent
/// [`SchurScratch`].
#[allow(clippy::too_many_arguments)]
fn compute_schur_deltas(
    g: &Graph,
    in_s: &[bool],
    t_nodes: &[Node],
    acc: &ElectricalAccumulator,
    sketch_w: &JlSketch,
    sketch_q: &JlSketch,
    threads: usize,
    ws: &mut SchurScratch,
    deltas: &mut [f64],
) -> Result<f64, CfcmError> {
    let n = g.num_nodes();
    let w = sketch_w.width();
    let t_len = t_nodes.len();
    let rooted: &RootedCounts = acc.rooted().expect("rooted tracking enabled");
    let num_forests = acc.num_forests();

    // Σ̃ and its inverse G — the quadratic forms below read G's entries
    // directly, so this is a genuine inverse consumer (|T| × |T|, small).
    let mut in_root = in_s.to_vec();
    for &t in t_nodes {
        in_root[t as usize] = true;
    }
    let sigma = estimated_schur(g, &in_root, t_nodes, rooted, num_forests);
    let (gmat, ridge) = invert_estimated_schur(sigma)?;

    // wfq_t = (W·F̃ + Q)ᵀ ∈ R^{|T| × w}, rows contiguous per root.
    let inv_n = 1.0 / num_forests as f64;
    let wfq_t = &mut ws.wfq_t;
    wfq_t.fill_zero();
    for u in 0..n as Node {
        if in_root[u as usize] {
            continue;
        }
        let col = sketch_w.column(u as usize);
        for &(ti, count) in rooted.entries(u) {
            let p = count as f64 * inv_n;
            let row = wfq_t.row_mut(ti as usize);
            for j in 0..w {
                row[j] += p * col[j];
            }
        }
    }
    for ti in 0..t_len {
        let q = sketch_q.column(ti);
        let row = wfq_t.row_mut(ti);
        for j in 0..w {
            row[j] += q[j];
        }
    }
    // ht = G · wfq_t ∈ R^{|T| × w}; row t is the column `H e_t` of
    // H = (W F̃ + Q) Σ̃^{-1}.
    gmat.matmul_into(&ws.wfq_t, &mut ws.ht, threads);
    let ht = &ws.ht;

    // Correct Y in place and assemble the ratios.
    let mut y: YMatrix = acc.y_matrix();
    let z = acc.diag_means();
    let gf = &mut ws.gf;
    for u in 0..n as Node {
        let ui = u as usize;
        if in_s[ui] {
            deltas[ui] = f64::NAN;
            continue;
        }
        if let Some(ti) = rooted.index().index_of(u) {
            // u = t ∈ T: bottom-right block of Eq. (11).
            let zt = gmat.get(ti, ti).max(f64::MIN_POSITIVE);
            deltas[ui] = norm2_sq(ht.row(ti)) / zt;
            continue;
        }
        // u ∈ U: top-left block.
        let entries = rooted.entries(u);
        // Quadratic form fᵀ G f: choose the cheaper evaluation order.
        let quad = if entries.len() * entries.len() <= entries.len() * t_len {
            let mut s = 0.0;
            for &(ti, ci) in entries {
                let pi = ci as f64 * inv_n;
                for &(tj, cj) in entries {
                    let pj = cj as f64 * inv_n;
                    s += pi * pj * gmat.get(ti as usize, tj as usize);
                }
            }
            s
        } else {
            gf.iter_mut().for_each(|v| *v = 0.0);
            for &(tj, cj) in entries {
                let pj = cj as f64 * inv_n;
                let grow = gmat.row(tj as usize);
                for ti in 0..t_len {
                    gf[ti] += pj * grow[ti];
                }
            }
            entries
                .iter()
                .map(|&(ti, ci)| ci as f64 * inv_n * gf[ti as usize])
                .sum()
        };
        let floor = 1.0 / g.degree(u) as f64;
        let zu = z[ui].max(floor) + quad.max(0.0);
        // y column correction: + H·f_u = Σ_t p_t · ht.row(t).
        let col = y.column_mut(u);
        for &(ti, ci) in entries {
            let p = ci as f64 * inv_n;
            let hrow = ht.row(ti as usize);
            for j in 0..w {
                col[j] += p * hrow[j];
            }
        }
        deltas[ui] = norm2_sq(y.column(u)) / zu;
    }
    Ok(ridge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_deltas;
    use crate::params::{t_star, top_degree_nodes};
    use cfcc_graph::generators;
    use rand::rngs::StdRng;

    fn run_case(seed: u64, n: usize, s: Vec<Node>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, 2, &mut rng);
        let mut in_s = vec![false; n];
        for &x in &s {
            in_s[x as usize] = true;
        }
        let c = t_star(&g).max(2);
        let t_nodes: Vec<Node> = top_degree_nodes(&g, c + s.len())
            .into_iter()
            .filter(|&t| !in_s[t as usize])
            .take(c)
            .collect();
        let params = CfcmParams::with_epsilon(0.15).seed(seed ^ 0xA);
        let est = schur_delta(&g, &in_s, &t_nodes, &params, 1).unwrap();
        let exact: Vec<(Node, f64)> = exact_deltas(&g, &s).unwrap();
        let mut sorted = exact.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top3: Vec<Node> = sorted.iter().take(3).map(|&(u, _)| u).collect();
        assert!(
            top3.contains(&est.best),
            "estimated best {} not in exact top3 {top3:?}",
            est.best
        );
        let exact_of_best = exact.iter().find(|&&(u, _)| u == est.best).unwrap().1;
        assert!(
            exact_of_best >= 0.85 * sorted[0].1,
            "chosen {} gain {exact_of_best} vs best {}",
            est.best,
            sorted[0].1
        );
    }

    #[test]
    fn tracks_exact_deltas_small() {
        run_case(24, 40, vec![0]);
    }

    #[test]
    fn tracks_exact_deltas_larger_group() {
        run_case(25, 50, vec![1, 8]);
    }

    #[test]
    fn grounded_nodes_are_nan_and_t_nodes_scored() {
        let mut rng = StdRng::seed_from_u64(26);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let mut in_s = vec![false; 30];
        in_s[5] = true;
        let t_nodes: Vec<Node> = top_degree_nodes(&g, 4)
            .into_iter()
            .filter(|&t| t != 5)
            .take(3)
            .collect();
        let params = CfcmParams::with_epsilon(0.3).seed(2);
        let est = schur_delta(&g, &in_s, &t_nodes, &params, 0).unwrap();
        assert!(est.deltas[5].is_nan());
        for &t in &t_nodes {
            assert!(
                est.deltas[t as usize].is_finite(),
                "T node {t} must be scored"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(27);
        let g = generators::barabasi_albert(35, 2, &mut rng);
        let mut in_s = vec![false; 35];
        in_s[3] = true;
        let t_nodes: Vec<Node> = top_degree_nodes(&g, 5)
            .into_iter()
            .filter(|&t| t != 3)
            .take(4)
            .collect();
        let params = CfcmParams::default().seed(55);
        let a = schur_delta(&g, &in_s, &t_nodes, &params, 2).unwrap();
        let b = schur_delta(&g, &in_s, &t_nodes, &params, 2).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.forests, b.forests);
    }
}
