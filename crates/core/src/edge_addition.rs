//! Edge-addition CFCC maximization — the open problem the paper's §VI
//! points at ("the edge selection problem for maximizing CFCC … presents an
//! opportunity for future research"), built on this crate's marginal-gain
//! machinery as an extension.
//!
//! **Problem.** Given a *fixed* group `S`, add `k` new edges incident to
//! `S` so as to maximize `C(S) = n / Tr(L_{-S}^{-1})`.
//!
//! **Key identity.** Adding edge `{a, b}` updates the Laplacian by
//! `(e_a − e_b)(e_a − e_b)ᵀ`. Restricted to the grounded system this is a
//! rank-one update `L_{-S}' = L_{-S} + v vᵀ` (with `v` the restriction of
//! `e_a − e_b`; endpoints inside `S` drop out), so by Sherman–Morrison the
//! exact trace drop is
//!
//! ```text
//! Tr(L_{-S}^{-1}) − Tr(L_{-S}'^{-1}) = ‖M v‖² / (1 + vᵀ M v),   M = L_{-S}^{-1}
//! ```
//!
//! which prices every candidate edge in `O(n²)` (one pass over `M`'s rows)
//! and re-prices after acceptance with the standard Sherman–Morrison update
//! of `M`. Trace drops under edge addition are again monotone with
//! diminishing returns, so greedy is the natural heuristic here too.

use crate::error::validate;
use crate::{CfcmError, CfcmParams};
use cfcc_graph::{Graph, Node};
use cfcc_linalg::laplacian::laplacian_submatrix_dense;
use cfcc_linalg::vector::norm2_sq;

/// One accepted edge with its exact objective improvement.
#[derive(Debug, Clone, PartialEq)]
pub struct AddedEdge {
    /// Endpoint inside the group `S`.
    pub group_end: Node,
    /// Endpoint outside the group.
    pub outside_end: Node,
    /// Exact drop of `Tr(L_{-S}^{-1})` achieved by this edge.
    pub trace_drop: f64,
}

/// Result of greedy edge addition.
#[derive(Debug, Clone)]
pub struct EdgeAdditionResult {
    /// Accepted edges in greedy order.
    pub edges: Vec<AddedEdge>,
    /// `Tr(L_{-S}^{-1})` before any additions.
    pub trace_before: f64,
    /// `Tr(L_{-S}^{-1})` after all additions.
    pub trace_after: f64,
}

impl EdgeAdditionResult {
    /// CFCC improvement factor `C_after / C_before`.
    pub fn improvement(&self) -> f64 {
        self.trace_before / self.trace_after
    }
}

/// Greedily add `k` non-existing edges between `S` and `V ∖ S` maximizing
/// `C(S)`. Dense exact variant — `O(k · n · n²)` worst case, small graphs.
pub fn greedy_edge_addition(
    g: &Graph,
    group: &[Node],
    k: usize,
    params: &CfcmParams,
) -> Result<EdgeAdditionResult, CfcmError> {
    validate(g, group.len())?;
    if k == 0 {
        return Err(CfcmError::InvalidParameter("k must be >= 1".into()));
    }
    let mask = crate::cfcc::group_mask(g, group)?;
    let (sub, keep) = laplacian_submatrix_dense(g, &mask);
    // M = L_{-S}^{-1} is Sherman–Morrison-maintained across accepted
    // edges — the genuine inverse consumer of this module.
    let mut m = sub
        .cholesky_threaded(params.threads)
        .map_err(|e| CfcmError::Numerical(format!("L_-S not SPD: {e}")))?
        .inverse_threaded(params.threads);
    let trace_before = m.trace();
    let d = keep.len();

    // Candidate edges: (s ∈ S, u ∉ S) pairs not already present. Since both
    // endpoints matter only through v = e_u |_{V∖S} (the S endpoint is
    // grounded away), the gain of (s, u) is ‖M e_u‖² / (1 + M_uu) for every
    // s — so each outside node u is priced once and connected to the least
    // loaded group node (round-robin) when accepted.
    let mut existing: Vec<std::collections::HashSet<Node>> = group
        .iter()
        .map(|&s| g.neighbors(s).iter().copied().collect())
        .collect();
    let mut edges = Vec::with_capacity(k);
    let mut col = vec![0.0f64; d]; // reusable Sherman–Morrison workspace
    for pick in 0..k {
        // Price every outside node.
        let mut best: Option<(usize, f64)> = None;
        for (cu, &u) in keep.iter().enumerate() {
            // Skip nodes already adjacent to every group member.
            if existing.iter().all(|nb| nb.contains(&u)) {
                continue;
            }
            let gain = norm2_sq(m.row(cu)) / (1.0 + m.get(cu, cu));
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((cu, gain));
            }
        }
        let Some((cu, gain)) = best else {
            break; // graph saturated
        };
        let u = keep[cu];
        // Attach to the first group node not yet adjacent to u.
        let (si, _) = group
            .iter()
            .enumerate()
            .find(|&(si, _)| !existing[si].contains(&u))
            .expect("some group node is free by the filter above");
        existing[si].insert(u);
        edges.push(AddedEdge {
            group_end: group[si],
            outside_end: u,
            trace_drop: gain,
        });

        // Sherman–Morrison update of M for v = e_{cu}:
        // M' = M − (M e_cu)(e_cuᵀ M) / (1 + M_cucu)
        if pick + 1 < k {
            let denom = 1.0 + m.get(cu, cu);
            for (i, ci) in col.iter_mut().enumerate() {
                *ci = m.get(i, cu);
            }
            for i in 0..d {
                let ci = col[i] / denom;
                if ci == 0.0 {
                    continue;
                }
                let row = m.row_mut(i);
                for (j, &cj) in col.iter().enumerate() {
                    row[j] -= ci * cj;
                }
            }
        }
    }
    let trace_after = if edges.is_empty() {
        trace_before
    } else {
        // Recompute exactly on the augmented graph for an honest report.
        let mut all_edges: Vec<(Node, Node)> = g.edges().collect();
        for e in &edges {
            all_edges.push((e.group_end, e.outside_end));
        }
        let g2 = Graph::from_edges(g.num_nodes(), &all_edges)
            .map_err(|e| CfcmError::InvalidParameter(e.to_string()))?;
        crate::cfcc::grounded_trace_exact(&g2, group)
    };
    Ok(EdgeAdditionResult {
        edges,
        trace_before,
        trace_after,
    })
}

/// Sampled pricing of outside nodes for large graphs: the same gain
/// formula with `(L_{-S}^{-1})_{uu}` and `‖L_{-S}^{-1} e_u‖²` replaced by
/// their forest/JL estimates — reuses the ForestDelta machinery, since
/// `gain(u) = Δ(u, S) · z_u / (1 + z_u)`.
pub fn sampled_edge_gains(
    g: &Graph,
    group: &[Node],
    params: &CfcmParams,
) -> Result<Vec<(Node, f64)>, CfcmError> {
    validate(g, group.len())?;
    let mask = crate::cfcc::group_mask(g, group)?;
    let n = g.num_nodes();
    let w = params.width(n);
    use cfcc_forest::estimators::{DiagMode, ElectricalAccumulator};
    use cfcc_forest::sampler::{absorb_batch, SamplerConfig};
    use cfcc_linalg::jl::JlSketch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xEDCE);
    let sketch = JlSketch::sample(w, n, &mut rng);
    let mut acc = ElectricalAccumulator::new(g, &mask, Some(sketch), DiagMode::Diagonal, None);
    let cfg = SamplerConfig {
        seed: params.seed ^ 0xADDE,
        threads: params.threads,
    };
    absorb_batch(g, &mask, 0, params.max_forests.min(2048), &cfg, &mut acc);
    let y = acc.y_matrix();
    let z = acc.diag_means();
    Ok((0..n as Node)
        .filter(|&u| !mask[u as usize])
        .map(|u| {
            let floor = 1.0 / g.degree(u) as f64;
            let zu = z[u as usize].max(floor);
            (u, y.column_norm_sq(u) / (1.0 + zu))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfcc::grounded_trace_exact;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::cycle(6);
        let p = CfcmParams::default();
        assert!(greedy_edge_addition(&g, &[0], 0, &p).is_err());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(greedy_edge_addition(&disconnected, &[0], 1, &p).is_err());
    }

    #[test]
    fn trace_drop_predictions_are_exact() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let group = vec![0u32, 5];
        let p = CfcmParams::default();
        let res = greedy_edge_addition(&g, &group, 3, &p).unwrap();
        assert_eq!(res.edges.len(), 3);
        // The cumulative predicted drops must match the recomputed traces.
        let predicted: f64 = res.edges.iter().map(|e| e.trace_drop).sum();
        let actual = res.trace_before - res.trace_after;
        assert!(
            (predicted - actual).abs() < 1e-6,
            "predicted {predicted} vs actual {actual}"
        );
        assert!(res.improvement() > 1.0);
    }

    #[test]
    fn added_edges_touch_the_group() {
        let mut rng = StdRng::seed_from_u64(63);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let group = vec![2u32, 9];
        let res = greedy_edge_addition(&g, &group, 4, &CfcmParams::default()).unwrap();
        for e in &res.edges {
            assert!(group.contains(&e.group_end));
            assert!(!group.contains(&e.outside_end));
        }
    }

    #[test]
    fn first_pick_is_globally_optimal() {
        // Greedy's first accepted edge must beat every alternative edge.
        let mut rng = StdRng::seed_from_u64(67);
        let g = generators::barabasi_albert(18, 2, &mut rng);
        let group = vec![1u32];
        let res = greedy_edge_addition(&g, &group, 1, &CfcmParams::default()).unwrap();
        let base = grounded_trace_exact(&g, &group);
        let mut best_alt = f64::INFINITY;
        for u in 0..18u32 {
            if u == 1 || g.has_edge(1, u) {
                continue;
            }
            let mut edges: Vec<(u32, u32)> = g.edges().collect();
            edges.push((1, u));
            let g2 = Graph::from_edges(18, &edges).unwrap();
            best_alt = best_alt.min(grounded_trace_exact(&g2, &group));
        }
        assert!(
            (res.trace_after - best_alt).abs() < 1e-8,
            "greedy {} vs best alternative {best_alt} (base {base})",
            res.trace_after
        );
    }

    #[test]
    fn sampled_gains_rank_like_exact() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let group = vec![0u32];
        let mut p = CfcmParams::with_epsilon(0.15).seed(3);
        p.max_forests = 2048;
        p.min_batch = 2048;
        let sampled = sampled_edge_gains(&g, &group, &p).unwrap();
        // Exact gains.
        let mask = crate::cfcc::group_mask(&g, &group).unwrap();
        let (sub, keep) = laplacian_submatrix_dense(&g, &mask);
        let m = sub.cholesky().unwrap().inverse();
        let mut exact: Vec<(u32, f64)> = keep
            .iter()
            .enumerate()
            .map(|(c, &u)| (u, norm2_sq(m.row(c)) / (1.0 + m.get(c, c))))
            .collect();
        exact.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut sampled_sorted = sampled.clone();
        sampled_sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        // Sampled argmax lands in the exact top tier.
        let exact_top: Vec<u32> = exact.iter().take(3).map(|&(u, _)| u).collect();
        assert!(
            exact_top.contains(&sampled_sorted[0].0),
            "sampled best {} not in exact top3 {exact_top:?}",
            sampled_sorted[0].0
        );
    }

    use cfcc_graph::Graph;
}
