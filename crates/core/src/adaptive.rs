//! Shared adaptive-stopping logic for the Monte-Carlo phases.
//!
//! Algorithms 2–5 sample in doubling batches and stop once the empirical
//! Bernstein half-widths (Lemma 3.6) certify the current winner. The rule
//! implemented here is slightly more conservative than the paper's
//! per-node check and is purely an *early exit*: the hard cap from
//! [`crate::CfcmParams::forest_cap`] preserves termination and the
//! worst-case sample bound.
//!
//! A candidate is accepted when, across two consecutive batch checkpoints:
//!
//! 1. the argbest is unchanged,
//! 2. its score moved by at most `ε/4` relatively, and
//! 3. either the Bernstein interval separates it from the runner-up, or
//!    both intervals are already below `ε/2` of the leading score.

/// Doubling batch schedule: total sample targets after each checkpoint.
pub fn batch_schedule(min_batch: u64, cap: u64) -> Vec<u64> {
    let mut totals = Vec::new();
    let mut t = min_batch.max(1);
    loop {
        totals.push(t.min(cap));
        if t >= cap {
            break;
        }
        t = t.saturating_mul(2);
    }
    totals.dedup();
    totals
}

/// One scored candidate at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Node id.
    pub node: u32,
    /// Score (marginal gain Δ', or negated first-phase objective so that
    /// "bigger is better" uniformly).
    pub score: f64,
    /// Bernstein half-width attached to the score's denominator estimate.
    pub halfwidth: f64,
}

/// Rolling stop-rule state.
#[derive(Debug, Default, Clone)]
pub struct StopRule {
    prev: Option<Candidate>,
}

impl StopRule {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed this checkpoint's best and runner-up; returns true to stop.
    pub fn check(&mut self, best: Candidate, second: Option<Candidate>, epsilon: f64) -> bool {
        let decision = match self.prev {
            Some(prev) if prev.node == best.node => {
                let rel_change = if best.score != 0.0 {
                    ((best.score - prev.score) / best.score).abs()
                } else {
                    0.0
                };
                let stable = rel_change <= epsilon / 4.0;
                let separated = match second {
                    Some(s) => {
                        let gap = best.score - s.score;
                        gap >= best.halfwidth + s.halfwidth
                            || best.halfwidth + s.halfwidth
                                <= epsilon / 2.0 * best.score.abs().max(f64::MIN_POSITIVE)
                    }
                    None => true,
                };
                stable && separated
            }
            _ => false,
        };
        self.prev = Some(best);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_to_cap() {
        assert_eq!(batch_schedule(64, 512), vec![64, 128, 256, 512]);
        assert_eq!(batch_schedule(100, 300), vec![100, 200, 300]);
        assert_eq!(batch_schedule(64, 64), vec![64]);
        assert_eq!(batch_schedule(0, 10), vec![1, 2, 4, 8, 10]);
    }

    #[test]
    fn never_stops_on_first_checkpoint() {
        let mut rule = StopRule::new();
        let best = Candidate {
            node: 3,
            score: 10.0,
            halfwidth: 0.01,
        };
        assert!(!rule.check(best, None, 0.2));
        // Second checkpoint with the same stable winner stops.
        assert!(rule.check(best, None, 0.2));
    }

    #[test]
    fn requires_stable_argbest() {
        let mut rule = StopRule::new();
        rule.check(
            Candidate {
                node: 1,
                score: 5.0,
                halfwidth: 0.0,
            },
            None,
            0.2,
        );
        // Winner changed → no stop.
        assert!(!rule.check(
            Candidate {
                node: 2,
                score: 5.0,
                halfwidth: 0.0
            },
            None,
            0.2
        ));
        // Now stable → stop.
        assert!(rule.check(
            Candidate {
                node: 2,
                score: 5.0,
                halfwidth: 0.0
            },
            None,
            0.2
        ));
    }

    #[test]
    fn requires_score_stability() {
        let mut rule = StopRule::new();
        rule.check(
            Candidate {
                node: 1,
                score: 10.0,
                halfwidth: 0.0,
            },
            None,
            0.2,
        );
        // Score jumped 50% → keep sampling.
        assert!(!rule.check(
            Candidate {
                node: 1,
                score: 20.0,
                halfwidth: 0.0
            },
            None,
            0.2
        ));
    }

    #[test]
    fn requires_separation_from_runner_up() {
        let mut rule = StopRule::new();
        let second = Some(Candidate {
            node: 9,
            score: 9.9,
            halfwidth: 1.0,
        });
        rule.check(
            Candidate {
                node: 1,
                score: 10.0,
                halfwidth: 1.0,
            },
            second,
            0.2,
        );
        // Overlapping intervals and wide halfwidths → no stop.
        assert!(!rule.check(
            Candidate {
                node: 1,
                score: 10.0,
                halfwidth: 1.0
            },
            second,
            0.2
        ));
        // Tight halfwidths (≤ ε/2·score even though gap < widths) → stop.
        let tight_second = Some(Candidate {
            node: 9,
            score: 9.9,
            halfwidth: 0.2,
        });
        let mut rule2 = StopRule::new();
        rule2.check(
            Candidate {
                node: 1,
                score: 10.0,
                halfwidth: 0.2,
            },
            tight_second,
            0.2,
        );
        assert!(rule2.check(
            Candidate {
                node: 1,
                score: 10.0,
                halfwidth: 0.2
            },
            tight_second,
            0.2
        ));
    }
}
