//! The unified solver abstraction: every CFCM algorithm in this crate —
//! the paper's Monte-Carlo methods, the deterministic baselines, and the
//! heuristics — implements [`CfcmSolver`], so callers (CLI, benches,
//! serving layers) can select algorithms at runtime through
//! [`crate::registry`] instead of hard-coding per-algorithm dispatch.
//!
//! # Adding a new solver
//!
//! 1. Implement the algorithm as a context-aware function
//!    `fn my_algo_ctx(g: &Graph, k: usize, ctx: &SolveContext) ->
//!    Result<Selection, CfcmError>` in its own module. Call
//!    [`SolveContext::check_problem`] first, poll
//!    [`SolveContext::interrupted`] between greedy iterations (returning the
//!    partial selection when it fires), and report each iteration through
//!    [`SolveContext::emit`].
//! 2. Add a unit struct in the same module and implement [`CfcmSolver`] for
//!    it: a stable [`CfcmSolver::name`], its [`SolverKind`], and — when the
//!    algorithm has hard practicality limits — a [`CfcmSolver::supports`]
//!    override returning [`Capability::Unsupported`] with a reason.
//! 3. Register the struct in [`crate::registry`]'s `SOLVERS` table (plus
//!    any aliases). Registry tests assert that every registered solver
//!    resolves and solves; nothing else is required.

use crate::context::SolveContext;
use crate::result::Selection;
use crate::CfcmError;
use cfcc_graph::Graph;

/// Algorithm family, for capability-based selection and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Deterministic, exact objective evaluation (dense algebra).
    Exact,
    /// Randomized with an approximation guarantee (forest sampling / JL).
    MonteCarlo,
    /// Fast ranking heuristic with no group-level guarantee.
    Heuristic,
}

impl SolverKind {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::Exact => "exact",
            SolverKind::MonteCarlo => "monte-carlo",
            SolverKind::Heuristic => "heuristic",
        }
    }
}

/// A solver's self-assessment for a problem size (`n` nodes, `m` edges,
/// group size `k`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// The solver handles this size comfortably.
    Supported,
    /// The solver cannot reasonably run at this size; the reason is
    /// user-facing (session front doors refuse to start such runs).
    Unsupported(String),
}

impl Capability {
    /// True unless the solver declared itself unsupported.
    pub fn is_supported(&self) -> bool {
        !matches!(self, Capability::Unsupported(_))
    }
}

/// A CFCM algorithm with a stable name, runtime-selectable through
/// [`crate::registry`].
pub trait CfcmSolver: Send + Sync {
    /// Canonical registry name (lower-case, stable across releases).
    fn name(&self) -> &'static str;

    /// Algorithm family.
    fn kind(&self) -> SolverKind;

    /// Capability hint for a problem of `n` nodes, `m` edges, group size
    /// `k`. The default accepts everything; solvers with hard practicality
    /// walls (e.g. exhaustive search) override it.
    fn supports(&self, n: usize, m: usize, k: usize) -> Capability {
        let _ = (n, m, k);
        Capability::Supported
    }

    /// Solve the CFCM instance under the given context: validate through
    /// [`SolveContext::check_problem`], honor cancellation/deadline, and
    /// report per-iteration progress.
    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels() {
        assert_eq!(SolverKind::Exact.label(), "exact");
        assert_eq!(SolverKind::MonteCarlo.label(), "monte-carlo");
        assert_eq!(SolverKind::Heuristic.label(), "heuristic");
    }

    #[test]
    fn capability_predicate() {
        assert!(Capability::Supported.is_supported());
        assert!(!Capability::Unsupported("too big".into()).is_supported());
    }
}
