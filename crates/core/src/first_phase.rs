//! Shared first greedy iteration of Algorithms 3 and 5: pick
//! `argmin_u L†_uu` by forest sampling.
//!
//! Lemma 3.5 reduces `L†_uu` (up to a shared constant) to grounded
//! quantities with `S = {s}`:
//!
//! ```text
//! x_u = (L_{-s}^{-1})_{uu} − (2/n)·1ᵀ L_{-s}^{-1} e_u        (x_s = 0)
//! ```
//!
//! where `s` is the maximum-degree node (fast to hit, so Wilson walks are
//! short). Each sampled forest yields one sample of `x_u` per node; the
//! adaptive Bernstein rule stops when the argmin is certified.

use crate::adaptive::{batch_schedule, Candidate, StopRule};
use crate::CfcmParams;
use cfcc_forest::bernstein::bernstein_halfwidth;
use cfcc_forest::estimators::{DiagMode, ElectricalAccumulator};
use cfcc_forest::sampler::{absorb_batch, SamplerConfig};
use cfcc_graph::{Graph, Node};

/// Outcome of the first phase.
#[derive(Debug, Clone)]
pub struct FirstPhase {
    /// `argmin_u x_u` — the first selected node.
    pub chosen: Node,
    /// Final estimates `x̂_u` (the grounded node `s` has `x_s = 0`).
    pub estimates: Vec<f64>,
    /// Forests sampled.
    pub forests: u64,
    /// Random-walk steps performed.
    pub walk_steps: u64,
}

/// Run the sampling first phase (Lines 1–14 of Algorithm 3 / 1–15 of 5).
pub fn first_phase(g: &Graph, params: &CfcmParams) -> FirstPhase {
    let n = g.num_nodes();
    let s = g.max_degree_node().expect("non-empty graph");
    let mut in_root = vec![false; n];
    in_root[s as usize] = true;

    let scale = 2.0 / n as f64;
    let mut acc =
        ElectricalAccumulator::new(g, &in_root, None, DiagMode::FirstPhase { scale }, None);
    let cfg = SamplerConfig {
        seed: params.seed ^ 0xF157,
        threads: params.threads,
    };
    let cap = params.forest_cap(n, 0, g.max_degree());
    let mut rule = StopRule::new();
    let mut sampled = 0u64;
    for total in batch_schedule(params.min_batch, cap) {
        absorb_batch(g, &in_root, sampled, total - sampled, &cfg, &mut acc);
        sampled = total;
        // Rank by x̂ ascending; s itself scores 0 (Line 11 of Algorithm 3).
        let xs = acc.diag_means();
        let (best, second) = top2_min(xs);
        let mk = |u: Node| Candidate {
            node: u,
            // Negate: the stop rule is phrased for maximization.
            score: -xs[u as usize],
            halfwidth: bernstein_halfwidth(
                acc.num_forests(),
                acc.diag_variance(u),
                acc.diag_sup(u).max(1.0),
                params.delta_confidence,
            ),
        };
        if rule.check(mk(best), second.map(mk), params.epsilon) {
            break;
        }
    }
    let xs = acc.diag_means().to_vec();
    let (best, _) = top2_min(&xs);
    FirstPhase {
        chosen: best,
        estimates: xs,
        forests: acc.num_forests(),
        walk_steps: acc.total_walk_steps(),
    }
}

/// Indices of the two smallest values.
fn top2_min(xs: &[f64]) -> (Node, Option<Node>) {
    let mut best = 0usize;
    let mut second: Option<usize> = None;
    for i in 1..xs.len() {
        if xs[i] < xs[best] {
            second = Some(best);
            best = i;
        } else if second.is_none_or(|s| xs[i] < xs[s]) {
            second = Some(i);
        }
    }
    (best as Node, second.map(|s| s as Node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use cfcc_linalg::pinv::pseudoinverse_dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top2_min_basic() {
        assert_eq!(top2_min(&[3.0, 1.0, 2.0]), (1, Some(2)));
        assert_eq!(top2_min(&[1.0]), (0, None));
        assert_eq!(top2_min(&[2.0, 2.0]), (0, Some(1)));
        assert_eq!(top2_min(&[5.0, 4.0, 3.0, 2.0]), (3, Some(2)));
    }

    #[test]
    fn star_first_phase_picks_hub() {
        let g = generators::star(30);
        let params = CfcmParams::with_epsilon(0.3);
        let fp = first_phase(&g, &params);
        assert_eq!(fp.chosen, 0);
        assert!(fp.forests >= params.min_batch);
    }

    #[test]
    fn matches_exact_argmin_on_random_graphs() {
        // The chosen node should (almost always, with these sample sizes)
        // agree with the dense argmin of L†_uu; we accept top-2 to keep the
        // test robust to ties.
        let mut rng = StdRng::seed_from_u64(14);
        for trial in 0..3u64 {
            let g = generators::barabasi_albert(40, 2, &mut rng);
            let pinv = pseudoinverse_dense(&g);
            let n = g.num_nodes();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| pinv.get(a, a).partial_cmp(&pinv.get(b, b)).unwrap());
            let params = CfcmParams::with_epsilon(0.15).seed(100 + trial);
            let fp = first_phase(&g, &params);
            assert!(
                order[..2].contains(&(fp.chosen as usize)),
                "trial {trial}: chose {} but exact top-2 is {:?}",
                fp.chosen,
                &order[..2]
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(15);
        let g = generators::barabasi_albert(50, 3, &mut rng);
        let params = CfcmParams::default().seed(77);
        let a = first_phase(&g, &params);
        let b = first_phase(&g, &params);
        assert_eq!(a.chosen, b.chosen);
        assert_eq!(a.forests, b.forests);
        assert_eq!(a.estimates, b.estimates);
    }
}
