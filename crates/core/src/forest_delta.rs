//! ForestDelta (paper Algorithm 2): estimate the marginal gains
//! `Δ(u, S) = (L_{-S}^{-2})_{uu} / (L_{-S}^{-1})_{uu}` for all `u ∉ S` by
//! sampling spanning forests rooted at `S`.
//!
//! The numerator is sketched: `(L_{-S}^{-2})_{uu} = ‖L_{-S}^{-1} e_u‖² ≈
//! ‖(W L_{-S}^{-1}) e_u‖²` with a JL sketch `W` (Lemma 3.4), and the rows
//! `W L_{-S}^{-1}` come from the forest estimator's BFS prefix sums. The
//! denominator uses the per-node diagonal samples, clamped from below by
//! the Neumann bound `(L_{-S}^{-1})_{uu} ≥ 1/d_u` used in Lemma 3.9's
//! proof.

use crate::adaptive::{batch_schedule, Candidate, StopRule};
use crate::CfcmParams;
use cfcc_forest::bernstein::bernstein_halfwidth;
use cfcc_forest::estimators::{DiagMode, ElectricalAccumulator};
use cfcc_forest::sampler::{absorb_batch, SamplerConfig};
use cfcc_graph::{Graph, Node};
use cfcc_linalg::jl::JlSketch;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Output of one delta-estimation round.
#[derive(Debug, Clone)]
pub struct DeltaEstimates {
    /// `Δ'(u, S)` per node (`NaN` for `u ∈ S`).
    pub deltas: Vec<f64>,
    /// Argmax node.
    pub best: Node,
    /// Forests sampled.
    pub forests: u64,
    /// Random-walk steps performed.
    pub walk_steps: u64,
}

/// Estimate marginal gains for all non-grounded nodes (Algorithm 2).
///
/// `iteration` diversifies the RNG stream across greedy iterations.
pub fn forest_delta(
    g: &Graph,
    in_s: &[bool],
    params: &CfcmParams,
    iteration: u64,
) -> DeltaEstimates {
    let n = g.num_nodes();
    let w = params.width(n);
    let mut sketch_rng =
        StdRng::seed_from_u64(params.seed ^ 0xD317A ^ iteration.wrapping_mul(0x9E37));
    let sketch = JlSketch::sample(w, n, &mut sketch_rng);
    let mut acc = ElectricalAccumulator::new(g, in_s, Some(sketch), DiagMode::Diagonal, None);
    let cfg = SamplerConfig {
        seed: params.seed ^ 0xDE17A ^ iteration.wrapping_mul(0x85EB),
        threads: params.threads,
    };
    let dmax_s = g.max_degree_excluding(in_s);
    let cap = params.forest_cap(n, 0, dmax_s);
    let mut rule = StopRule::new();
    let mut sampled = 0u64;
    let mut deltas = vec![f64::NAN; n];
    for total in batch_schedule(params.min_batch, cap) {
        absorb_batch(g, in_s, sampled, total - sampled, &cfg, &mut acc);
        sampled = total;
        compute_deltas(g, in_s, &acc, &mut deltas);
        let (best, second) = top2_max(&deltas);
        let mk = |u: Node| Candidate {
            node: u,
            score: deltas[u as usize],
            halfwidth: delta_halfwidth(&acc, u, deltas[u as usize], params.delta_confidence),
        };
        if rule.check(mk(best), second.map(mk), params.epsilon) {
            break;
        }
    }
    let (best, _) = top2_max(&deltas);
    DeltaEstimates {
        deltas,
        best,
        forests: acc.num_forests(),
        walk_steps: acc.total_walk_steps(),
    }
}

/// `Δ' = ‖Y e_u‖² / ẑ_u` with the Neumann floor on the denominator.
fn compute_deltas(g: &Graph, in_s: &[bool], acc: &ElectricalAccumulator, out: &mut [f64]) {
    let y = acc.y_matrix();
    let z = acc.diag_means();
    for u in 0..g.num_nodes() {
        if in_s[u] {
            out[u] = f64::NAN;
            continue;
        }
        let floor = 1.0 / g.degree(u as Node) as f64;
        let zu = z[u].max(floor);
        out[u] = y.column_norm_sq(u as Node) / zu;
    }
}

/// Propagate the denominator's Bernstein half-width to the ratio:
/// `|∂(num/z)/∂z| · h_z = Δ'/z · h_z` (first-order), with `z` at its floor
/// if clamped.
fn delta_halfwidth(acc: &ElectricalAccumulator, u: Node, delta: f64, confidence: f64) -> f64 {
    let hz = bernstein_halfwidth(
        acc.num_forests(),
        acc.diag_variance(u),
        acc.diag_sup(u).max(1.0),
        confidence,
    );
    let z = acc.diag_means()[u as usize].max(f64::MIN_POSITIVE);
    delta * (hz / z).min(1.0)
}

/// Indices of the two largest finite values.
pub(crate) fn top2_max(xs: &[f64]) -> (Node, Option<Node>) {
    let mut best: Option<usize> = None;
    let mut second: Option<usize> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if x > xs[b] => {
                second = best;
                best = Some(i);
            }
            _ => {
                if second.is_none_or(|s| x > xs[s]) {
                    second = Some(i);
                }
            }
        }
    }
    (
        best.expect("at least one candidate") as Node,
        second.map(|s| s as Node),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_deltas;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;

    #[test]
    fn top2_max_skips_nan() {
        assert_eq!(top2_max(&[f64::NAN, 2.0, 5.0, 1.0]), (2, Some(1)));
        assert_eq!(top2_max(&[f64::NAN, 1.0]), (1, None));
    }

    #[test]
    fn estimates_track_exact_deltas() {
        let mut rng = StdRng::seed_from_u64(16);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let s = vec![0u32];
        let mut in_s = vec![false; 40];
        in_s[0] = true;
        let params = CfcmParams::with_epsilon(0.15).seed(321);
        let est = forest_delta(&g, &in_s, &params, 1);
        let exact: Vec<(Node, f64)> = exact_deltas(&g, &s).unwrap();
        // The estimated argmax must be within the exact top-3 and its exact
        // gain within 15% of the exact best (JL + MC noise tolerance).
        let mut sorted = exact.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top3: Vec<Node> = sorted.iter().take(3).map(|&(u, _)| u).collect();
        assert!(
            top3.contains(&est.best),
            "estimated best {} not in exact top3 {top3:?}",
            est.best
        );
        let exact_of_best = exact.iter().find(|&&(u, _)| u == est.best).unwrap().1;
        assert!(
            exact_of_best >= 0.85 * sorted[0].1,
            "chosen node exact gain {exact_of_best} too far below best {}",
            sorted[0].1
        );
    }

    #[test]
    fn grounded_nodes_are_nan() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let mut in_s = vec![false; 30];
        in_s[4] = true;
        in_s[9] = true;
        let params = CfcmParams::with_epsilon(0.3).seed(5);
        let est = forest_delta(&g, &in_s, &params, 0);
        assert!(est.deltas[4].is_nan());
        assert!(est.deltas[9].is_nan());
        assert!(est
            .deltas
            .iter()
            .enumerate()
            .all(|(u, d)| in_s[u] || d.is_finite()));
    }

    #[test]
    fn deterministic_given_seed_and_iteration() {
        let mut rng = StdRng::seed_from_u64(18);
        let g = generators::barabasi_albert(35, 2, &mut rng);
        let mut in_s = vec![false; 35];
        in_s[2] = true;
        let params = CfcmParams::default().seed(99);
        let a = forest_delta(&g, &in_s, &params, 3);
        let b = forest_delta(&g, &in_s, &params, 3);
        assert_eq!(a.best, b.best);
        assert_eq!(a.forests, b.forests);
        // Different iteration index → different stream (almost surely
        // different walk totals).
        let c = forest_delta(&g, &in_s, &params, 4);
        assert!(c.walk_steps != a.walk_steps || c.best == a.best);
    }
}
