//! Runtime solver registry: every [`CfcmSolver`] in the crate under its
//! canonical name plus the historical aliases the CLI used to parse by
//! hand. Consumers (CLI, benches, serving layers) resolve solvers here
//! instead of hard-coding per-algorithm dispatch.

use crate::approx_greedy::ApproxSolver;
use crate::exact::ExactSolver;
use crate::forest_cfcm::ForestSolver;
use crate::heuristics::{DegreeSolver, TopCfccExactSolver, TopCfccSolver};
use crate::optimum::OptimumSolver;
use crate::schur_cfcm::SchurSolver;
use crate::solver::CfcmSolver;
use crate::CfcmError;

/// Every registered solver, flagship first (the order reports list them).
static SOLVERS: &[&dyn CfcmSolver] = &[
    &SchurSolver,
    &ForestSolver,
    &ApproxSolver,
    &ExactSolver,
    &OptimumSolver,
    &DegreeSolver,
    &TopCfccSolver,
    &TopCfccExactSolver,
];

/// Alias table (alias → canonical name). Canonical names resolve too;
/// matching is ASCII-case-insensitive.
static ALIASES: &[(&str, &str)] = &[
    ("schurcfcm", "schur"),
    ("forestcfcm", "forest"),
    ("approxgreedy", "approx"),
    ("exactgreedy", "exact"),
    ("greedy", "exact"),
    ("opt", "optimum"),
    ("brute", "optimum"),
    ("deg", "degree"),
    ("topcfcc", "top-cfcc"),
    ("top_cfcc", "top-cfcc"),
    ("topcfccexact", "top-cfcc-exact"),
    ("top_cfcc_exact", "top-cfcc-exact"),
];

/// All registered solvers, in listing order.
pub fn all() -> &'static [&'static dyn CfcmSolver] {
    SOLVERS
}

/// The canonical names, in listing order.
pub fn names() -> Vec<&'static str> {
    SOLVERS.iter().map(|s| s.name()).collect()
}

/// The alias table (alias → canonical name).
pub fn aliases() -> &'static [(&'static str, &'static str)] {
    ALIASES
}

/// Look up a solver by canonical name or alias (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static dyn CfcmSolver> {
    let lower = name.to_ascii_lowercase();
    let canonical = ALIASES
        .iter()
        .find(|(alias, _)| *alias == lower)
        .map_or(lower.as_str(), |(_, canonical)| canonical);
    SOLVERS.iter().find(|s| s.name() == canonical).copied()
}

/// [`by_name`] returning a [`CfcmError::UnknownSolver`] on miss.
pub fn resolve(name: &str) -> Result<&'static dyn CfcmSolver, CfcmError> {
    by_name(name).ok_or_else(|| CfcmError::UnknownSolver(name.to_string()))
}

/// `name1 | name2 | …` — for usage strings.
pub fn name_list() -> String {
    names().join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_resolve_to_themselves() {
        for solver in all() {
            let found = by_name(solver.name()).unwrap_or_else(|| panic!("{}", solver.name()));
            assert_eq!(found.name(), solver.name());
        }
    }

    #[test]
    fn aliases_resolve_and_are_case_insensitive() {
        for (alias, canonical) in aliases() {
            let found = by_name(alias).expect(alias);
            assert_eq!(found.name(), *canonical, "alias {alias}");
            let upper = alias.to_ascii_uppercase();
            assert_eq!(by_name(&upper).unwrap().name(), *canonical);
        }
        assert_eq!(by_name("SCHURCFCM").unwrap().name(), "schur");
    }

    #[test]
    fn unknown_names_miss() {
        assert!(by_name("nope").is_none());
        assert!(matches!(resolve("nope"), Err(CfcmError::UnknownSolver(_))));
    }

    #[test]
    fn names_are_unique() {
        let mut names = names();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn name_list_mentions_the_flagship_first() {
        assert!(name_list().starts_with("schur"));
    }
}
