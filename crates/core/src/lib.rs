//! # cfcc-core
//!
//! Current Flow Closeness Maximization (CFCM) — a from-scratch Rust
//! implementation of *"Fast Maximization of Current Flow Group Closeness
//! Centrality"* (Xia & Zhang, ICDE 2025).
//!
//! For a connected undirected graph `G` with `n` nodes, the current-flow
//! closeness centrality of a node group `S` is `C(S) = n / Tr(L_{-S}^{-1})`
//! and CFCM asks for the size-`k` group maximizing it. The crate provides:
//!
//! * the paper's two Monte-Carlo greedy algorithms —
//!   [`forest_cfcm::forest_cfcm`] (spanning-forest sampling) and
//!   [`schur_cfcm::schur_cfcm`] (forest sampling + Schur complement), both
//!   with the `1 − (k/(k−1))·(1/e) − ε` approximation profile;
//! * every baseline from the paper's evaluation:
//!   [`exact::exact_greedy`] (dense algebra with incremental rank-one
//!   updates), [`optimum::optimum_cfcm`] (exhaustive search for tiny
//!   graphs), [`approx_greedy::approx_greedy`] (the Li et al. WWW'19
//!   state-of-the-art method on top of a hand-rolled PCG Laplacian solver),
//!   and the [`heuristics`] (Degree, Top-CFCC);
//! * [`cfcc`] — exact and CG/Hutchinson evaluation of `C(S)`, single-node
//!   CFCC, and resistance-distance utilities.
//!
//! ## Quick start
//!
//! ```
//! use cfcc_graph::generators;
//! use cfcc_core::{params::CfcmParams, schur_cfcm::schur_cfcm, cfcc};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::barabasi_albert(200, 3, &mut rng);
//! let params = CfcmParams::with_epsilon(0.3);
//! let sel = schur_cfcm(&g, 5, &params).unwrap();
//! assert_eq!(sel.nodes.len(), 5);
//! let score = cfcc::cfcc_group_exact(&g, &sel.nodes);
//! assert!(score > 0.0);
//! ```

pub mod adaptive;
pub mod approx_greedy;
pub mod cfcc;
pub mod edge_addition;
pub mod error;
pub mod exact;
pub mod first_phase;
pub mod forest_cfcm;
pub mod forest_delta;
pub mod heuristics;
pub mod kemeny;
pub mod optimum;
pub mod params;
pub mod result;
pub mod schur;
pub mod schur_cfcm;
pub mod schur_delta;

pub use error::CfcmError;
pub use params::CfcmParams;
pub use result::{IterStats, RunStats, Selection};
