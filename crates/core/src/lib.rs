//! # cfcc-core
//!
//! Current Flow Closeness Maximization (CFCM) — a from-scratch Rust
//! implementation of *"Fast Maximization of Current Flow Group Closeness
//! Centrality"* (Xia & Zhang, ICDE 2025).
//!
//! For a connected undirected graph `G` with `n` nodes, the current-flow
//! closeness centrality of a node group `S` is `C(S) = n / Tr(L_{-S}^{-1})`
//! and CFCM asks for the size-`k` group maximizing it. The crate provides:
//!
//! * the paper's two Monte-Carlo greedy algorithms —
//!   [`forest_cfcm::forest_cfcm`] (spanning-forest sampling) and
//!   [`schur_cfcm::schur_cfcm`] (forest sampling + Schur complement), both
//!   with the `1 − (k/(k−1))·(1/e) − ε` approximation profile;
//! * every baseline from the paper's evaluation:
//!   [`exact::exact_greedy`] (dense algebra with incremental rank-one
//!   updates), [`optimum::optimum_cfcm`] (exhaustive search for tiny
//!   graphs), [`approx_greedy::approx_greedy`] (the Li et al. WWW'19
//!   state-of-the-art method on top of a hand-rolled PCG Laplacian solver),
//!   and the [`heuristics`] (Degree, Top-CFCC);
//! * [`cfcc`] — exact and CG/Hutchinson evaluation of `C(S)`, single-node
//!   CFCC, and resistance-distance utilities.
//!
//! All algorithms share one front door: the [`SolveSession`] builder, which
//! resolves solvers by name through the [`registry`], validates the problem
//! uniformly, and supports progress reporting, cooperative cancellation,
//! and wall-clock deadlines.
//!
//! ## Quick start
//!
//! ```
//! use cfcc_core::{cfcc, SolveSession};
//! use cfcc_graph::generators;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::barabasi_albert(200, 3, &mut rng);
//!
//! // Maximize C(S) over groups of size 5 with the paper's flagship
//! // algorithm (SchurCFCM).
//! let sel = SolveSession::new(&g)
//!     .k(5)
//!     .epsilon(0.3)
//!     .solver("schur")
//!     .run()
//!     .unwrap();
//! assert_eq!(sel.nodes.len(), 5);
//! let score = cfcc::cfcc_group_exact(&g, &sel.nodes);
//! assert!(score > 0.0);
//! ```
//!
//! Long runs stay controllable — attach a progress callback, a deadline,
//! or a [`CancelToken`] (cancelled runs return the partial selection
//! accumulated so far, per-iteration stats intact):
//!
//! ```
//! use cfcc_core::{CancelToken, SolveSession};
//! use cfcc_graph::generators;
//! use std::time::Duration;
//!
//! let g = generators::barbell(10, 4);
//! let token = CancelToken::new();
//! let sel = SolveSession::new(&g)
//!     .k(3)
//!     .solver("forest")
//!     .epsilon(0.3)
//!     .cancel_token(token.clone())
//!     .timeout(Duration::from_secs(60))
//!     .on_progress(|it| println!("picked {} (gain {})", it.chosen, it.gain))
//!     .run()
//!     .unwrap();
//! assert!(!sel.nodes.is_empty());
//! ```
//!
//! Runtime selection across every solver goes through the registry:
//!
//! ```
//! use cfcc_core::{registry, SolveContext};
//! use cfcc_graph::generators;
//!
//! let g = generators::cycle(12);
//! for solver in registry::all() {
//!     if solver.supports(g.num_nodes(), g.num_edges(), 2).is_supported() {
//!         let sel = solver.solve(&g, 2, &SolveContext::default()).unwrap();
//!         assert_eq!(sel.nodes.len(), 2, "{}", solver.name());
//!     }
//! }
//! ```
//!
//! To add a new solver, see the [`solver`] module docs.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod approx_greedy;
pub mod cfcc;
pub mod context;
pub mod edge_addition;
pub mod engine;
pub mod error;
pub mod exact;
pub mod first_phase;
pub mod forest_cfcm;
pub mod forest_delta;
pub mod heuristics;
pub mod kemeny;
pub mod optimum;
pub mod params;
pub mod registry;
pub mod result;
pub mod schur;
pub mod schur_cfcm;
pub mod schur_delta;
pub mod session;
pub mod solver;

pub use context::{CancelToken, SolveContext};
pub use error::CfcmError;
pub use params::CfcmParams;
pub use result::{IterStats, RunStats, Selection};
pub use session::SolveSession;
pub use solver::{Capability, CfcmSolver, SolverKind};
