//! SchurCFCM (paper Algorithm 5): greedy CFCM with the auxiliary root set
//! `T` — the paper's flagship algorithm, faster and more accurate than
//! ForestCFCM because (i) Wilson walks absorb sooner on `S ∪ T` and
//! (ii) `L_{-S∪T}^{-1}` is more diagonally dominant than `L_{-S}^{-1}`.

use crate::context::SolveContext;
use crate::first_phase::first_phase;
use crate::forest_delta::forest_delta;
use crate::params::{t_star, top_degree_nodes};
use crate::result::{IterStats, RunStats, Selection};
use crate::schur_delta::schur_delta_ws;
use crate::solver::{CfcmSolver, SolverKind};
use crate::{CfcmError, CfcmParams};
use cfcc_graph::{Graph, Node};
use cfcc_util::Stopwatch;

/// Greedy CFCM via forest sampling plus Schur complement.
///
/// `T` holds the `c` highest-degree nodes (`c = params.schur_c`, defaulting
/// to the balance point `|T*|` of §V-A); each iteration uses `T ∖ S_i` as
/// the auxiliary root set. Falls back to plain ForestDelta if `T ∖ S_i`
/// ever empties (only possible for tiny `c`).
///
/// Thin wrapper over [`schur_cfcm_ctx`] with a plain-parameter context.
pub fn schur_cfcm(g: &Graph, k: usize, params: &CfcmParams) -> Result<Selection, CfcmError> {
    schur_cfcm_ctx(g, k, &SolveContext::from_params(params))
}

/// Context-aware SchurCFCM: honors cancellation/deadline (returning the
/// partial selection accumulated so far) and reports per-iteration progress.
pub fn schur_cfcm_ctx(g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
    ctx.check_problem(g, k)?;
    let params = &ctx.params;
    let mut stats = RunStats::default();
    let mut sw = Stopwatch::start();

    let c = params.schur_c.unwrap_or_else(|| t_star(g)).max(1);
    let t_pool = top_degree_nodes(g, c.min(g.num_nodes() - 1));
    // The run's persistent workspace: SchurDelta's |T| × w round buffers
    // are reused across every greedy iteration below.
    let mut ws = ctx.workspace();
    ws.begin_run();

    // First iteration: identical to ForestCFCM (Lines 2–15; the paper omits
    // the Schur machinery here for ease of implementation).
    let fp = first_phase(g, params);
    let mut in_s = vec![false; g.num_nodes()];
    in_s[fp.chosen as usize] = true;
    let mut nodes = vec![fp.chosen];
    let it = IterStats {
        chosen: fp.chosen,
        forests: fp.forests,
        walk_steps: fp.walk_steps,
        seconds: sw.lap().as_secs_f64(),
        gain: f64::NAN,
    };
    ctx.emit(&it);
    stats.iterations.push(it);

    for i in 1..k {
        if ctx.interrupted() {
            break;
        }
        let t_nodes: Vec<Node> = t_pool
            .iter()
            .copied()
            .filter(|&t| !in_s[t as usize])
            .collect();
        let (best, forests, walk_steps, gain) = if t_nodes.is_empty() {
            let est = forest_delta(g, &in_s, params, i as u64);
            (
                est.best,
                est.forests,
                est.walk_steps,
                est.deltas[est.best as usize],
            )
        } else {
            let est = schur_delta_ws(g, &in_s, &t_nodes, params, i as u64, &mut ws)?;
            (
                est.best,
                est.forests,
                est.walk_steps,
                est.deltas[est.best as usize],
            )
        };
        in_s[best as usize] = true;
        nodes.push(best);
        let it = IterStats {
            chosen: best,
            forests,
            walk_steps,
            seconds: sw.lap().as_secs_f64(),
            gain,
        };
        ctx.emit(&it);
        stats.iterations.push(it);
    }
    Ok(Selection { nodes, stats })
}

/// Registry entry for SchurCFCM (paper Algorithm 5, the flagship).
pub struct SchurSolver;

impl CfcmSolver for SchurSolver {
    fn name(&self) -> &'static str {
        "schur"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::MonteCarlo
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        schur_cfcm_ctx(g, k, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfcc::cfcc_group_exact;
    use crate::exact::exact_greedy;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_inputs() {
        let g = generators::cycle(6);
        assert!(schur_cfcm(&g, 0, &CfcmParams::default()).is_err());
        assert!(schur_cfcm(&g, 6, &CfcmParams::default()).is_err());
    }

    #[test]
    fn selects_k_distinct_nodes() {
        let mut rng = StdRng::seed_from_u64(28);
        let g = generators::barabasi_albert(70, 3, &mut rng);
        let sel = schur_cfcm(&g, 6, &CfcmParams::with_epsilon(0.3).seed(3)).unwrap();
        assert_eq!(sel.nodes.len(), 6);
        let set: std::collections::HashSet<_> = sel.nodes.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn quality_close_to_exact_greedy() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = generators::barabasi_albert(80, 3, &mut rng);
        let k = 4;
        let exact = exact_greedy(&g, k).unwrap();
        let exact_c = cfcc_group_exact(&g, &exact.nodes);
        let sel = schur_cfcm(&g, k, &CfcmParams::with_epsilon(0.15).seed(4)).unwrap();
        let got_c = cfcc_group_exact(&g, &sel.nodes);
        assert!(
            got_c >= 0.93 * exact_c,
            "SchurCFCM C(S)={got_c} too far below exact greedy {exact_c}"
        );
    }

    #[test]
    fn walks_shorter_than_forest_cfcm() {
        // The §IV motivation: adding T to the root set shortens Wilson
        // walks. Compare per-forest walk lengths across the two methods.
        let mut rng = StdRng::seed_from_u64(30);
        let g = generators::scale_free_with_edges(300, 1200, &mut rng);
        let p = CfcmParams::with_epsilon(0.3).seed(5);
        let forest = crate::forest_cfcm::forest_cfcm(&g, 3, &p).unwrap();
        let schur = schur_cfcm(&g, 3, &p).unwrap();
        // Compare mean steps per forest over the delta iterations (skip the
        // shared first phase).
        let mean = |sel: &Selection| {
            let (s, f): (u64, u64) = sel.stats.iterations[1..]
                .iter()
                .fold((0, 0), |(s, f), it| (s + it.walk_steps, f + it.forests));
            s as f64 / f.max(1) as f64
        };
        assert!(
            mean(&schur) < mean(&forest),
            "schur {} vs forest {}",
            mean(&schur),
            mean(&forest)
        );
    }

    #[test]
    fn explicit_small_c_falls_back_when_t_exhausted() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let mut p = CfcmParams::with_epsilon(0.3).seed(6);
        p.schur_c = Some(1); // T may be swallowed by S quickly
        let sel = schur_cfcm(&g, 4, &p).unwrap();
        assert_eq!(sel.nodes.len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = generators::barabasi_albert(50, 2, &mut rng);
        let p = CfcmParams::with_epsilon(0.25).seed(7);
        let a = schur_cfcm(&g, 3, &p).unwrap();
        let b = schur_cfcm(&g, 3, &p).unwrap();
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn selections_bit_identical_across_thread_counts() {
        // Thread count must never change which nodes are selected. (The
        // sampler's per-chunk merge regroups float sums, so Monte-Carlo
        // *gains* may differ in the last ulps across thread counts; the
        // dense kernels' row-panel split, by contrast, preserves
        // arithmetic order exactly, so the exact path below is asserted
        // bit for bit including gains.)
        let mut rng = StdRng::seed_from_u64(33);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let serial = schur_cfcm(&g, 4, &CfcmParams::with_epsilon(0.25).seed(11).threads(1));
        let parallel = schur_cfcm(&g, 4, &CfcmParams::with_epsilon(0.25).seed(11).threads(4));
        let (a, b) = (serial.unwrap(), parallel.unwrap());
        assert_eq!(a.nodes, b.nodes);
        // The dense exact path takes its thread count through the context.
        use crate::context::SolveContext;
        let e1 = crate::exact::exact_greedy_ctx(
            &g,
            4,
            &SolveContext::new(CfcmParams::default().threads(1)),
        )
        .unwrap();
        let e4 = crate::exact::exact_greedy_ctx(
            &g,
            4,
            &SolveContext::new(CfcmParams::default().threads(4)),
        )
        .unwrap();
        assert_eq!(e1.nodes, e4.nodes);
        for (ia, ib) in e1.stats.iterations.iter().zip(&e4.stats.iterations) {
            assert!(
                ia.gain == ib.gain || (ia.gain.is_nan() && ib.gain.is_nan()),
                "exact gains must be bit-identical"
            );
        }
    }
}
