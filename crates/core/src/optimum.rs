//! Exhaustive CFCM optimum for tiny graphs (paper Fig. 1's `Optimum` line).
//!
//! Enumerates all `C(n, k)` groups in a DFS over ascending node ids, but
//! instead of factorizing `L_{-S}` per leaf (`O(C(n,k)·n³)`), it maintains
//! `M = L_{-S}^{-1}` along the DFS path with `O(n²)` rank-one removal
//! updates and reads each leaf's trace in `O(n)` from the parent's `M`:
//!
//! ```text
//! Tr(L_{-(S∪u)}^{-1}) = Tr(M) − ‖M e_u‖² / M_uu
//! ```
//!
//! Total cost ≈ `C(n, k−1)·n²`, which makes Dolphins-sized (62 nodes, k=5)
//! instances take seconds instead of hours.

use crate::context::SolveContext;
use crate::result::{IterStats, RunStats, Selection};
use crate::solver::{Capability, CfcmSolver, SolverKind};
use crate::CfcmError;
use cfcc_graph::{Graph, Node};
use cfcc_linalg::dense::DenseMatrix;
use cfcc_linalg::laplacian::laplacian_submatrix_dense;
use cfcc_linalg::vector::norm2_sq;
use cfcc_util::Stopwatch;

/// Result of the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimum {
    /// The optimal group (sorted ascending).
    pub nodes: Vec<Node>,
    /// Its grounded trace `Tr(L_{-S*}^{-1})`.
    pub trace: f64,
    /// Its CFCC value `C(S*)`.
    pub cfcc: f64,
    /// Number of groups examined.
    pub examined: u64,
}

/// Exhaustively find `S* = argmax_{|S|=k} C(S)`.
///
/// Practical for `n ≲ 80, k ≤ 5` (the paper's Fig. 1 regime).
pub fn optimum_cfcm(g: &Graph, k: usize) -> Result<Optimum, CfcmError> {
    optimum_cfcm_ctx(g, k, &SolveContext::default())
}

/// Context-aware exhaustive search. Cancellation is polled between
/// depth-1 branches; an interrupted run returns the best group found so
/// far (possibly empty, if no complete group was examined yet).
pub fn optimum_cfcm_ctx(g: &Graph, k: usize, ctx: &SolveContext) -> Result<Optimum, CfcmError> {
    ctx.check_problem(g, k)?;
    let n = g.num_nodes();
    let mut best_trace = f64::INFINITY;
    let mut best: Vec<Node> = Vec::new();
    let mut examined = 0u64;

    // Depth 1: every singleton gets a fresh dense inverse.
    for first in 0..n as Node {
        if ctx.interrupted() {
            break;
        }
        // A fresh maintained inverse per depth-1 branch — the DFS reads
        // M's rows directly and updates it with rank-one removals, the
        // genuine inverse-consuming pattern.
        let mask = crate::cfcc::group_mask(g, &[first])?;
        let (sub, keep) = laplacian_submatrix_dense(g, &mask);
        let m = sub
            .cholesky_threaded(ctx.params.threads)
            .map_err(|e| CfcmError::Numerical(format!("L_-S not SPD: {e}")))?
            .inverse_threaded(ctx.params.threads);
        let mut prefix = vec![first];
        if k == 1 {
            examined += 1;
            let tr = m.trace();
            if tr < best_trace {
                best_trace = tr;
                best = prefix.clone();
            }
            continue;
        }
        dfs(
            k,
            &m,
            &keep,
            &mut prefix,
            first,
            &mut best_trace,
            &mut best,
            &mut examined,
        );
    }
    best.sort_unstable();
    Ok(Optimum {
        nodes: best,
        trace: best_trace,
        cfcc: n as f64 / best_trace,
        examined,
    })
}

/// Registry entry for the exhaustive optimum. Its [`CfcmSolver::supports`]
/// hint encodes the practicality wall (`n ≤ 80`, `k ≤ 5`) that the CLI
/// used to enforce with an ad-hoc guard.
pub struct OptimumSolver;

/// Largest node count the exhaustive search accepts through the registry.
pub const OPTIMUM_MAX_NODES: usize = 80;
/// Largest group size the exhaustive search accepts through the registry.
pub const OPTIMUM_MAX_K: usize = 5;

impl CfcmSolver for OptimumSolver {
    fn name(&self) -> &'static str {
        "optimum"
    }

    fn kind(&self) -> SolverKind {
        SolverKind::Exact
    }

    fn supports(&self, n: usize, _m: usize, k: usize) -> Capability {
        if n > OPTIMUM_MAX_NODES || k > OPTIMUM_MAX_K {
            Capability::Unsupported(format!(
                "optimum is exhaustive; limited to n <= {OPTIMUM_MAX_NODES}, \
                 k <= {OPTIMUM_MAX_K} (got n={n}, k={k})"
            ))
        } else {
            Capability::Supported
        }
    }

    fn solve(&self, g: &Graph, k: usize, ctx: &SolveContext) -> Result<Selection, CfcmError> {
        let sw = Stopwatch::start();
        let opt = optimum_cfcm_ctx(g, k, ctx)?;
        let seconds = sw.seconds();
        let per_node = seconds / opt.nodes.len().max(1) as f64;
        let iterations: Vec<IterStats> = opt
            .nodes
            .iter()
            .map(|&u| IterStats {
                chosen: u,
                forests: 0,
                walk_steps: 0,
                seconds: per_node,
                gain: f64::NAN,
            })
            .collect();
        let sel = Selection {
            nodes: opt.nodes,
            stats: RunStats {
                iterations,
                ..RunStats::default()
            },
        };
        ctx.emit_all(&sel.stats.iterations);
        Ok(sel)
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    k: usize,
    m: &DenseMatrix,
    nodes: &[Node],
    prefix: &mut Vec<Node>,
    min_node: Node,
    best_trace: &mut f64,
    best: &mut Vec<Node>,
    examined: &mut u64,
) {
    let d = m.rows();
    let last_level = prefix.len() + 1 == k;
    for c in 0..d {
        let u = nodes[c];
        // Ascending enumeration avoids revisiting permutations.
        if u <= min_node {
            continue;
        }
        // Keep n − k ≥ 1 nodes ungrounded.
        if d == 1 {
            break;
        }
        if last_level {
            *examined += 1;
            let tr = m.trace() - norm2_sq(m.row(c)) / m.get(c, c);
            if tr < *best_trace {
                *best_trace = tr;
                prefix.push(u);
                *best = prefix.clone();
                prefix.pop();
            }
        } else {
            let child = crate::exact::remove_index(m, c);
            let child_nodes: Vec<Node> = nodes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != c)
                .map(|(_, &x)| x)
                .collect();
            prefix.push(u);
            dfs(
                k,
                &child,
                &child_nodes,
                prefix,
                u,
                best_trace,
                best,
                examined,
            );
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfcc::cfcc_group_exact;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force oracle: enumerate groups and evaluate each from scratch.
    fn naive_optimum(g: &Graph, k: usize) -> (Vec<Node>, f64) {
        let n = g.num_nodes();
        let mut best = (Vec::new(), f64::NEG_INFINITY);
        let mut group = Vec::with_capacity(k);
        fn rec(
            g: &Graph,
            n: usize,
            k: usize,
            start: usize,
            group: &mut Vec<Node>,
            best: &mut (Vec<Node>, f64),
        ) {
            if group.len() == k {
                let c = cfcc_group_exact(g, group);
                if c > best.1 {
                    *best = (group.clone(), c);
                }
                return;
            }
            for u in start..n {
                group.push(u as Node);
                rec(g, n, k, u + 1, group, best);
                group.pop();
            }
        }
        rec(g, n, k, 0, &mut group, &mut best);
        best
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(12);
        for trial in 0..3 {
            let g = generators::barabasi_albert(12 + trial, 2, &mut rng);
            for k in 1..=3 {
                let fast = optimum_cfcm(&g, k).unwrap();
                let (naive_nodes, naive_cfcc) = naive_optimum(&g, k);
                assert!(
                    (fast.cfcc - naive_cfcc).abs() < 1e-8,
                    "k={k}: {} vs {naive_cfcc}",
                    fast.cfcc
                );
                assert_eq!(fast.nodes, naive_nodes, "k={k}");
            }
        }
    }

    #[test]
    fn examined_counts_all_combinations() {
        let g = generators::cycle(8);
        let opt = optimum_cfcm(&g, 2).unwrap();
        assert_eq!(opt.examined, 28); // C(8,2)
        let opt3 = optimum_cfcm(&g, 3).unwrap();
        assert_eq!(opt3.examined, 56); // C(8,3)
    }

    #[test]
    fn star_optimum_contains_hub() {
        let g = generators::star(10);
        let opt = optimum_cfcm(&g, 2).unwrap();
        assert!(opt.nodes.contains(&0));
    }

    #[test]
    fn optimum_at_least_greedy() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::barabasi_albert(18, 2, &mut rng);
        for k in 1..=3 {
            let opt = optimum_cfcm(&g, k).unwrap();
            let greedy = crate::exact::exact_greedy(&g, k).unwrap();
            let greedy_c = cfcc_group_exact(&g, &greedy.nodes);
            assert!(opt.cfcc >= greedy_c - 1e-9, "k={k}");
        }
    }

    #[test]
    fn cfcc_and_trace_consistent() {
        let g = generators::cycle(10);
        let opt = optimum_cfcm(&g, 2).unwrap();
        assert!((opt.cfcc - 10.0 / opt.trace).abs() < 1e-12);
    }

    #[test]
    fn already_elapsed_deadline_yields_empty_result() {
        use crate::context::SolveContext;
        use std::time::{Duration, Instant};
        let g = generators::cycle(10);
        let past = Instant::now() - Duration::from_secs(1);
        let ctx = SolveContext::default().with_deadline(past);
        // Interrupted before any depth-1 branch: no group examined.
        let opt = optimum_cfcm_ctx(&g, 2, &ctx).unwrap();
        assert!(opt.nodes.is_empty());
        assert_eq!(opt.examined, 0);
        let sel = OptimumSolver.solve(&g, 2, &ctx).unwrap();
        assert!(sel.nodes.is_empty());
        assert!(sel.stats.iterations.is_empty());
    }
}
