//! Wall-clock stopwatch used by the benchmark harnesses.

use std::time::{Duration, Instant};

/// A restartable stopwatch. All tables in the paper report wall-clock
/// seconds, so that is the only metric exposed.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Start (or restart) timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Reset the start point and return the elapsed duration before reset.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Format seconds the way the paper's Table II does: 4 significant digits,
/// switching to plain decimals for small values (`0.328`, `4.824`, `1130`).
pub fn fmt_seconds(secs: f64) -> String {
    if !secs.is_finite() {
        return "-".to_string();
    }
    if secs >= 1000.0 {
        format!("{:.0}", secs)
    } else if secs >= 100.0 {
        format!("{:.1}", secs)
    } else if secs >= 10.0 {
        format!("{:.2}", secs)
    } else {
        format!("{:.3}", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.seconds();
        let b = sw.seconds();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let lap = sw.lap();
        assert!(lap.as_micros() >= 1000);
        // After a lap the elapsed counter restarts near zero.
        assert!(sw.seconds() < lap.as_secs_f64() + 0.5);
    }

    #[test]
    fn seconds_formatting_matches_table_style() {
        assert_eq!(fmt_seconds(0.328), "0.328");
        assert_eq!(fmt_seconds(4.824), "4.824");
        assert_eq!(fmt_seconds(33.7), "33.70");
        assert_eq!(fmt_seconds(274.6), "274.6");
        assert_eq!(fmt_seconds(1130.4), "1130");
        assert_eq!(fmt_seconds(f64::NAN), "-");
    }
}
