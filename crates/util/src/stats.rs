//! Online statistics: Welford mean/variance accumulators.
//!
//! Used by the adaptive sampling loops (empirical Bernstein stopping rule,
//! paper Lemma 3.6): variance must be maintained incrementally while forests
//! stream in, without storing per-sample histories.

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Debug, Default, Clone, Copy)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    #[inline]
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
    }
}

/// A dense vector of Welford accumulators stored structure-of-arrays, so the
/// per-forest update loop touches three contiguous arrays instead of an
/// array-of-structs (better cache behaviour for n ~ 10^5..10^6 nodes).
#[derive(Debug, Clone)]
pub struct WelfordVec {
    count: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl WelfordVec {
    /// `len` independent accumulators, all sharing a common sample count
    /// (every forest contributes one observation per node).
    pub fn new(len: usize) -> Self {
        Self {
            count: 0,
            mean: vec![0.0; len],
            m2: vec![0.0; len],
        }
    }

    /// Number of accumulators.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when holding no accumulators.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Shared observation count.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation vector (`xs.len() == self.len()`).
    pub fn push(&mut self, xs: &[f64]) {
        assert_eq!(xs.len(), self.mean.len());
        self.count += 1;
        let c = self.count as f64;
        for ((&x, mean), m2) in xs.iter().zip(&mut self.mean).zip(&mut self.m2) {
            let delta = x - *mean;
            *mean += delta / c;
            *m2 += delta * (x - *mean);
        }
    }

    /// Mean of accumulator `i`.
    #[inline]
    pub fn mean_at(&self, i: usize) -> f64 {
        self.mean[i]
    }

    /// All means.
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// Unbiased sample variance of accumulator `i`.
    #[inline]
    pub fn variance_at(&self, i: usize) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2[i] / (self.count - 1) as f64
        }
    }

    /// Merge (parallel reduction over sampling shards).
    pub fn merge(&mut self, other: &WelfordVec) {
        assert_eq!(self.len(), other.len());
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.count = other.count;
            self.mean.copy_from_slice(&other.mean);
            self.m2.copy_from_slice(&other.m2);
            return;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let total = na + nb;
        for i in 0..self.mean.len() {
            let delta = other.mean[i] - self.mean[i];
            self.mean[i] += delta * nb / total;
            self.m2[i] += other.m2[i] + delta * delta * na * nb / total;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs = [1.0, 4.0, 9.0, 16.0, 25.0, -3.0, 0.5];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (m, v) = naive(&xs);
        assert!((w.mean() - m).abs() < 1e-12);
        assert!((w.variance() - v).abs() < 1e-12);
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(2.0);
        a.push(4.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Welford::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn vec_matches_scalar() {
        let mut wv = WelfordVec::new(3);
        let mut ws = [Welford::new(), Welford::new(), Welford::new()];
        let samples = [
            [1.0, 2.0, 3.0],
            [4.0, -1.0, 0.0],
            [2.5, 2.5, 2.5],
            [0.0, 9.0, -7.0],
        ];
        for s in &samples {
            wv.push(s);
            for (w, &x) in ws.iter_mut().zip(s.iter()) {
                w.push(x);
            }
        }
        for (i, w) in ws.iter().enumerate() {
            assert!((wv.mean_at(i) - w.mean()).abs() < 1e-12);
            assert!((wv.variance_at(i) - w.variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn vec_merge_equals_sequential() {
        let mut full = WelfordVec::new(2);
        let mut a = WelfordVec::new(2);
        let mut b = WelfordVec::new(2);
        for i in 0..50 {
            let s = [(i as f64).cos(), (i as f64) * 0.25];
            full.push(&s);
            if i < 20 {
                a.push(&s);
            } else {
                b.push(&s);
            }
        }
        a.merge(&b);
        for i in 0..2 {
            assert!((a.mean_at(i) - full.mean_at(i)).abs() < 1e-12);
            assert!((a.variance_at(i) - full.variance_at(i)).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut w = Welford::new();
        for _ in 0..10 {
            w.push(3.25);
        }
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.mean(), 3.25);
    }
}
