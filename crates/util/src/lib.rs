//! Shared utilities for the `cfcm` workspace.
//!
//! This crate deliberately has no dependencies; it provides:
//!
//! * [`fx`] — the Fx hash function plus `HashMap`/`HashSet` aliases keyed on
//!   it. The default SipHash tables are measurably slower for the small
//!   integer keys that dominate this workspace (node ids, edge ids).
//! * [`stats`] — Welford online mean/variance accumulators used by the
//!   adaptive (empirical Bernstein) sampling loops.
//! * [`timing`] — a tiny stopwatch for benchmark harnesses.
//! * [`table`] — fixed-width text tables matching the paper's row formats.
//! * [`json`] — minimal JSON emission for machine-consumable reports.

#![forbid(unsafe_code)]

pub mod fx;
pub mod json;
pub mod stats;
pub mod table;
pub mod timing;

pub use fx::{FxHashMap, FxHashSet};
pub use stats::Welford;
pub use timing::Stopwatch;
