//! Minimal JSON emission — enough for machine-consumable reports without
//! an external serialization dependency (the build environment has no
//! registry access, so serde is not an option).
//!
//! Values are emitted eagerly into strings; non-finite floats become
//! `null`, per RFC 8259 (JSON has no NaN/Infinity).

use std::fmt::Write;

/// Escape a string for embedding in JSON (adds the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number (`null` for NaN/±∞).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Builder for a JSON object: `{"k": v, …}` in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a pre-rendered JSON value under `key`.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields
            .push(format!("{}:{}", escape(key), value.into()));
        self
    }

    /// Add a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = escape(value);
        self.raw(key, v)
    }

    /// Add a float field (`null` for non-finite values).
    pub fn num(self, key: &str, value: f64) -> Self {
        let v = number(value);
        self.raw(key, v)
    }

    /// Add an integer field.
    pub fn int(self, key: &str, value: impl Into<i128>) -> Self {
        let v = value.into().to_string();
        self.raw(key, v)
    }

    /// Add a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Render `{…}`.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Render an iterator of pre-rendered JSON values as `[…]`.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let joined: Vec<String> = items.into_iter().collect();
    format!("[{}]", joined.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_render_null_for_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let obj = JsonObject::new()
            .str("name", "schur")
            .int("k", 5)
            .num("gain", f64::NAN)
            .bool("done", true)
            .raw("nodes", array([1, 2].iter().map(|n| n.to_string())));
        assert_eq!(
            obj.render(),
            r#"{"name":"schur","k":5,"gain":null,"done":true,"nodes":[1,2]}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonObject::new().render(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
