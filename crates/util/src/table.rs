//! Fixed-width text tables for the benchmark harnesses.
//!
//! The table/figure regeneration targets print rows in the same layout the
//! paper uses, so measured output can be diffed against `EXPERIMENTS.md`.

/// A simple left-padded text table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also what `Display` prints).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["Network", "Nodes", "Time"]);
        t.row(["Euroroads", "1039", "0.328"]);
        t.row(["Facebook", "4039", "2.446"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Network"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "1039" and "4039" start at the same offset.
        let off2 = lines[2].find("1039").unwrap();
        let off3 = lines[3].find("4039").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }
}
