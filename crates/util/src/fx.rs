//! A minimal implementation of the Fx hash function (the rustc hasher).
//!
//! The algorithm is the well-known public-domain "FxHash": a single
//! multiply-rotate round per word. It is not HashDoS-resistant; the keys in
//! this workspace are internal node/edge indices, never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Hash state for the Fx algorithm.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let (chunks, rem) = bytes.as_chunks::<8>();
        for chunk in chunks {
            self.add_to_hash(u64::from_le_bytes(*chunk));
        }
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 7);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 7);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_dedup() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100u64 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hash_differs_across_values() {
        // Not a distribution test, just a sanity check that nearby keys do
        // not collide trivially.
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_writes_consistent_with_word_writes() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
