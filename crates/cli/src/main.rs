//! `cfcm` — run CFCM solvers from the command line.

#![forbid(unsafe_code)]

use cfcm_cli::args::{parse_args, USAGE};
use cfcm_cli::run::{execute, render_backend_list, render_dataset_list, render_solver_list};

fn main() {
    // Daemon subcommands dispatch before flag parsing: `cfcm serve …`
    // runs the resident query daemon, `cfcm client …` talks to one.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("serve") => {
            if let Err(e) = cfcc_serve::cli::run_serve(&raw[1..]) {
                eprintln!("error: {e}\n\n{}", cfcc_serve::cli::SERVE_USAGE);
                std::process::exit(2);
            }
            return;
        }
        Some("client") => {
            if let Err(e) = cfcc_serve::cli::run_client(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        _ => {}
    }
    let args = match parse_args(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.help {
        print!("{USAGE}");
        return;
    }
    if args.list_datasets {
        print!("{}", render_dataset_list());
        return;
    }
    if args.list_solvers {
        print!("{}", render_solver_list());
        return;
    }
    if args.list_backends {
        print!("{}", render_backend_list());
        return;
    }
    match execute(&args) {
        Ok(report) => {
            if args.json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
