//! `cfcm` — run CFCM solvers from the command line.

use cfcm_cli::args::{parse_args, USAGE};
use cfcm_cli::run::{execute, render_backend_list, render_dataset_list, render_solver_list};

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.help {
        print!("{USAGE}");
        return;
    }
    if args.list_datasets {
        print!("{}", render_dataset_list());
        return;
    }
    if args.list_solvers {
        print!("{}", render_solver_list());
        return;
    }
    if args.list_backends {
        print!("{}", render_backend_list());
        return;
    }
    match execute(&args) {
        Ok(report) => {
            if args.json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
