//! Graph loading, algorithm dispatch, and report assembly for the CLI.

use crate::args::{Algorithm, CliArgs};
use cfcc_core::{cfcc, CfcmParams, Selection};
use cfcc_graph::traversal::largest_connected_component;
use cfcc_graph::Graph;
use cfcc_util::Stopwatch;

/// What a CLI run produces (rendered by the binary, inspected by tests).
#[derive(Debug, Clone)]
pub struct Report {
    /// Algorithm used.
    pub algo: Algorithm,
    /// Graph statistics after LCC extraction: (nodes, edges).
    pub graph_stats: (usize, usize),
    /// Whether the input graph was disconnected and reduced to its LCC.
    pub reduced_to_lcc: bool,
    /// Selected nodes (in original labels where the input was a file).
    pub nodes: Vec<u64>,
    /// Wall-clock seconds of the solve.
    pub seconds: f64,
    /// Forests sampled (Monte-Carlo algorithms only).
    pub forests: u64,
    /// Evaluated C(S), when requested.
    pub cfcc: Option<f64>,
}

impl Report {
    /// Render as the CLI's stdout block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "algorithm : {}\ngraph     : {} nodes, {} edges{}\n",
            self.algo.name(),
            self.graph_stats.0,
            self.graph_stats.1,
            if self.reduced_to_lcc { " (largest connected component)" } else { "" }
        ));
        out.push_str(&format!("time      : {:.3}s\n", self.seconds));
        if self.forests > 0 {
            out.push_str(&format!("forests   : {}\n", self.forests));
        }
        out.push_str(&format!("selection : {:?}\n", self.nodes));
        if let Some(c) = self.cfcc {
            out.push_str(&format!("C(S)      : {c:.6}\n"));
        }
        out
    }
}

/// Load the graph requested by the CLI (edge list or bundled dataset),
/// returning the LCC, original labels per node, and whether reduction
/// happened.
pub fn load_graph(args: &CliArgs) -> Result<(Graph, Vec<u64>, bool), String> {
    let (raw, labels) = if let Some(path) = &args.graph_path {
        cfcc_graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?
    } else {
        let name = args.dataset.as_deref().expect("validated");
        let g = cfcc_datasets::by_name(name, args.scale)
            .ok_or_else(|| format!("unknown dataset '{name}' (try --list-datasets)"))?;
        let labels = (0..g.num_nodes() as u64).collect();
        (g, labels)
    };
    if raw.is_connected() {
        return Ok((raw, labels, false));
    }
    let (lcc, remap) = largest_connected_component(&raw);
    let mut lcc_labels = vec![0u64; lcc.num_nodes()];
    for (old, new) in remap.iter().enumerate() {
        if let Some(new) = new {
            lcc_labels[*new as usize] = labels[old];
        }
    }
    Ok((lcc, lcc_labels, true))
}

/// Execute a parsed CLI invocation.
pub fn execute(args: &CliArgs) -> Result<Report, String> {
    let (g, labels, reduced) = load_graph(args)?;
    let params = CfcmParams::with_epsilon(args.epsilon)
        .seed(args.seed)
        .threads(args.threads);
    let sw = Stopwatch::start();
    let (nodes, forests): (Vec<u32>, u64) = match args.algo {
        Algorithm::Schur => unpack(cfcc_core::schur_cfcm::schur_cfcm(&g, args.k, &params))?,
        Algorithm::Forest => unpack(cfcc_core::forest_cfcm::forest_cfcm(&g, args.k, &params))?,
        Algorithm::Approx => unpack(cfcc_core::approx_greedy::approx_greedy(&g, args.k, &params))?,
        Algorithm::Exact => unpack(cfcc_core::exact::exact_greedy(&g, args.k))?,
        Algorithm::Degree => unpack(cfcc_core::heuristics::degree_baseline(&g, args.k))?,
        Algorithm::TopCfcc => {
            unpack(cfcc_core::heuristics::top_cfcc_sampled(&g, args.k, &params))?
        }
        Algorithm::Optimum => {
            if g.num_nodes() > 80 || args.k > 5 {
                return Err(format!(
                    "--algo optimum is exhaustive; limited to n <= 80, k <= 5 (got n={}, k={})",
                    g.num_nodes(),
                    args.k
                ));
            }
            let opt = cfcc_core::optimum::optimum_cfcm(&g, args.k).map_err(|e| e.to_string())?;
            (opt.nodes, 0)
        }
    };
    let seconds = sw.seconds();
    let cfcc_value = if args.evaluate {
        Some(cfcc::cfcc_group_cg(&g, &nodes, 1e-8).map_err(|e| e.to_string())?)
    } else {
        None
    };
    Ok(Report {
        algo: args.algo,
        graph_stats: (g.num_nodes(), g.num_edges()),
        reduced_to_lcc: reduced,
        nodes: nodes.iter().map(|&u| labels[u as usize]).collect(),
        seconds,
        forests,
        cfcc: cfcc_value,
    })
}

fn unpack(r: Result<Selection, cfcc_core::CfcmError>) -> Result<(Vec<u32>, u64), String> {
    let sel = r.map_err(|e| e.to_string())?;
    let forests = sel.stats.total_forests();
    Ok((sel.nodes, forests))
}

/// Render the dataset registry for `--list-datasets`.
pub fn render_dataset_list() -> String {
    let mut t = cfcc_util::table::Table::new([
        "name",
        "paper n",
        "paper m",
        "tau",
        "|T*|",
        "topology",
    ]);
    for s in cfcc_datasets::all_specs() {
        t.row([
            s.name.to_string(),
            s.paper_nodes.to_string(),
            s.paper_edges.to_string(),
            if s.paper_tau > 0 { s.paper_tau.to_string() } else { "-".into() },
            if s.paper_t_star > 0 { s.paper_t_star.to_string() } else { "-".into() },
            format!("{:?}", s.topology),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn args(v: &[&str]) -> CliArgs {
        parse_args(v.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn runs_on_bundled_dataset() {
        let a = args(&["--dataset", "karate", "--algo", "exact", "--k", "3", "--evaluate"]);
        let r = execute(&a).unwrap();
        assert_eq!(r.graph_stats, (34, 78));
        assert_eq!(r.nodes.len(), 3);
        assert!(r.cfcc.unwrap() > 0.0);
        assert!(!r.reduced_to_lcc);
        let text = r.render();
        assert!(text.contains("C(S)"));
        assert!(text.contains("exact"));
    }

    #[test]
    fn runs_monte_carlo_and_reports_forests() {
        let a = args(&[
            "--dataset", "dolphins", "--algo", "schur", "--k", "3", "--epsilon", "0.3",
        ]);
        let r = execute(&a).unwrap();
        assert_eq!(r.nodes.len(), 3);
        assert!(r.forests > 0);
        assert!(r.render().contains("forests"));
    }

    #[test]
    fn optimum_is_guarded() {
        let a = args(&["--dataset", "hamsterster", "--scale", "0.1", "--algo", "optimum"]);
        let err = execute(&a).unwrap_err();
        assert!(err.contains("exhaustive"));
    }

    #[test]
    fn loads_edge_list_with_original_labels_and_lcc() {
        // Disconnected file with sparse labels: LCC is the triangle.
        let dir = std::env::temp_dir().join("cfcm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "# comment\n100 200\n200 300\n300 100\n7 8\n").unwrap();
        let a = args(&[
            "--graph",
            path.to_str().unwrap(),
            "--algo",
            "degree",
            "--k",
            "1",
        ]);
        let r = execute(&a).unwrap();
        assert!(r.reduced_to_lcc);
        assert_eq!(r.graph_stats, (3, 3));
        assert!(
            [100u64, 200, 300].contains(&r.nodes[0]),
            "selection must be reported in original labels, got {:?}",
            r.nodes
        );
    }

    #[test]
    fn unknown_dataset_is_reported() {
        let a = args(&["--dataset", "nope", "--k", "2"]);
        assert!(execute(&a).unwrap_err().contains("unknown dataset"));
    }

    #[test]
    fn dataset_list_renders() {
        let text = render_dataset_list();
        assert!(text.contains("karate"));
        assert!(text.contains("soc-livejournal"));
    }
}
