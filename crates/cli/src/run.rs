//! Graph loading, registry-driven solver dispatch, and report assembly
//! for the CLI. There is no per-algorithm match here: solvers come from
//! `cfcc_core::registry` and run through a `SolveSession`.

use crate::args::CliArgs;
use cfcc_core::{cfcc, registry, CfcmParams, RunStats, SolveSession};
use cfcc_graph::traversal::largest_connected_component;
use cfcc_graph::Graph;
use cfcc_linalg::sdd;
use cfcc_util::json::{self, JsonObject};
use cfcc_util::Stopwatch;
use std::time::Duration;

/// What a CLI run produces (rendered by the binary, inspected by tests).
#[derive(Debug, Clone)]
pub struct Report {
    /// Canonical name of the solver that ran.
    pub algo: String,
    /// Solver family label (exact / monte-carlo / heuristic).
    pub kind: String,
    /// SDD backend selection the run was configured with (`auto` shows
    /// the name it resolves to for this graph size).
    pub backend: String,
    /// Graph statistics after LCC extraction: (nodes, edges).
    pub graph_stats: (usize, usize),
    /// Whether the input graph was disconnected and reduced to its LCC.
    pub reduced_to_lcc: bool,
    /// Selected nodes (in original labels where the input was a file).
    pub nodes: Vec<u64>,
    /// Wall-clock seconds of the solve.
    pub seconds: f64,
    /// Forests sampled (Monte-Carlo algorithms only).
    pub forests: u64,
    /// Whether the run stopped early (deadline) with a partial selection.
    pub partial: bool,
    /// Per-iteration statistics of the run (internal node ids).
    pub stats: RunStats,
    /// Evaluated C(S), when requested.
    pub cfcc: Option<f64>,
    /// How C(S) was computed: `"exact-trace"` (per-column solves through
    /// the backend) or `"hutchinson-64"` (stochastic estimate at scale,
    /// percent-level probe noise).
    pub cfcc_method: Option<&'static str>,
}

impl Report {
    /// Render as the CLI's stdout block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "algorithm : {} ({})\ngraph     : {} nodes, {} edges{}\n",
            self.algo,
            self.kind,
            self.graph_stats.0,
            self.graph_stats.1,
            if self.reduced_to_lcc {
                " (largest connected component)"
            } else {
                ""
            }
        ));
        out.push_str(&format!("backend   : {}\n", self.backend));
        out.push_str(&format!("time      : {:.3}s\n", self.seconds));
        if self.forests > 0 {
            out.push_str(&format!("forests   : {}\n", self.forests));
        }
        out.push_str(&format!(
            "selection : {:?}{}\n",
            self.nodes,
            if self.partial {
                " (partial: timeout hit)"
            } else {
                ""
            }
        ));
        if let Some(c) = self.cfcc {
            match self.cfcc_method {
                Some("hutchinson-64") => out.push_str(&format!(
                    "C(S)      : {c:.6} (Hutchinson estimate, 64 probes)\n"
                )),
                _ => out.push_str(&format!("C(S)      : {c:.6}\n")),
            }
        }
        out
    }

    /// Render as a machine-consumable JSON object (one line).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .str("algorithm", &self.algo)
            .str("kind", &self.kind)
            .str("backend", &self.backend)
            .int("nodes", self.graph_stats.0 as i128)
            .int("edges", self.graph_stats.1 as i128)
            .bool("reduced_to_lcc", self.reduced_to_lcc)
            .num("seconds", self.seconds)
            .int("forests", i128::from(self.forests))
            .bool("partial", self.partial)
            .raw(
                "selection",
                json::array(self.nodes.iter().map(|u| u.to_string())),
            )
            .raw("stats", self.stats.to_json_with_labels(&self.nodes));
        obj = match self.cfcc {
            Some(c) => obj.num("cfcc", c),
            None => obj.raw("cfcc", "null"),
        };
        obj = match self.cfcc_method {
            Some(m) => obj.str("cfcc_method", m),
            None => obj.raw("cfcc_method", "null"),
        };
        obj.render()
    }
}

/// Load the graph requested by the CLI (edge list or bundled dataset),
/// returning the LCC, original labels per node, and whether reduction
/// happened.
pub fn load_graph(args: &CliArgs) -> Result<(Graph, Vec<u64>, bool), String> {
    let (raw, labels) = if let Some(path) = &args.graph_path {
        cfcc_graph::io::read_edge_list_file(path).map_err(|e| e.to_string())?
    } else {
        let name = args.dataset.as_deref().expect("validated");
        let g = cfcc_datasets::by_name(name, args.scale)
            .ok_or_else(|| format!("unknown dataset '{name}' (try --list-datasets)"))?;
        let labels = (0..g.num_nodes() as u64).collect();
        (g, labels)
    };
    if raw.is_connected() {
        return Ok((raw, labels, false));
    }
    let (lcc, remap) = largest_connected_component(&raw);
    let mut lcc_labels = vec![0u64; lcc.num_nodes()];
    for (old, new) in remap.iter().enumerate() {
        if let Some(new) = new {
            lcc_labels[*new as usize] = labels[old];
        }
    }
    Ok((lcc, lcc_labels, true))
}

/// Execute a parsed CLI invocation.
pub fn execute(args: &CliArgs) -> Result<Report, String> {
    let (g, labels, reduced) = load_graph(args)?;
    let solver = registry::resolve(&args.algo).map_err(|e| e.to_string())?;
    let params = CfcmParams::with_epsilon(args.epsilon)
        .seed(args.seed)
        .threads(args.threads)
        .backend(args.backend);
    let backend_label = match args.backend {
        cfcc_linalg::SddBackend::Auto => auto_label(g.num_nodes(), args.k),
        other => other.name().to_string(),
    };

    let mut session = SolveSession::new(&g)
        .k(args.k)
        .solver_impl(solver)
        .params(params.clone());
    if let Some(secs) = args.timeout_secs {
        session = session.timeout(Duration::from_secs_f64(secs));
    }

    let sw = Stopwatch::start();
    let sel = session.run().map_err(|e| e.to_string())?;
    let seconds = sw.seconds();

    if sel.nodes.is_empty() {
        // Only possible when a cancel/deadline fired before any complete
        // group was examined (exhaustive search). Evaluating C(∅) would
        // mean CG solves on the singular full Laplacian — fail clearly.
        return Err(format!(
            "'{}' was interrupted before finding any selection; raise --timeout",
            solver.name()
        ));
    }
    let (cfcc_value, cfcc_method) = if args.evaluate {
        // Exact trace through the configured backend on modest graphs;
        // past that, the paper's Hutchinson estimator (n solves would
        // dominate the whole run). The report labels which one ran.
        let mut eval_params = params.clone();
        eval_params.cg_tol = eval_params.cg_tol.min(1e-8);
        let (c, method) = if g.num_nodes() <= 4096 {
            (
                cfcc::cfcc_group(&g, &sel.nodes, &eval_params),
                "exact-trace",
            )
        } else {
            (
                cfcc::cfcc_group_hutchinson(&g, &sel.nodes, 64, &eval_params),
                "hutchinson-64",
            )
        };
        (Some(c.map_err(|e| e.to_string())?), Some(method))
    } else {
        (None, None)
    };
    Ok(Report {
        algo: solver.name().to_string(),
        kind: solver.kind().label().to_string(),
        backend: backend_label,
        graph_stats: (g.num_nodes(), g.num_edges()),
        reduced_to_lcc: reduced,
        nodes: sel.nodes.iter().map(|&u| labels[u as usize]).collect(),
        seconds,
        forests: sel.stats.total_forests(),
        partial: sel.nodes.len() < args.k,
        stats: sel.stats,
        cfcc: cfcc_value,
        cfcc_method,
    })
}

/// Human-readable name of the backend(s) `auto` resolves to for a run
/// with `n` nodes and budget `k`. Greedy factors run at n−1 … n−k kept
/// unknowns; within `k` of the dense limit the policy can genuinely
/// switch mid-run, so only name a single backend when the whole range
/// resolves to it. Since the lsst-pcg routing change the policy is
/// size-only, so this needs no graph sniff.
fn auto_label(n: usize, k: usize) -> String {
    let auto = cfcc_linalg::SddBackend::Auto;
    let first = auto.resolve(n.saturating_sub(1)).name();
    let last = auto.resolve(n.saturating_sub(k)).name();
    if first == last {
        format!("auto ({first})")
    } else {
        format!("auto ({first} then {last})")
    }
}

/// Render the dataset registry for `--list-datasets`.
pub fn render_dataset_list() -> String {
    let mut t =
        cfcc_util::table::Table::new(["name", "paper n", "paper m", "tau", "|T*|", "topology"]);
    for s in cfcc_datasets::all_specs() {
        t.row([
            s.name.to_string(),
            s.paper_nodes.to_string(),
            s.paper_edges.to_string(),
            if s.paper_tau > 0 {
                s.paper_tau.to_string()
            } else {
                "-".into()
            },
            if s.paper_t_star > 0 {
                s.paper_t_star.to_string()
            } else {
                "-".into()
            },
            format!("{:?}", s.topology),
        ]);
    }
    t.render()
}

/// Render the SDD backend registry for `--list-backends`.
pub fn render_backend_list() -> String {
    let mut t = cfcc_util::table::Table::new(["name", "kind", "operations"]);
    for b in sdd::backends() {
        t.row([
            b.name().to_string(),
            b.kind().label().to_string(),
            b.ops().to_string(),
        ]);
    }
    t.row([
        "auto".into(),
        "policy".into(),
        format!(
            "dense-cholesky up to {} unknowns; above: lsst-pcg (low-stretch tree + sampled off-tree ultrasparsifier), with sparse-cg as fallback if tree construction fails",
            cfcc_linalg::SddBackend::AUTO_DENSE_LIMIT
        ),
    ]);
    t.render()
}

/// Render the solver registry for `--list-solvers`.
pub fn render_solver_list() -> String {
    let mut t = cfcc_util::table::Table::new(["name", "kind", "aliases"]);
    for s in registry::all() {
        let aliases: Vec<&str> = registry::aliases()
            .iter()
            .filter(|(_, canonical)| *canonical == s.name())
            .map(|(alias, _)| *alias)
            .collect();
        t.row([
            s.name().to_string(),
            s.kind().label().to_string(),
            if aliases.is_empty() {
                "-".into()
            } else {
                aliases.join(", ")
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn args(v: &[&str]) -> CliArgs {
        parse_args(v.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn runs_on_bundled_dataset() {
        let a = args(&[
            "--dataset",
            "karate",
            "--algo",
            "exact",
            "--k",
            "3",
            "--evaluate",
        ]);
        let r = execute(&a).unwrap();
        assert_eq!(r.graph_stats, (34, 78));
        assert_eq!(r.nodes.len(), 3);
        assert!(r.cfcc.unwrap() > 0.0);
        assert!(!r.reduced_to_lcc);
        assert!(!r.partial);
        let text = r.render();
        assert!(text.contains("C(S)"));
        assert!(text.contains("exact"));
    }

    #[test]
    fn runs_monte_carlo_and_reports_forests() {
        let a = args(&[
            "--dataset",
            "dolphins",
            "--algo",
            "schur",
            "--k",
            "3",
            "--epsilon",
            "0.3",
        ]);
        let r = execute(&a).unwrap();
        assert_eq!(r.nodes.len(), 3);
        assert!(r.forests > 0);
        assert!(r.render().contains("forests"));
        assert_eq!(r.stats.iterations.len(), 3);
    }

    #[test]
    fn optimum_is_guarded_by_capability() {
        let a = args(&[
            "--dataset",
            "hamsterster",
            "--scale",
            "0.1",
            "--algo",
            "optimum",
        ]);
        let err = execute(&a).unwrap_err();
        assert!(
            err.contains("exhaustive"),
            "capability hint surfaces: {err}"
        );
    }

    #[test]
    fn every_registered_solver_runs_through_the_cli() {
        for solver in registry::all() {
            let a = args(&[
                "--dataset",
                "karate",
                "--algo",
                solver.name(),
                "--k",
                "2",
                "--epsilon",
                "0.3",
            ]);
            let r = execute(&a).unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
            assert_eq!(r.nodes.len(), 2, "{}", solver.name());
            assert_eq!(r.algo, solver.name());
        }
    }

    #[test]
    fn json_report_is_emitted_and_structured() {
        let a = args(&[
            "--dataset",
            "karate",
            "--algo",
            "forest",
            "--k",
            "2",
            "--epsilon",
            "0.3",
            "--evaluate",
            "--json",
        ]);
        let r = execute(&a).unwrap();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""algorithm":"forest""#));
        assert!(j.contains(r#""kind":"monte-carlo""#));
        assert!(j.contains(r#""selection":["#));
        assert!(j.contains(r#""iterations":["#));
        assert!(j.contains(r#""cfcc":"#));
        assert!(!j.contains("NaN"), "NaN gains must serialize as null: {j}");
    }

    #[test]
    fn loads_edge_list_with_original_labels_and_lcc() {
        // Disconnected file with sparse labels: LCC is the triangle.
        let dir = std::env::temp_dir().join("cfcm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "# comment\n100 200\n200 300\n300 100\n7 8\n").unwrap();
        let a = args(&[
            "--graph",
            path.to_str().unwrap(),
            "--algo",
            "degree",
            "--k",
            "1",
        ]);
        let r = execute(&a).unwrap();
        assert!(r.reduced_to_lcc);
        assert_eq!(r.graph_stats, (3, 3));
        assert!(
            [100u64, 200, 300].contains(&r.nodes[0]),
            "selection must be reported in original labels, got {:?}",
            r.nodes
        );
        // The JSON report must use the same label space everywhere:
        // per-iteration `chosen` ids match the `selection` array.
        let j = r.to_json();
        let expect = format!(r#""selection":[{}]"#, r.nodes[0]);
        assert!(j.contains(&expect), "{j}");
        let expect = format!(r#""chosen":{}"#, r.nodes[0]);
        assert!(
            j.contains(&expect),
            "iteration ids must be re-labeled to input ids: {j}"
        );
    }

    #[test]
    fn unknown_dataset_is_reported() {
        let a = args(&["--dataset", "nope", "--k", "2"]);
        assert!(execute(&a).unwrap_err().contains("unknown dataset"));
    }

    #[test]
    fn dataset_list_renders() {
        let text = render_dataset_list();
        assert!(text.contains("karate"));
        assert!(text.contains("soc-livejournal"));
    }

    #[test]
    fn backend_list_renders_registry_and_auto_policy() {
        let text = render_backend_list();
        for b in sdd::backends() {
            assert!(text.contains(b.name()), "missing {}", b.name());
        }
        assert!(text.contains("auto"));
        assert!(text.contains("iterative"));
        assert!(
            text.contains("lsst-pcg (low-stretch tree"),
            "auto policy row must name the default large-graph backend: {text}"
        );
    }

    #[test]
    fn auto_label_routes_large_graphs_to_lsst() {
        // Above the dense limit every graph routes to lsst-pcg — the label
        // the CLI reports for a 257×257 grid run (n = 66049, k = 16).
        assert_eq!(auto_label(66049, 16), "auto (lsst-pcg)");
        // Small graphs stay dense.
        assert_eq!(auto_label(34, 2), "auto (dense-cholesky)");
        // Straddling the limit names both, in run order.
        let limit = cfcc_linalg::SddBackend::AUTO_DENSE_LIMIT;
        assert_eq!(
            auto_label(limit + 2, 2),
            "auto (lsst-pcg then dense-cholesky)"
        );
    }

    #[test]
    fn explicit_backend_runs_and_is_reported() {
        for backend in [
            "sparse-cg",
            "cg-jacobi",
            "dense-cholesky",
            "tree-pcg",
            "lsst-pcg",
        ] {
            let a = args(&[
                "--dataset",
                "karate",
                "--algo",
                "approx",
                "--k",
                "2",
                "--epsilon",
                "0.3",
                "--backend",
                backend,
                "--evaluate",
            ]);
            let r = execute(&a).unwrap();
            assert_eq!(r.nodes.len(), 2, "{backend}");
            assert_eq!(r.backend, backend);
            assert!(r.render().contains(backend));
            assert!(r.to_json().contains(&format!(r#""backend":"{backend}""#)));
            assert!(r.cfcc.unwrap() > 0.0);
        }
        // Auto reports the resolved name alongside the policy.
        let a = args(&["--dataset", "karate", "--algo", "exact", "--k", "2"]);
        let r = execute(&a).unwrap();
        assert_eq!(r.backend, "auto (dense-cholesky)");
    }

    #[test]
    fn solver_list_renders_every_registered_name() {
        let text = render_solver_list();
        for solver in registry::all() {
            assert!(text.contains(solver.name()), "missing {}", solver.name());
        }
        assert!(text.contains("monte-carlo"));
    }
}
