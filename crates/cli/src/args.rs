//! Hand-rolled argument parsing for the `cfcm` binary.
//!
//! Solver names are not enumerated here: `--algo` accepts any name or
//! alias registered in `cfcc_core::registry`, so new solvers become
//! CLI-selectable the moment they are registered.

use cfcc_core::registry;
use cfcc_linalg::sdd::{self, SddBackend};
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Canonical name of the solver to run (validated against the
    /// registry at parse time).
    pub algo: String,
    /// Group size.
    pub k: usize,
    /// Error parameter ε.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (forest sampling and the blocked dense kernels).
    pub threads: usize,
    /// SDD solver backend for grounded Laplacian systems.
    pub backend: SddBackend,
    /// Edge-list path (mutually exclusive with `dataset`).
    pub graph_path: Option<String>,
    /// Bundled dataset name.
    pub dataset: Option<String>,
    /// Proxy scale factor for bundled datasets.
    pub scale: f64,
    /// Evaluate C(S) of the result (CG-based).
    pub evaluate: bool,
    /// Wall-clock budget for the solve, in seconds (deadline).
    pub timeout_secs: Option<f64>,
    /// Emit the report as a JSON object instead of the text block.
    pub json: bool,
    /// Print the dataset registry and exit.
    pub list_datasets: bool,
    /// Print the solver registry and exit.
    pub list_solvers: bool,
    /// Print the SDD backend registry and exit.
    pub list_backends: bool,
    /// Print usage and exit.
    pub help: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            algo: "schur".into(),
            k: 10,
            epsilon: 0.2,
            seed: 0x5EED,
            threads: 1,
            backend: SddBackend::Auto,
            graph_path: None,
            dataset: None,
            scale: 1.0,
            evaluate: false,
            timeout_secs: None,
            json: false,
            list_datasets: false,
            list_solvers: false,
            list_backends: false,
            help: false,
        }
    }
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
cfcm — current-flow group closeness maximization (Xia & Zhang, ICDE 2025)

USAGE:
    cfcm [OPTIONS] (--graph <edge-list> | --dataset <name>)
    cfcm serve [SERVE-OPTIONS]          resident query daemon (cfcm serve --help)
    cfcm client --addr <a> <request…>   one protocol request (cfcm client --help)

OPTIONS:
    --algo <name>      solver name or alias from the registry
                       (see --list-solvers; default: schur)
    --k <int>          group size (default: 10)
    --epsilon <float>  error parameter in (0,1) (default: 0.2)
    --seed <int>       RNG seed (default: 0x5EED)
    --threads <int>    worker threads: forest sampling + dense kernels (default: 1)
    --backend <name>   SDD solver backend for grounded Laplacian systems
                       (see --list-backends; default: auto — dense below
                       ~1.5k unknowns, sparse CSR/IC(0) above; tree-pcg
                       opts into the spanning-tree preconditioner for
                       meshes/road networks)
    --graph <path>     whitespace edge-list file ('#'/'%' comments ok)
    --dataset <name>   bundled dataset (see --list-datasets)
    --scale <float>    proxy scale for bundled datasets in (0,1] (default: 1.0)
    --timeout <secs>   wall-clock budget; iterative solvers return their
                       partial selection when the budget is exhausted
                       (checked between greedy iterations; single-shot
                       heuristics run to completion)
    --evaluate         also compute C(S) of the selection (CG)
    --json             print the report as a JSON object
    --list-datasets    print the dataset registry and exit
    --list-solvers     print the solver registry and exit
    --list-backends    print the SDD backend registry and exit
    --help             this text
";

/// Parse an argument vector (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliArgs, ParseError> {
    let mut out = CliArgs::default();
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .ok_or_else(|| ParseError(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => {
                let v = need(&mut it, "--algo")?;
                out.algo = registry::by_name(&v)
                    .map(|s| s.name().to_string())
                    .ok_or_else(|| {
                        ParseError(format!(
                            "unknown algorithm '{v}' (available: {})",
                            registry::name_list()
                        ))
                    })?;
            }
            "--k" => {
                let v = need(&mut it, "--k")?;
                out.k = v.parse().map_err(|e| ParseError(format!("--k: {e}")))?;
            }
            "--epsilon" => {
                let v = need(&mut it, "--epsilon")?;
                out.epsilon = v
                    .parse()
                    .map_err(|e| ParseError(format!("--epsilon: {e}")))?;
            }
            "--seed" => {
                let v = need(&mut it, "--seed")?;
                out.seed = parse_u64(&v).map_err(|e| ParseError(format!("--seed: {e}")))?;
            }
            "--threads" => {
                let v = need(&mut it, "--threads")?;
                out.threads = v
                    .parse()
                    .map_err(|e| ParseError(format!("--threads: {e}")))?;
            }
            "--backend" => {
                let v = need(&mut it, "--backend")?;
                out.backend = SddBackend::parse(&v).ok_or_else(|| {
                    ParseError(format!(
                        "unknown backend '{v}' (available: {})",
                        sdd::name_list()
                    ))
                })?;
            }
            "--graph" => out.graph_path = Some(need(&mut it, "--graph")?),
            "--dataset" => out.dataset = Some(need(&mut it, "--dataset")?),
            "--scale" => {
                let v = need(&mut it, "--scale")?;
                out.scale = v.parse().map_err(|e| ParseError(format!("--scale: {e}")))?;
            }
            "--timeout" => {
                let v = need(&mut it, "--timeout")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|e| ParseError(format!("--timeout: {e}")))?;
                // Upper bound keeps Duration::from_secs_f64 from
                // panicking on absurd values (a year exceeds any solve).
                if !secs.is_finite() || secs <= 0.0 || secs > 31_536_000.0 {
                    return Err(ParseError(
                        "--timeout must be a positive number of seconds (max 31536000)".into(),
                    ));
                }
                out.timeout_secs = Some(secs);
            }
            "--evaluate" => out.evaluate = true,
            "--json" => out.json = true,
            "--list-datasets" => out.list_datasets = true,
            "--list-solvers" => out.list_solvers = true,
            "--list-backends" => out.list_backends = true,
            "--help" | "-h" => out.help = true,
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    if !out.help && !out.list_datasets && !out.list_solvers && !out.list_backends {
        match (&out.graph_path, &out.dataset) {
            (None, None) => {
                return Err(ParseError("one of --graph or --dataset is required".into()))
            }
            (Some(_), Some(_)) => {
                return Err(ParseError(
                    "--graph and --dataset are mutually exclusive".into(),
                ))
            }
            _ => {}
        }
        if out.k == 0 {
            return Err(ParseError("--k must be >= 1".into()));
        }
        if !(0.0 < out.epsilon && out.epsilon < 1.0) {
            return Err(ParseError("--epsilon must be in (0,1)".into()));
        }
        if !(0.0 < out.scale && out.scale <= 1.0) {
            return Err(ParseError("--scale must be in (0,1]".into()));
        }
    }
    Ok(out)
}

/// Accept decimal or 0x-prefixed hex seeds.
fn parse_u64(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        s.parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<CliArgs, ParseError> {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_full_invocation() {
        let a = parse(&[
            "--algo",
            "forest",
            "--k",
            "5",
            "--epsilon",
            "0.3",
            "--seed",
            "0xFF",
            "--threads",
            "2",
            "--dataset",
            "karate",
            "--evaluate",
            "--json",
            "--timeout",
            "2.5",
        ])
        .unwrap();
        assert_eq!(a.algo, "forest");
        assert_eq!(a.k, 5);
        assert_eq!(a.epsilon, 0.3);
        assert_eq!(a.seed, 255);
        assert_eq!(a.threads, 2);
        assert_eq!(a.dataset.as_deref(), Some("karate"));
        assert!(a.evaluate);
        assert!(a.json);
        assert_eq!(a.timeout_secs, Some(2.5));
    }

    #[test]
    fn requires_a_graph_source() {
        let err = parse(&["--k", "3"]).unwrap_err();
        assert!(err.0.contains("required"));
    }

    #[test]
    fn rejects_both_sources() {
        let err = parse(&["--graph", "x.txt", "--dataset", "karate"]).unwrap_err();
        assert!(err.0.contains("mutually exclusive"));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--dataset", "karate", "--epsilon", "2.0"]).is_err());
        assert!(parse(&["--dataset", "karate", "--k", "0"]).is_err());
        assert!(parse(&["--dataset", "karate", "--scale", "0"]).is_err());
        assert!(parse(&["--dataset", "karate", "--timeout", "0"]).is_err());
        assert!(parse(&["--dataset", "karate", "--timeout", "nan"]).is_err());
        assert!(parse(&["--dataset", "karate", "--timeout", "1e300"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--algo", "nope", "--dataset", "karate"]).is_err());
        assert!(parse(&["--k"]).is_err(), "missing value");
    }

    #[test]
    fn unknown_algo_error_lists_the_registry() {
        let err = parse(&["--algo", "nope", "--dataset", "karate"]).unwrap_err();
        assert!(err.0.contains("schur"), "error should list names: {err}");
    }

    #[test]
    fn help_and_lists_do_not_require_source() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["--list-datasets"]).unwrap().list_datasets);
        assert!(parse(&["--list-solvers"]).unwrap().list_solvers);
        assert!(parse(&["--list-backends"]).unwrap().list_backends);
    }

    #[test]
    fn backend_names_and_aliases_parse() {
        let a = parse(&["--dataset", "karate", "--backend", "sparse-cg"]).unwrap();
        assert_eq!(a.backend, SddBackend::SparseCg);
        let a = parse(&["--dataset", "karate", "--backend", "dense"]).unwrap();
        assert_eq!(a.backend, SddBackend::DenseCholesky);
        let a = parse(&["--dataset", "karate", "--backend", "tree-pcg"]).unwrap();
        assert_eq!(a.backend, SddBackend::TreePcg);
        let a = parse(&["--dataset", "karate", "--backend", "tree"]).unwrap();
        assert_eq!(a.backend, SddBackend::TreePcg);
        let a = parse(&["--dataset", "karate"]).unwrap();
        assert_eq!(a.backend, SddBackend::Auto);
        let err = parse(&["--dataset", "karate", "--backend", "warp"]).unwrap_err();
        assert!(err.0.contains("sparse-cg"), "lists backends: {err}");
    }

    #[test]
    fn algo_names_and_aliases_canonicalize_through_the_registry() {
        for name in registry::names() {
            let a = parse(&["--algo", name, "--dataset", "karate"]).unwrap();
            assert_eq!(a.algo, name);
        }
        let a = parse(&["--algo", "SCHURCFCM", "--dataset", "karate"]).unwrap();
        assert_eq!(a.algo, "schur");
        let a = parse(&["--algo", "opt", "--dataset", "karate", "--k", "3"]).unwrap();
        assert_eq!(a.algo, "optimum");
    }
}
