//! Hand-rolled argument parsing for the `cfcm` binary.

use std::fmt;

/// Which solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// SchurCFCM (default; the paper's flagship).
    Schur,
    /// ForestCFCM.
    Forest,
    /// ApproxGreedy baseline (PCG-based).
    Approx,
    /// Dense exact greedy.
    Exact,
    /// Exhaustive optimum (tiny graphs).
    Optimum,
    /// Top-k degree heuristic.
    Degree,
    /// Top-k single-node CFCC heuristic.
    TopCfcc,
}

impl Algorithm {
    /// Parse a user-supplied name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s.to_ascii_lowercase().as_str() {
            "schur" | "schurcfcm" => Some(Algorithm::Schur),
            "forest" | "forestcfcm" => Some(Algorithm::Forest),
            "approx" | "approxgreedy" => Some(Algorithm::Approx),
            "exact" => Some(Algorithm::Exact),
            "optimum" | "opt" => Some(Algorithm::Optimum),
            "degree" => Some(Algorithm::Degree),
            "top-cfcc" | "topcfcc" => Some(Algorithm::TopCfcc),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Schur => "schur",
            Algorithm::Forest => "forest",
            Algorithm::Approx => "approx",
            Algorithm::Exact => "exact",
            Algorithm::Optimum => "optimum",
            Algorithm::Degree => "degree",
            Algorithm::TopCfcc => "top-cfcc",
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Solver to run.
    pub algo: Algorithm,
    /// Group size.
    pub k: usize,
    /// Error parameter ε.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Sampling threads.
    pub threads: usize,
    /// Edge-list path (mutually exclusive with `dataset`).
    pub graph_path: Option<String>,
    /// Bundled dataset name.
    pub dataset: Option<String>,
    /// Proxy scale factor for bundled datasets.
    pub scale: f64,
    /// Evaluate C(S) of the result (CG-based).
    pub evaluate: bool,
    /// Print the dataset registry and exit.
    pub list_datasets: bool,
    /// Print usage and exit.
    pub help: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            algo: Algorithm::Schur,
            k: 10,
            epsilon: 0.2,
            seed: 0x5EED,
            threads: 1,
            graph_path: None,
            dataset: None,
            scale: 1.0,
            evaluate: false,
            list_datasets: false,
            help: false,
        }
    }
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
cfcm — current-flow group closeness maximization (Xia & Zhang, ICDE 2025)

USAGE:
    cfcm [OPTIONS] (--graph <edge-list> | --dataset <name>)

OPTIONS:
    --algo <name>      schur | forest | approx | exact | optimum | degree | top-cfcc
                       (default: schur)
    --k <int>          group size (default: 10)
    --epsilon <float>  error parameter in (0,1) (default: 0.2)
    --seed <int>       RNG seed (default: 0x5EED)
    --threads <int>    sampling threads (default: 1)
    --graph <path>     whitespace edge-list file ('#'/'%' comments ok)
    --dataset <name>   bundled dataset (see --list-datasets)
    --scale <float>    proxy scale for bundled datasets in (0,1] (default: 1.0)
    --evaluate         also compute C(S) of the selection (CG)
    --list-datasets    print the dataset registry and exit
    --help             this text
";

/// Parse an argument vector (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliArgs, ParseError> {
    let mut out = CliArgs::default();
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| ParseError(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => {
                let v = need(&mut it, "--algo")?;
                out.algo = Algorithm::parse(&v)
                    .ok_or_else(|| ParseError(format!("unknown algorithm '{v}'")))?;
            }
            "--k" => {
                let v = need(&mut it, "--k")?;
                out.k = v.parse().map_err(|e| ParseError(format!("--k: {e}")))?;
            }
            "--epsilon" => {
                let v = need(&mut it, "--epsilon")?;
                out.epsilon = v.parse().map_err(|e| ParseError(format!("--epsilon: {e}")))?;
            }
            "--seed" => {
                let v = need(&mut it, "--seed")?;
                out.seed = parse_u64(&v).map_err(|e| ParseError(format!("--seed: {e}")))?;
            }
            "--threads" => {
                let v = need(&mut it, "--threads")?;
                out.threads = v.parse().map_err(|e| ParseError(format!("--threads: {e}")))?;
            }
            "--graph" => out.graph_path = Some(need(&mut it, "--graph")?),
            "--dataset" => out.dataset = Some(need(&mut it, "--dataset")?),
            "--scale" => {
                let v = need(&mut it, "--scale")?;
                out.scale = v.parse().map_err(|e| ParseError(format!("--scale: {e}")))?;
            }
            "--evaluate" => out.evaluate = true,
            "--list-datasets" => out.list_datasets = true,
            "--help" | "-h" => out.help = true,
            other => return Err(ParseError(format!("unknown argument '{other}'"))),
        }
    }
    if !out.help && !out.list_datasets {
        match (&out.graph_path, &out.dataset) {
            (None, None) => {
                return Err(ParseError("one of --graph or --dataset is required".into()))
            }
            (Some(_), Some(_)) => {
                return Err(ParseError("--graph and --dataset are mutually exclusive".into()))
            }
            _ => {}
        }
        if out.k == 0 {
            return Err(ParseError("--k must be >= 1".into()));
        }
        if !(0.0 < out.epsilon && out.epsilon < 1.0) {
            return Err(ParseError("--epsilon must be in (0,1)".into()));
        }
        if !(0.0 < out.scale && out.scale <= 1.0) {
            return Err(ParseError("--scale must be in (0,1]".into()));
        }
    }
    Ok(out)
}

/// Accept decimal or 0x-prefixed hex seeds.
fn parse_u64(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        s.parse().map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<CliArgs, ParseError> {
        parse_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_full_invocation() {
        let a = parse(&[
            "--algo", "forest", "--k", "5", "--epsilon", "0.3", "--seed", "0xFF",
            "--threads", "2", "--dataset", "karate", "--evaluate",
        ])
        .unwrap();
        assert_eq!(a.algo, Algorithm::Forest);
        assert_eq!(a.k, 5);
        assert_eq!(a.epsilon, 0.3);
        assert_eq!(a.seed, 255);
        assert_eq!(a.threads, 2);
        assert_eq!(a.dataset.as_deref(), Some("karate"));
        assert!(a.evaluate);
    }

    #[test]
    fn requires_a_graph_source() {
        let err = parse(&["--k", "3"]).unwrap_err();
        assert!(err.0.contains("required"));
    }

    #[test]
    fn rejects_both_sources() {
        let err = parse(&["--graph", "x.txt", "--dataset", "karate"]).unwrap_err();
        assert!(err.0.contains("mutually exclusive"));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--dataset", "karate", "--epsilon", "2.0"]).is_err());
        assert!(parse(&["--dataset", "karate", "--k", "0"]).is_err());
        assert!(parse(&["--dataset", "karate", "--scale", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--algo", "nope", "--dataset", "karate"]).is_err());
        assert!(parse(&["--k"]).is_err(), "missing value");
    }

    #[test]
    fn help_and_list_do_not_require_source() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["--list-datasets"]).unwrap().list_datasets);
    }

    #[test]
    fn algorithm_names_roundtrip() {
        for a in [
            Algorithm::Schur,
            Algorithm::Forest,
            Algorithm::Approx,
            Algorithm::Exact,
            Algorithm::Optimum,
            Algorithm::Degree,
            Algorithm::TopCfcc,
        ] {
            assert_eq!(Algorithm::parse(a.name()), Some(a));
        }
        assert_eq!(Algorithm::parse("SCHURCFCM"), Some(Algorithm::Schur));
    }
}
