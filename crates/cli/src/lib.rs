//! # cfcm-cli
//!
//! Library backing the `cfcm` command-line binary: argument parsing (no
//! external dependency — a deliberate, testable hand-rolled parser), graph
//! loading (edge-list files or bundled datasets), registry-driven solver
//! dispatch (`cfcc_core::registry` — no per-algorithm match anywhere), and
//! report formatting (text or `--json`).
//!
//! ```text
//! cfcm --algo schur --k 20 --epsilon 0.2 --dataset hamsterster
//! cfcm --algo forest --k 10 --graph my_edges.txt --evaluate --json
//! cfcm --list-solvers
//! cfcm --list-datasets
//! ```

#![forbid(unsafe_code)]

pub mod args;
pub mod run;

pub use args::{CliArgs, ParseError};
pub use run::{execute, Report};
