//! # cfcm-cli
//!
//! Library backing the `cfcm` command-line binary: argument parsing (no
//! external dependency — a deliberate, testable hand-rolled parser), graph
//! loading (edge-list files or bundled datasets), algorithm dispatch, and
//! report formatting.
//!
//! ```text
//! cfcm --algo schur --k 20 --epsilon 0.2 --dataset hamsterster
//! cfcm --algo forest --k 10 --graph my_edges.txt --evaluate
//! cfcm --list-datasets
//! ```

pub mod args;
pub mod run;

pub use args::{Algorithm, CliArgs, ParseError};
pub use run::{execute, Report};
