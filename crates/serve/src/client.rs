//! Minimal blocking client for the `cfcc-serve` line protocol — used by
//! the CLI `client` subcommand, the integration tests, and the load
//! bench. One request at a time per connection (the protocol itself is
//! sequential per connection; open more connections for concurrency).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol;

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Send a raw request line without waiting for the response (the
    /// cancellation tests disconnect mid-request through this).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Read response lines until the terminal `ok`/`err` line, feeding
    /// each `progress` line to `on_progress`. Returns the terminal line.
    pub fn read_response(&mut self, mut on_progress: impl FnMut(&str)) -> std::io::Result<String> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            let line = line.trim_end();
            if line.starts_with("ok") || line.starts_with("err") {
                return Ok(line.to_string());
            }
            on_progress(line);
        }
    }

    /// Send one request and collect the full response — progress lines
    /// first, terminal line last.
    pub fn request(&mut self, line: &str) -> std::io::Result<Vec<String>> {
        self.send(line)?;
        let mut lines = Vec::new();
        let terminal = self.read_response(|p| lines.push(p.to_string()))?;
        lines.push(terminal);
        Ok(lines)
    }

    /// Send one request and return just the terminal line (progress
    /// discarded).
    pub fn request_terminal(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.read_response(|_| {})
    }

    /// Send one request, retrying `err code=overloaded` responses with
    /// capped exponential backoff (honoring the server's `retry_after_ms`
    /// hint when it is larger). Retried lines are stamped `retry=<n>` so
    /// the server's `stats` can count observed retries. Returns the full
    /// response of the final attempt — which is still the `overloaded`
    /// error if `max_retries` attempts were all shed.
    pub fn request_with_retry(
        &mut self,
        line: &str,
        max_retries: u32,
    ) -> std::io::Result<Vec<String>> {
        const BACKOFF_CAP: Duration = Duration::from_secs(2);
        let mut backoff = Duration::from_millis(10);
        let mut attempt = 0u32;
        loop {
            let stamped;
            let request = if attempt == 0 {
                line
            } else {
                stamped = format!("{line} retry={attempt}");
                &stamped
            };
            let lines = self.request(request)?;
            let terminal = lines.last().expect("response has a terminal line");
            if attempt >= max_retries || !terminal.starts_with("err code=overloaded") {
                return Ok(lines);
            }
            let hint = protocol::fields(terminal)
                .get("retry_after_ms")
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(Duration::ZERO);
            std::thread::sleep(backoff.max(hint).min(BACKOFF_CAP));
            backoff = (backoff * 2).min(BACKOFF_CAP);
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, Server};

    #[test]
    fn ping_round_trip_and_unknown_verb() {
        let server = Server::bind(ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let mut handle = server.spawn();
        let mut c = Client::connect(addr).unwrap();
        let reply = c.request_terminal("ping").unwrap();
        assert!(reply.starts_with("ok "), "{reply}");
        let reply = c.request_terminal("warp_drive").unwrap();
        assert!(reply.starts_with("err code=unknown_verb"), "{reply}");
        handle.shutdown();
    }
}
