//! The `cfcc-serve` wire protocol: UTF-8 lines over TCP.
//!
//! One request per line — `<verb> key=value key=value …` — answered by one
//! or more response lines. Every response sequence ends with exactly one
//! terminal line starting `ok` or `err`; `topk_greedy` interleaves
//! `progress …` lines before its terminal line. The format is designed to
//! be driven from a shell (`printf … | nc`), the bundled CLI client, or
//! the in-process [`crate::client::Client`], with no JSON parser required
//! on either side (the offline build has no serde; responses embed JSON
//! only as opaque single-line values, e.g. `stats=<json>`).
//!
//! See the repository README for the full request/response reference and
//! error-code table.

use std::collections::HashMap;
use std::io::BufRead;
use std::time::Duration;

use cfcc_graph::Node;
use cfcc_util::json;

/// Hard cap on an inbound request line. Anything longer is drained and
/// answered with `bad_request` instead of buffering without bound (or
/// silently dropping the connection).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Machine-readable error classes carried in `err code=…` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed request line: unknown key, missing field, bad number.
    BadRequest,
    /// Unknown verb.
    UnknownVerb,
    /// `graph=` names a graph that was never loaded.
    UnknownGraph,
    /// A node id is out of range, duplicated, or the grounding is invalid.
    BadNode,
    /// The request's deadline expired before its solve started.
    Deadline,
    /// The request was cancelled (client disconnect mid-run).
    Cancelled,
    /// Admission control shed the request (queue depth or in-flight cap);
    /// the `retry_after_ms` field says when to try again.
    Overloaded,
    /// The solver failed (non-convergence, singular grounding, …).
    Solver,
    /// Filesystem/dataset error while loading a graph.
    Load,
    /// The server is shutting down.
    ShuttingDown,
    /// Internal invariant broke (batcher died, poisoned lock).
    Internal,
}

impl ErrorCode {
    /// The stable wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::UnknownGraph => "unknown_graph",
            ErrorCode::BadNode => "bad_node",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Solver => "solver",
            ErrorCode::Load => "load",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A protocol-level error: code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    pub code: ErrorCode,
    pub msg: String,
    /// Backoff hint on `overloaded` errors: retry no sooner than this.
    pub retry_after_ms: Option<u64>,
}

impl ServeError {
    pub fn new(code: ErrorCode, msg: impl Into<String>) -> Self {
        Self {
            code,
            msg: msg.into(),
            retry_after_ms: None,
        }
    }

    /// Attach the `retry_after_ms` backoff hint (shed responses).
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Render the terminal `err` line (message JSON-escaped so it stays on
    /// one line regardless of content).
    pub fn render(&self) -> String {
        let mut line = format!(
            "err code={} msg={}",
            self.code.as_str(),
            json::escape(&self.msg)
        );
        if let Some(ms) = self.retry_after_ms {
            line.push_str(&format!(" retry_after_ms={ms}"));
        }
        line
    }
}

/// Read one protocol line with a [`MAX_LINE_BYTES`] bound, never trusting
/// the peer to stay reasonable.
///
/// Returns:
/// * `Ok(None)` — clean EOF (close the connection);
/// * `Ok(Some(Ok(line)))` — a complete UTF-8 line, newline stripped;
/// * `Ok(Some(Err(e)))` — an oversized or non-UTF-8 line; the input is
///   resynchronized to the next newline, so the caller should answer `e`
///   and **keep the connection** — a hostile or buggy line must not kill
///   a session's remaining well-formed requests;
/// * `Err(_)` — transport error (close the connection).
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
) -> std::io::Result<Option<Result<String, ServeError>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a partial trailing line is still a line.
            if buf.is_empty() && !oversized {
                return Ok(None);
            }
            break;
        }
        let (take, content, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, i, true),
            None => (chunk.len(), chunk.len(), false),
        };
        if !oversized {
            let keep = content.min(MAX_LINE_BYTES + 1 - buf.len());
            buf.extend_from_slice(&chunk[..keep]);
            if buf.len() > MAX_LINE_BYTES {
                oversized = true;
            }
        }
        reader.consume(take);
        if done {
            break;
        }
    }
    if oversized {
        return Ok(Some(Err(bad(format!(
            "request line exceeds {MAX_LINE_BYTES} bytes"
        )))));
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(Err(bad("request line is not valid UTF-8")))),
    }
}

/// Where `load_graph` gets its edges from.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// Bundled dataset by registry name (`cfcc_datasets::by_name`).
    Dataset { name: String, scale: f64 },
    /// Whitespace edge-list file on the server's filesystem.
    Path(String),
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    LoadGraph {
        name: String,
        source: GraphSource,
    },
    EvalGroup {
        graph: String,
        nodes: Vec<Node>,
        backend: Option<String>,
        probes: Option<usize>,
        seed: Option<u64>,
        deadline: Option<Duration>,
        retry: Option<u64>,
    },
    NodeCentrality {
        graph: String,
        node: Option<Node>,
        top: Option<usize>,
        backend: Option<String>,
        deadline: Option<Duration>,
        retry: Option<u64>,
    },
    TopkGreedy {
        graph: String,
        k: usize,
        algo: String,
        epsilon: Option<f64>,
        seed: Option<u64>,
        backend: Option<String>,
        threads: Option<usize>,
        deadline: Option<Duration>,
        retry: Option<u64>,
    },
    Stats,
    Ping,
    Shutdown,
}

impl Request {
    /// Which retry attempt this request declared itself to be (the client
    /// stamps `retry=<n>` on backoff retries so the server can count
    /// observed retries in `stats`).
    pub fn retry_attempt(&self) -> Option<u64> {
        match self {
            Request::EvalGroup { retry, .. }
            | Request::NodeCentrality { retry, .. }
            | Request::TopkGreedy { retry, .. } => *retry,
            _ => None,
        }
    }
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::new(ErrorCode::BadRequest, msg)
}

/// Split a request/response line into its `key=value` fields (tokens
/// without `=` are skipped). Shared by the parser, the tests, and the
/// bench's response scraping.
pub fn fields(line: &str) -> HashMap<&str, &str> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .collect()
}

struct Kv<'a> {
    map: HashMap<&'a str, &'a str>,
}

impl<'a> Kv<'a> {
    fn parse(rest: &'a [&'a str], allowed: &[&str]) -> Result<Self, ServeError> {
        let mut map = HashMap::new();
        for tok in rest {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| bad(format!("expected key=value, got '{tok}'")))?;
            if !allowed.contains(&k) {
                return Err(bad(format!("unknown key '{k}'")));
            }
            if map.insert(k, v).is_some() {
                return Err(bad(format!("duplicate key '{k}'")));
            }
        }
        Ok(Self { map })
    }

    fn str(&self, key: &str) -> Option<String> {
        self.map.get(key).map(|v| v.to_string())
    }

    fn required(&self, key: &str) -> Result<String, ServeError> {
        self.str(key)
            .ok_or_else(|| bad(format!("missing required key '{key}'")))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ServeError> {
        match self.map.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| bad(format!("bad value '{v}' for '{key}'"))),
        }
    }

    fn required_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, ServeError> {
        self.num(key)?
            .ok_or_else(|| bad(format!("missing required key '{key}'")))
    }

    fn node_list(&self, key: &str) -> Result<Option<Vec<Node>>, ServeError> {
        match self.map.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|t| {
                    t.parse::<Node>()
                        .map_err(|_| bad(format!("bad node id '{t}' in '{key}'")))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }

    fn deadline(&self) -> Result<Option<Duration>, ServeError> {
        Ok(self.num::<u64>("deadline_ms")?.map(Duration::from_millis))
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let (&verb, rest) = tokens
        .split_first()
        .ok_or_else(|| bad("empty request line"))?;
    match verb {
        "load_graph" => {
            let kv = Kv::parse(rest, &["name", "dataset", "scale", "path"])?;
            let name = kv.required("name")?;
            let source = match (kv.str("dataset"), kv.str("path")) {
                (Some(ds), None) => GraphSource::Dataset {
                    name: ds,
                    scale: kv.num::<f64>("scale")?.unwrap_or(1.0),
                },
                (None, Some(path)) => {
                    if kv.map.contains_key("scale") {
                        return Err(bad("'scale' only applies to dataset loads"));
                    }
                    GraphSource::Path(path)
                }
                _ => return Err(bad("exactly one of 'dataset' or 'path' required")),
            };
            Ok(Request::LoadGraph { name, source })
        }
        "eval_group" => {
            let kv = Kv::parse(
                rest,
                &[
                    "graph",
                    "nodes",
                    "backend",
                    "probes",
                    "seed",
                    "deadline_ms",
                    "retry",
                ],
            )?;
            let nodes = kv
                .node_list("nodes")?
                .ok_or_else(|| bad("missing required key 'nodes'"))?;
            if nodes.is_empty() {
                return Err(bad("'nodes' must be non-empty"));
            }
            Ok(Request::EvalGroup {
                graph: kv.required("graph")?,
                nodes,
                backend: kv.str("backend"),
                probes: kv.num("probes")?,
                seed: kv.num("seed")?,
                deadline: kv.deadline()?,
                retry: kv.num("retry")?,
            })
        }
        "node_centrality" => {
            let kv = Kv::parse(
                rest,
                &["graph", "node", "top", "backend", "deadline_ms", "retry"],
            )?;
            if kv.map.contains_key("node") && kv.map.contains_key("top") {
                return Err(bad("'node' and 'top' are mutually exclusive"));
            }
            Ok(Request::NodeCentrality {
                graph: kv.required("graph")?,
                node: kv.num("node")?,
                top: kv.num("top")?,
                backend: kv.str("backend"),
                deadline: kv.deadline()?,
                retry: kv.num("retry")?,
            })
        }
        "topk_greedy" => {
            let kv = Kv::parse(
                rest,
                &[
                    "graph",
                    "k",
                    "algo",
                    "epsilon",
                    "seed",
                    "backend",
                    "threads",
                    "deadline_ms",
                    "retry",
                ],
            )?;
            Ok(Request::TopkGreedy {
                graph: kv.required("graph")?,
                k: kv.required_num("k")?,
                algo: kv.str("algo").unwrap_or_else(|| "schur".into()),
                epsilon: kv.num("epsilon")?,
                seed: kv.num("seed")?,
                backend: kv.str("backend"),
                threads: kv.num("threads")?,
                deadline: kv.deadline()?,
                retry: kv.num("retry")?,
            })
        }
        "stats" => {
            Kv::parse(rest, &[])?;
            Ok(Request::Stats)
        }
        "ping" => {
            Kv::parse(rest, &[])?;
            Ok(Request::Ping)
        }
        "shutdown" => {
            Kv::parse(rest, &[])?;
            Ok(Request::Shutdown)
        }
        other => Err(ServeError::new(
            ErrorCode::UnknownVerb,
            format!("unknown verb '{other}'"),
        )),
    }
}

/// Builder for `ok …` / `progress …` lines.
#[derive(Debug, Default)]
pub struct Line {
    parts: Vec<String>,
}

impl Line {
    /// Start a terminal success line.
    pub fn ok() -> Self {
        Self {
            parts: vec!["ok".into()],
        }
    }

    /// Start a streaming progress line.
    pub fn progress() -> Self {
        Self {
            parts: vec!["progress".into()],
        }
    }

    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.parts.push(format!("{key}={value}"));
        self
    }

    /// A float field rendered with full round-trip precision.
    pub fn float(self, key: &str, value: f64) -> Self {
        self.field(key, format_args!("{value:.17e}"))
    }

    /// A comma-separated list field.
    pub fn list(self, key: &str, items: impl IntoIterator<Item = impl std::fmt::Display>) -> Self {
        let joined = items
            .into_iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.field(key, joined)
    }

    pub fn render(&self) -> String {
        self.parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_request_surface() {
        assert_eq!(
            parse_request("load_graph name=g dataset=karate").unwrap(),
            Request::LoadGraph {
                name: "g".into(),
                source: GraphSource::Dataset {
                    name: "karate".into(),
                    scale: 1.0
                }
            }
        );
        assert_eq!(
            parse_request("load_graph name=g path=/tmp/edges.txt").unwrap(),
            Request::LoadGraph {
                name: "g".into(),
                source: GraphSource::Path("/tmp/edges.txt".into())
            }
        );
        let r = parse_request("eval_group graph=g nodes=1,2,3 deadline_ms=250").unwrap();
        match r {
            Request::EvalGroup {
                nodes, deadline, ..
            } => {
                assert_eq!(nodes, vec![1, 2, 3]);
                assert_eq!(deadline, Some(Duration::from_millis(250)));
            }
            other => panic!("{other:?}"),
        }
        let r = parse_request("topk_greedy graph=g k=4 epsilon=0.3 seed=7").unwrap();
        match r {
            Request::TopkGreedy { k, algo, .. } => {
                assert_eq!(k, 4);
                assert_eq!(algo, "schur");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "warp_drive",
            "eval_group graph=g",                   // missing nodes
            "eval_group graph=g nodes=",            // empty node list
            "eval_group graph=g nodes=1,x",         // bad node id
            "eval_group nodes=1",                   // missing graph
            "eval_group graph=g nodes=1 bogus=1",   // unknown key
            "eval_group graph=g nodes=1 nodes=2",   // duplicate key
            "load_graph name=g",                    // no source
            "load_graph name=g dataset=a path=b",   // two sources
            "load_graph name=g path=p scale=2",     // scale without dataset
            "node_centrality graph=g node=1 top=2", // exclusive keys
            "topk_greedy graph=g",                  // missing k
            "topk_greedy graph=g k=x",              // bad k
            "stats verbose=1",                      // stats takes no keys
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                matches!(err.code, ErrorCode::BadRequest | ErrorCode::UnknownVerb),
                "{line}: {err:?}"
            );
        }
    }

    #[test]
    fn lines_render_and_scrape_round_trip() {
        let line = Line::ok()
            .field("cache", "hit")
            .float("cfcc", 1.25)
            .list("nodes", [3, 1, 4])
            .render();
        assert!(line.starts_with("ok "));
        let f = fields(&line);
        assert_eq!(f["cache"], "hit");
        assert_eq!(f["nodes"], "3,1,4");
        assert_eq!(f["cfcc"].parse::<f64>().unwrap(), 1.25);
    }

    #[test]
    fn error_lines_stay_single_line() {
        let e = ServeError::new(ErrorCode::Solver, "multi\nline \"quoted\"");
        let r = e.render();
        assert_eq!(r.lines().count(), 1);
        assert!(r.starts_with("err code=solver msg="));
    }

    #[test]
    fn overloaded_errors_carry_the_backoff_hint() {
        let e = ServeError::new(ErrorCode::Overloaded, "at capacity").with_retry_after(25);
        let r = e.render();
        assert!(r.starts_with("err code=overloaded "), "{r}");
        assert_eq!(fields(&r)["retry_after_ms"], "25");
    }

    #[test]
    fn bounded_reader_survives_oversized_and_non_utf8_lines() {
        use std::io::Cursor;
        let mut input = Vec::new();
        input.extend_from_slice(b"ping\n");
        input.extend_from_slice(&vec![b'a'; MAX_LINE_BYTES + 100]);
        input.push(b'\n');
        input.extend_from_slice(&[0xFF, 0xFE, b'x', b'\n']);
        input.extend_from_slice(b"stats\r\n");
        let mut r = Cursor::new(input);

        let line = read_line_bounded(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(line, "ping");
        let err = read_line_bounded(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.msg.contains("exceeds"), "{}", err.msg);
        // The oversized line was drained to its newline: the stream is
        // resynchronized and the next reads see the following lines.
        let err = read_line_bounded(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.msg.contains("UTF-8"), "{}", err.msg);
        let line = read_line_bounded(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(line, "stats");
        assert!(read_line_bounded(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn exact_boundary_line_is_accepted() {
        use std::io::Cursor;
        let mut input = vec![b'a'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut r = Cursor::new(input);
        let line = read_line_bounded(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(line.len(), MAX_LINE_BYTES);
    }

    #[test]
    fn malformed_input_loop_never_panics() {
        // Seeded LCG fuzz loop over the parser and the bounded reader:
        // whatever bytes arrive, the worst outcome is a typed error.
        let verbs = [
            "eval_group",
            "topk_greedy",
            "node_centrality",
            "load_graph",
            "stats",
            "ping",
            "shutdown",
            "",
        ];
        let frags = [
            "graph=g",
            "nodes=1,2",
            "nodes=,",
            "k=",
            "k=-3",
            "=v",
            "a=b=c",
            "deadline_ms=x",
            "seed=18446744073709551616",
            "retry=1",
            "probes=9e9",
            "\u{7f}",
            "käse=1",
            "node=✓",
        ];
        let mut s: u64 = 0xC0FFEE;
        let mut rand = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for _ in 0..2000 {
            let mut line = verbs[rand() % verbs.len()].to_string();
            for _ in 0..(rand() % 5) {
                line.push(' ');
                line.push_str(frags[rand() % frags.len()]);
            }
            // Must return, never panic; err or ok are both acceptable.
            let _ = parse_request(&line);
            let mut bytes = line.into_bytes();
            bytes.push(b'\n');
            let mut r = std::io::Cursor::new(bytes);
            while let Ok(Some(_)) = read_line_bounded(&mut r) {}
        }
    }
}
