//! # cfcc-serve
//!
//! A resident CFCC query daemon: the factor-once/solve-many economics of
//! the paper's solver line (Xia & Zhang, ICDE 2025), turned into a
//! long-lived service. Everything upstream in this repo is one-shot —
//! every CLI invocation re-reads the graph, re-factors the Laplacian, and
//! exits. The daemon keeps graphs resident across requests
//! ([`registry::GraphRegistry`], epoch-versioned), caches factors in an
//! LRU keyed by `(graph, epoch, grounding set, backend)`
//! ([`cache::FactorCache`]), and **fuses concurrent independent queries
//! that share a factor into one blocked `solve_mat` call**
//! ([`batch::BatchQueue`]) — the shape the blocked multi-RHS PCG from
//! PR 4 was built for.
//!
//! The wire protocol is hand-rolled UTF-8 lines over `std::net` TCP (the
//! build environment is offline — no tokio/hyper): blocking accept
//! threads parse requests and hand solve work to the batcher, which runs
//! groups through `cfcc_linalg::pool`. See [`protocol`] for the line
//! format and the repository README for the full reference.
//!
//! ```no_run
//! use cfcc_serve::{client::Client, ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn();
//! let mut c = Client::connect(addr).unwrap();
//! c.request("load_graph name=k dataset=karate").unwrap();
//! let reply = c.request("eval_group graph=k nodes=0,33").unwrap();
//! assert!(reply.last().unwrap().starts_with("ok "));
//! drop(handle); // graceful shutdown on drop
//! ```

#![forbid(unsafe_code)]
// Production serve code must not panic on an absent value or a poisoned
// lock: locks recover through `poison::lock_recover`, everything else
// becomes a protocol error. Unit tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod batch;
pub mod cache;
pub mod cli;
pub mod client;
pub mod fault;
pub mod metrics;
pub mod poison;
pub mod protocol;
pub mod registry;

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cfcc_core::cfcc::{group_mask, node_centrality_from_factor, node_centrality_ground};
use cfcc_core::engine::GreedyWorkspace;
use cfcc_core::{CancelToken, CfcmError, CfcmParams, SolveSession};
use cfcc_graph::Node;
use cfcc_linalg::sdd::{self, SddBackend, SddOptions};
use cfcc_linalg::{DenseMatrix, SddFactor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use batch::{BatchCtx, BatchQueue, SolveJob};
use cache::{CacheEntry, FactorCache, FactorKey};
use fault::FaultPlan;
use metrics::Metrics;
use protocol::{ErrorCode, GraphSource, Line, Request, ServeError};
use registry::{GraphRegistry, ResidentGraph};

/// Daemon tuning. `Default` is sized for tests and modest services; see
/// the README ops note for sizing guidance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Fuse same-factor jobs (true) or solve each alone (false).
    pub batching: bool,
    /// Collection window after the first queued job before the batcher
    /// executes — the latency the daemon trades for fusion at low load
    /// (under saturation the queue refills by itself and the window is
    /// mostly irrelevant).
    pub batch_window: Duration,
    /// Cap on fused columns per blocked solve.
    pub max_batch_cols: usize,
    /// LRU capacity of the factor cache, in factors. A dense factor is
    /// `O(n²)` memory, iterative ones `O(n + m)` — size accordingly.
    pub cache_capacity: usize,
    /// Default Hutchinson probes per `eval_group` on iterative backends
    /// (requests may override with `probes=`).
    pub probes: usize,
    /// Worker-pool threads per solve.
    pub threads: usize,
    /// Relative residual target for iterative solves.
    pub rel_tol: f64,
    /// Admission control: shed solve requests once this many jobs wait in
    /// the batch queue (0 = unbounded).
    pub max_queue_depth: usize,
    /// Admission control: shed solve requests once this many requests are
    /// in flight (0 = unbounded). `ping`/`stats`/`shutdown`/`load_graph`
    /// are never shed — health checks must work *especially* under
    /// overload.
    pub max_inflight: usize,
    /// Graceful shutdown: how long to wait for in-flight requests before
    /// force-cancelling their solves through the stop hook.
    pub drain_timeout: Duration,
    /// Fault-injection plan for chaos tests; inert by default (a few
    /// relaxed atomic loads per solve).
    pub fault: Arc<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            batching: true,
            batch_window: Duration::from_millis(2),
            max_batch_cols: 64,
            cache_capacity: 32,
            probes: 16,
            threads: 1,
            rel_tol: 1e-8,
            max_queue_depth: 1024,
            max_inflight: 256,
            drain_timeout: Duration::from_secs(5),
            fault: FaultPlan::none(),
        }
    }
}

/// Everything the connection threads and the batcher share.
struct ServerState {
    cfg: ServeConfig,
    addr: SocketAddr,
    registry: GraphRegistry,
    cache: FactorCache,
    queue: BatchQueue,
    metrics: Metrics,
    shutdown: AtomicBool,
    started: Instant,
    /// Request sequence number — also the default per-request seed, so
    /// concurrent `eval_group`s without explicit seeds draw independent
    /// probe blocks.
    seq: AtomicU64,
    /// Recycled greedy workspaces for `topk_greedy` — sketches persist
    /// across requests and are revalidated by graph fingerprint, so
    /// repeat top-k queries on the same graph skip the re-sketch
    /// (the session-reuse path added alongside this crate).
    workspaces: Mutex<Vec<GreedyWorkspace>>,
    /// Cancel tokens of in-flight `topk_greedy` runs, keyed by request
    /// sequence number — fired when a shutdown drain times out so the
    /// greedy loops return their partial selections instead of holding
    /// the drain hostage.
    inflight_cancels: Mutex<HashMap<u64, CancelToken>>,
}

const WORKSPACE_POOL_CAP: usize = 8;

impl ServerState {
    fn pop_workspace(&self) -> GreedyWorkspace {
        // Pooled workspaces stay warm-start consistent even across aborted
        // runs, and a poisoning panic never leaves one mid-mutation in the
        // pool (it is only pushed back after a completed run) — recover.
        self.workspaces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn push_workspace(&self, ws: GreedyWorkspace) {
        let mut pool = self
            .workspaces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.len() < WORKSPACE_POOL_CAP {
            pool.push(ws);
        }
    }

    /// Flip into shutdown and drain gracefully: stop accepting, let
    /// in-flight requests finish, and only then stop the batcher. `grace`
    /// is how many `active` requests belong to the caller itself (1 when
    /// the `shutdown` verb drains from its own connection thread) and are
    /// therefore not waited on.
    ///
    /// If the drain outlives [`ServeConfig::drain_timeout`], in-flight
    /// work is interrupted through the cooperative stop hooks: greedy runs
    /// return partial selections, batched solves answer `shutting_down` —
    /// nothing blocks shutdown indefinitely.
    fn begin_shutdown(&self, grace: i64) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept loop with a dummy connection; from
        // here on no new requests are admitted.
        let _ = TcpStream::connect(self.addr);
        let drain_until = Instant::now() + self.cfg.drain_timeout;
        while self.metrics.active.load(Ordering::Relaxed) > grace && Instant::now() < drain_until {
            std::thread::sleep(Duration::from_millis(5));
        }
        if self.metrics.active.load(Ordering::Relaxed) > grace {
            // Drain timed out: force the stragglers out through their
            // cooperative cancellation seams.
            for (_, cancel) in self
                .inflight_cancels
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
            {
                cancel.cancel();
            }
            self.queue.cancel_inflight();
            let hard_until = Instant::now() + Duration::from_secs(2);
            while self.metrics.active.load(Ordering::Relaxed) > grace && Instant::now() < hard_until
            {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        self.queue.stop();
    }

    fn sdd_options(&self) -> SddOptions {
        SddOptions {
            rel_tol: self.cfg.rel_tol,
            max_iter: 50_000,
            threads: self.cfg.threads,
            // Factors are cached and shared: they carry no stop hook of
            // their own. Per-request deadlines are installed (and cleared)
            // around each solve via `SddFactor::set_stop`.
            ..SddOptions::default()
        }
    }

    /// Admission control for the solve verbs: refuse with `overloaded` (+
    /// a backoff hint) rather than queueing without bound. The caller's
    /// own request is already counted in `active`.
    fn admit(&self) -> Result<(), ServeError> {
        let overloaded = (self.cfg.max_inflight > 0
            && self.metrics.active.load(Ordering::Relaxed) > self.cfg.max_inflight as i64)
            || (self.cfg.max_queue_depth > 0 && self.queue.depth() >= self.cfg.max_queue_depth);
        if !overloaded {
            return Ok(());
        }
        self.metrics.shed.fetch_add(1, Ordering::Relaxed);
        let retry_ms = (self.cfg.batch_window.as_millis() as u64 * 2).max(25);
        Err(
            ServeError::new(ErrorCode::Overloaded, "server at capacity, retry later")
                .with_retry_after(retry_ms),
        )
    }
}

/// A bound (not yet serving) daemon. Load graphs programmatically through
/// [`Server::registry`] before [`Server::spawn`]/[`Server::run`] if you
/// want them resident from the first request (benches, examples).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the listener and assemble the shared state.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let queue = BatchQueue::new(cfg.batching, cfg.batch_window, cfg.max_batch_cols);
        let state = Arc::new(ServerState {
            registry: GraphRegistry::new(),
            cache: FactorCache::new(cfg.cache_capacity),
            queue,
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            seq: AtomicU64::new(1),
            workspaces: Mutex::new(Vec::new()),
            inflight_cancels: Mutex::new(HashMap::new()),
            addr,
            cfg,
        });
        Ok(Self { listener, state })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The resident graph registry (programmatic graph loading).
    pub fn registry(&self) -> &GraphRegistry {
        &self.state.registry
    }

    /// Serve in background threads; the returned handle shuts the daemon
    /// down on [`ServerHandle::shutdown`] or drop.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.state.addr;
        let batcher_state = Arc::clone(&self.state);
        let batcher = std::thread::spawn(move || {
            batcher_state.queue.run_batcher(&BatchCtx {
                metrics: &batcher_state.metrics,
                cache: &batcher_state.cache,
                fault: Arc::clone(&batcher_state.cfg.fault),
            });
        });
        let accept_state = Arc::clone(&self.state);
        let listener = self.listener;
        let accept = std::thread::spawn(move || accept_loop(accept_state, listener));
        ServerHandle {
            addr,
            state: self.state,
            accept: Some(accept),
            batcher: Some(batcher),
        }
    }

    /// Serve on the current thread until a `shutdown` request arrives
    /// (the CLI `serve` subcommand's path).
    pub fn run(self) {
        let batcher_state = Arc::clone(&self.state);
        let batcher = std::thread::spawn(move || {
            batcher_state.queue.run_batcher(&BatchCtx {
                metrics: &batcher_state.metrics,
                cache: &batcher_state.cache,
                fault: Arc::clone(&batcher_state.cfg.fault),
            });
        });
        accept_loop(Arc::clone(&self.state), self.listener);
        let _ = batcher.join();
    }
}

/// Handle over a daemon serving in background threads.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently in flight (accepted, not yet answered).
    pub fn active_requests(&self) -> i64 {
        self.state.metrics.active.load(Ordering::Relaxed)
    }

    /// Requests cancelled by client disconnect so far.
    pub fn cancelled_requests(&self) -> u64 {
        self.state.metrics.cancelled.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain in-flight requests (up to the configured
    /// drain timeout, after which they are cooperatively cancelled), stop
    /// the batcher, and join both threads.
    pub fn shutdown(&mut self) {
        self.state.begin_shutdown(0);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(state: Arc<ServerState>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve_connection(state, stream));
    }
}

fn serve_connection(state: Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match protocol::read_line_bounded(&mut reader) {
            Ok(Some(Ok(line))) => line,
            // Oversized or non-UTF-8 line: answer `bad_request` and keep
            // the connection — hostile input must not cost the session.
            Ok(Some(Err(e))) => {
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                if writeln!(writer, "{}", e.render())
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    break;
                }
                continue;
            }
            // Clean EOF or transport error: the client is gone.
            Ok(None) | Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            let e = ServeError::new(ErrorCode::ShuttingDown, "server shutting down");
            let _ = writeln!(writer, "{}", e.render());
            break;
        }
        state.metrics.active.fetch_add(1, Ordering::Relaxed);
        // Panic isolation: a handler that blows up answers `internal` and
        // the connection (and daemon) keep serving.
        let caught = catch_unwind(AssertUnwindSafe(|| dispatch(&state, line, &mut writer)));
        let (out, stop) = caught.unwrap_or_else(|_| {
            state.metrics.panics.fetch_add(1, Ordering::Relaxed);
            (
                Err(ServeError::new(
                    ErrorCode::Internal,
                    "request handler panicked — see server log",
                )),
                false,
            )
        });
        let rendered = match &out {
            Ok(l) => l.clone(),
            Err(e) => {
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                e.render()
            }
        };
        state.metrics.active.fetch_sub(1, Ordering::Relaxed);
        if state.cfg.fault.should_drop_reply() {
            // Injected mid-stream connection drop (chaos tests).
            break;
        }
        // An empty terminal means the handler already delivered its reply
        // inline (the `shutdown` ack races process exit otherwise).
        let wrote = if rendered.is_empty() {
            Ok(())
        } else {
            writeln!(writer, "{rendered}").and_then(|_| writer.flush())
        };
        if wrote.is_err() || stop {
            break;
        }
    }
}

/// Parse and execute one request. Returns the terminal line (progress
/// lines are written directly by the handler) and whether the connection
/// should close afterwards.
fn dispatch(
    state: &Arc<ServerState>,
    line: &str,
    writer: &mut TcpStream,
) -> (Result<String, ServeError>, bool) {
    let req = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (Err(e), false),
    };
    if req.retry_attempt().is_some() {
        state
            .metrics
            .retries_observed
            .fetch_add(1, Ordering::Relaxed);
    }
    match req {
        Request::Ping => (Ok(Line::ok().field("pong", 1).render()), false),
        Request::Stats => (Ok(handle_stats(state)), false),
        Request::Shutdown => {
            // Acknowledge before draining: once `begin_shutdown` returns,
            // the accept loop — and under `cfcm serve`, the whole process —
            // is free to exit, which can beat this thread's reply to the
            // socket. An empty terminal tells the connection loop the
            // reply is already delivered.
            let ack = Line::ok().field("shutdown", 1).render();
            let _ = writeln!(writer, "{ack}").and_then(|_| writer.flush());
            // Drain from this connection thread: our own request is the
            // one unit of `active` grace.
            state.begin_shutdown(1);
            (Ok(String::new()), true)
        }
        Request::LoadGraph { name, source } => {
            state.metrics.load_graph.fetch_add(1, Ordering::Relaxed);
            (handle_load_graph(state, &name, &source), false)
        }
        Request::EvalGroup {
            graph,
            nodes,
            backend,
            probes,
            seed,
            deadline,
            retry: _,
        } => {
            state.metrics.eval_group.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = state.admit() {
                return (Err(e), false);
            }
            (
                handle_eval_group(
                    state,
                    &graph,
                    &nodes,
                    backend.as_deref(),
                    probes,
                    seed,
                    deadline,
                ),
                false,
            )
        }
        Request::NodeCentrality {
            graph,
            node,
            top,
            backend,
            deadline,
            retry: _,
        } => {
            state
                .metrics
                .node_centrality
                .fetch_add(1, Ordering::Relaxed);
            if let Err(e) = state.admit() {
                return (Err(e), false);
            }
            (
                handle_node_centrality(state, &graph, node, top, backend.as_deref(), deadline),
                false,
            )
        }
        Request::TopkGreedy {
            graph,
            k,
            algo,
            epsilon,
            seed,
            backend,
            threads,
            deadline,
            retry: _,
        } => {
            state.metrics.topk_greedy.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = state.admit() {
                return (Err(e), false);
            }
            (
                handle_topk_greedy(
                    state,
                    writer,
                    &graph,
                    k,
                    &algo,
                    epsilon,
                    seed,
                    backend.as_deref(),
                    threads,
                    deadline,
                ),
                false,
            )
        }
    }
}

fn handle_stats(state: &ServerState) -> String {
    let json = state.metrics.to_json(
        &state.cache.counters(),
        state.queue.depth(),
        state.started.elapsed().as_secs_f64(),
        &state.registry.snapshot(),
    );
    Line::ok().field("stats", json).render()
}

fn handle_load_graph(
    state: &ServerState,
    name: &str,
    source: &GraphSource,
) -> Result<String, ServeError> {
    let entry = state.registry.load(name, source)?;
    // Factors of older epochs can never be served again; drop them now
    // rather than waiting for LRU aging.
    state.cache.purge_stale(name, entry.epoch);
    Ok(Line::ok()
        .field("graph", name)
        .field("epoch", entry.epoch)
        .field("n", entry.graph.num_nodes())
        .field("m", entry.graph.num_edges())
        .field("reduced", entry.reduced)
        .render())
}

fn parse_backend(name: Option<&str>) -> Result<SddBackend, ServeError> {
    match name {
        None => Ok(SddBackend::Auto),
        Some(s) => SddBackend::parse(s).ok_or_else(|| {
            ServeError::new(
                ErrorCode::BadRequest,
                format!("unknown backend '{s}' (see --list-backends)"),
            )
        }),
    }
}

fn check_deadline(deadline: Option<Instant>) -> Result<(), ServeError> {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(ServeError::new(
            ErrorCode::Deadline,
            "deadline expired before solve",
        ));
    }
    Ok(())
}

fn map_cfcm_error(e: CfcmError) -> ServeError {
    let code = match &e {
        CfcmError::InvalidK { .. } | CfcmError::InvalidParameter(_) => ErrorCode::BadRequest,
        CfcmError::UnknownSolver(_) | CfcmError::Unsupported(_) => ErrorCode::BadRequest,
        // Mid-solve interruptions that escaped with nothing partial to
        // return keep their identity on the wire.
        CfcmError::Interrupted(cfcc_linalg::StopCause::DeadlineExceeded) => ErrorCode::Deadline,
        CfcmError::Interrupted(cfcc_linalg::StopCause::Cancelled) => ErrorCode::Cancelled,
        _ => ErrorCode::Solver,
    };
    ServeError::new(code, e.to_string())
}

/// Build the factor for `key` if the entry is still empty. A failed build
/// removes the entry so later requests retry instead of hitting a
/// permanently empty slot; a *panicking* build (injected fault, or a real
/// bug in a backend) is caught the same way — the requester gets
/// `internal`, the daemon keeps serving.
fn ensure_factor(
    state: &ServerState,
    entry: &Arc<CacheEntry>,
    key: &FactorKey,
    resident: &ResidentGraph,
    mask: &[bool],
    backend: SddBackend,
) -> Result<(), ServeError> {
    let mut slot = entry.factor();
    if slot.is_none() {
        let built = catch_unwind(AssertUnwindSafe(|| {
            state.cfg.fault.on_factor_build();
            sdd::factor_owned(&resident.graph, mask, backend, &state.sdd_options())
        }));
        match built {
            Ok(Ok(f)) => *slot = Some(f),
            Ok(Err(e)) => {
                drop(slot);
                state.cache.remove(key);
                return Err(ServeError::new(ErrorCode::Solver, e.to_string()));
            }
            Err(_) => {
                drop(slot);
                state.cache.remove(key);
                state.metrics.panics.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::new(
                    ErrorCode::Internal,
                    "factorization panicked; entry evicted — retry the request",
                ));
            }
        }
    }
    Ok(())
}

fn handle_eval_group(
    state: &Arc<ServerState>,
    graph: &str,
    nodes: &[Node],
    backend: Option<&str>,
    probes: Option<usize>,
    seed: Option<u64>,
    deadline: Option<Duration>,
) -> Result<String, ServeError> {
    let t0 = Instant::now();
    let deadline = deadline.map(|d| t0 + d);
    let resident = state.registry.get(graph)?;
    let g = &resident.graph;
    let n = g.num_nodes();
    let mask =
        group_mask(g, nodes).map_err(|e| ServeError::new(ErrorCode::BadNode, e.to_string()))?;
    let kept = n - nodes.len();
    if kept == 0 {
        return Err(ServeError::new(
            ErrorCode::BadNode,
            "grounding every node leaves nothing to solve",
        ));
    }
    check_deadline(deadline)?;
    let backend = parse_backend(backend)?;
    let solver_name = backend.resolve_for_graph(g, kept).name();
    let mut grounding = nodes.to_vec();
    grounding.sort_unstable();
    let key = FactorKey {
        graph: graph.to_string(),
        epoch: resident.epoch,
        grounding,
        backend: solver_name,
    };
    let (entry, hit) = state.cache.get_or_insert(&key);
    ensure_factor(state, &entry, &key, &resident, &mask, backend)?;

    let (trace, method, batch_width, batch_jobs) = if solver_name == "dense-cholesky" {
        // Direct backend: the exact trace reads off the factor; memoized
        // per entry so repeats are pure cache hits.
        let trace = entry.trace_or_compute(|| {
            let mut slot = entry.factor();
            let factor = slot
                .as_mut()
                .ok_or_else(|| ServeError::new(ErrorCode::Internal, "factor missing"))?;
            let before = factor.stats();
            let t = factor
                .trace_inverse()
                .map_err(|e| ServeError::new(ErrorCode::Solver, e.to_string()))?;
            state.metrics.absorb_solve_delta(before, factor.stats());
            Ok::<f64, ServeError>(t)
        })?;
        (trace, "exact", 0, 0)
    } else {
        // Iterative backend: Hutchinson probe block through the batcher,
        // fused with whatever concurrent requests share this factor.
        let p = probes.unwrap_or(state.cfg.probes).clamp(1, 512);
        let seed = seed.unwrap_or_else(|| state.seq.fetch_add(1, Ordering::Relaxed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F00D);
        let mut rhs = DenseMatrix::zeros(kept, p);
        for i in 0..kept {
            for j in 0..p {
                rhs.set(i, j, if rng.gen::<bool>() { 1.0 } else { -1.0 });
            }
        }
        let (tx, rx) = mpsc::channel();
        state.queue.submit(SolveJob {
            key,
            entry: Arc::clone(&entry),
            rhs: rhs.clone(),
            deadline,
            reply: tx,
        });
        let outcome = rx
            .recv()
            .map_err(|_| ServeError::new(ErrorCode::Internal, "batcher unavailable"))??;
        let mut est = 0.0;
        for j in 0..p {
            let mut dot = 0.0;
            for i in 0..kept {
                dot += rhs.get(i, j) * outcome.x.get(i, j);
            }
            est += dot;
        }
        est /= p as f64;
        (est, "hutchinson", outcome.batch_width, outcome.batch_jobs)
    };

    Ok(Line::ok()
        .float("cfcc", n as f64 / trace)
        .float("trace", trace)
        .field("method", method)
        .field("cache", if hit { "hit" } else { "miss" })
        .field("batch", batch_width)
        .field("batch_jobs", batch_jobs)
        .float("ms", t0.elapsed().as_secs_f64() * 1e3)
        .render())
}

fn handle_node_centrality(
    state: &Arc<ServerState>,
    graph: &str,
    node: Option<Node>,
    top: Option<usize>,
    backend: Option<&str>,
    deadline: Option<Duration>,
) -> Result<String, ServeError> {
    let t0 = Instant::now();
    let deadline = deadline.map(|d| t0 + d);
    let resident = state.registry.get(graph)?;
    let g = &resident.graph;
    let n = g.num_nodes();
    if let Some(u) = node {
        if u as usize >= n {
            return Err(ServeError::new(
                ErrorCode::BadNode,
                format!("node {u} out of range (n = {n})"),
            ));
        }
    }
    check_deadline(deadline)?;
    let backend = parse_backend(backend)?;
    let v = node_centrality_ground(g);
    let mut mask = vec![false; n];
    mask[v as usize] = true;
    let solver_name = backend.resolve_for_graph(g, n - 1).name();
    let key = FactorKey {
        graph: graph.to_string(),
        epoch: resident.epoch,
        grounding: vec![v],
        backend: solver_name,
    };
    let (entry, hit) = state.cache.get_or_insert(&key);
    ensure_factor(state, &entry, &key, &resident, &mask, backend)?;
    // Deterministic given the factor, so memoized per entry: repeated
    // requests collapse to a cache read. (`diag_inverse` on iterative
    // backends is n solves — not something to redo per request.)
    let values = entry.centrality_or_compute(|| {
        let mut slot = entry.factor();
        let factor = slot
            .as_mut()
            .ok_or_else(|| ServeError::new(ErrorCode::Internal, "factor missing"))?;
        let before = factor.stats();
        let c = node_centrality_from_factor(n, factor).map_err(map_cfcm_error)?;
        state.metrics.absorb_solve_delta(before, factor.stats());
        Ok::<Vec<f64>, ServeError>(c)
    })?;

    let cache = if hit { "hit" } else { "miss" };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let line = match (node, top) {
        (Some(u), _) => Line::ok()
            .field("node", u)
            .float("centrality", values[u as usize]),
        (None, Some(k)) => {
            let k = k.min(n);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                values[b]
                    .partial_cmp(&values[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.truncate(k);
            Line::ok()
                .field("top", k)
                .list("nodes", order.iter().map(|&u| u as Node))
                .list("values", order.iter().map(|&u| values[u]))
        }
        (None, None) => Line::ok().field("n", n).list("values", values.iter()),
    };
    Ok(line.field("cache", cache).float("ms", ms).render())
}

#[allow(clippy::too_many_arguments)]
fn handle_topk_greedy(
    state: &Arc<ServerState>,
    writer: &mut TcpStream,
    graph: &str,
    k: usize,
    algo: &str,
    epsilon: Option<f64>,
    seed: Option<u64>,
    backend: Option<&str>,
    threads: Option<usize>,
    deadline: Option<Duration>,
) -> Result<String, ServeError> {
    let t0 = Instant::now();
    let deadline = deadline.map(|d| t0 + d);
    let resident = state.registry.get(graph)?;
    let g = Arc::clone(&resident.graph);
    check_deadline(deadline)?;
    let backend = parse_backend(backend)?;
    let mut params = CfcmParams::default();
    if let Some(e) = epsilon {
        params.epsilon = e;
    }
    params.seed = seed.unwrap_or_else(|| state.seq.fetch_add(1, Ordering::Relaxed));
    params.threads = threads.unwrap_or(state.cfg.threads).max(1);
    params.backend = backend;

    // Stream per-round progress straight to the socket; a failed write
    // means the client is gone — cancel the run so the slot frees instead
    // of grinding through the remaining rounds for nobody.
    let cancel = CancelToken::new();
    let sink_cancel = cancel.clone();
    let sink_stream = writer.try_clone().map(Mutex::new).map(Arc::new);
    let iter = AtomicU64::new(0);
    let session = SolveSession::new(&g)
        .k(k)
        .solver(algo)
        .params(params)
        .cancel_token(cancel.clone());
    let session = match sink_stream {
        Ok(sink_stream) => session.on_progress(move |it| {
            let i = iter.fetch_add(1, Ordering::Relaxed) + 1;
            let line = Line::progress()
                .field("iter", i)
                .field("chosen", it.chosen)
                .float("gain", it.gain)
                .float("seconds", it.seconds)
                .render();
            let mut s = poison::lock_recover(&sink_stream);
            if writeln!(s, "{line}").and_then(|_| s.flush()).is_err() {
                sink_cancel.cancel();
            }
        }),
        Err(_) => session,
    };
    let session = match deadline {
        Some(d) => session.deadline(d),
        None => session,
    };
    // Register the run's cancel token so a timed-out shutdown drain can
    // interrupt it (the greedy loop returns its partial selection).
    let run_id = state.seq.fetch_add(1, Ordering::Relaxed);
    state
        .inflight_cancels
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(run_id, cancel.clone());
    let mut ws = state.pop_workspace();
    let result = session.run_reusing(&mut ws);
    state.push_workspace(ws);
    state
        .inflight_cancels
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&run_id);

    let sel = result.map_err(map_cfcm_error)?;
    if cancel.is_cancelled() {
        state.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError::new(
            ErrorCode::Cancelled,
            "client disconnected mid-run",
        ));
    }
    Ok(Line::ok()
        .list("nodes", sel.nodes.iter())
        .field("complete", sel.nodes.len() == k)
        .field("iters", sel.stats.iterations.len())
        .field("solves", sel.stats.solve.solves)
        .float("ms", t0.elapsed().as_secs_f64() * 1e3)
        .render())
}
