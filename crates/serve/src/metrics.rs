//! Server-side observability: request counters, the batch occupancy
//! histogram, queue depth, and solver work aggregated across every batched
//! solve — everything the `stats` response reports.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use cfcc_linalg::SolveStats;
use cfcc_util::json::{self, JsonObject};

use crate::poison::lock_recover;

/// Widths at or above this bucket are folded into the last histogram bin.
const MAX_TRACKED_WIDTH: usize = 128;

/// Shared counters; all methods are `&self` and thread-safe.
#[derive(Default)]
pub struct Metrics {
    pub eval_group: AtomicU64,
    pub topk_greedy: AtomicU64,
    pub node_centrality: AtomicU64,
    pub load_graph: AtomicU64,
    pub errors: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_misses: AtomicU64,
    /// Requests refused by admission control (`overloaded` responses).
    pub shed: AtomicU64,
    /// Panics caught and isolated (handler dispatch, factor builds,
    /// batched solves). Nonzero means a request died; the daemon did not.
    pub panics: AtomicU64,
    /// Requests that arrived stamped `retry=<n>` — client backoff retries
    /// actually observed by the server.
    pub retries_observed: AtomicU64,
    /// Iterative solves interrupted mid-sweep by the in-solve stop hook
    /// (deadline expiry or shutdown), as opposed to deadline checks at
    /// batch boundaries.
    pub solver_cancelled: AtomicU64,
    /// Requests currently being served (accepted, not yet answered).
    pub active: AtomicI64,
    /// Batched solve executions by fused column width: histogram[w] =
    /// batches that fused exactly `w` columns (capped at
    /// [`MAX_TRACKED_WIDTH`]).
    occupancy: Mutex<Vec<u64>>,
    /// Jobs that went through the batcher (each one request's RHS block).
    batched_jobs: AtomicU64,
    /// Solve executions (each one `solve_mat` call).
    batches: AtomicU64,
    /// Solver work accumulated across every batched solve (deltas of the
    /// factors' cumulative stats, so shared factors are not double
    /// counted).
    solve: Mutex<SolveStats>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed batch: `jobs` requests fused into one
    /// `solve_mat` of `width` columns.
    pub fn record_batch(&self, jobs: usize, width: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
        let mut hist = lock_recover(&self.occupancy);
        let w = width.min(MAX_TRACKED_WIDTH);
        if hist.len() <= w {
            hist.resize(w + 1, 0);
        }
        hist[w] += 1;
    }

    /// Fold the per-solve delta of a factor's cumulative [`SolveStats`]
    /// into the server aggregate.
    pub fn absorb_solve_delta(&self, before: SolveStats, after: SolveStats) {
        let mut agg = lock_recover(&self.solve);
        agg.solves += after.solves - before.solves;
        agg.iterations += after.iterations - before.iterations;
        agg.flops += after.flops - before.flops;
        agg.max_rel_residual = agg.max_rel_residual.max(after.max_rel_residual);
        agg.last_rel_residual = after.last_rel_residual;
        agg.precond_shift = agg.precond_shift.max(after.precond_shift);
        agg.precond_stretch = agg.precond_stretch.max(after.precond_stretch);
        agg.precond_offtree_edges = agg.precond_offtree_edges.max(after.precond_offtree_edges);
    }

    /// Mean fused width over all executed batches.
    pub fn mean_batch_width(&self) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 {
            return 0.0;
        }
        let hist = lock_recover(&self.occupancy);
        let total: u64 = hist.iter().enumerate().map(|(w, &c)| w as u64 * c).sum();
        total as f64 / batches as f64
    }

    /// Render the `stats` JSON fragment covering batching + solver work.
    /// `queue_depth` is sampled by the caller (the queue owns its lock).
    pub fn to_json(
        &self,
        cache: &crate::cache::CacheCounters,
        queue_depth: usize,
        uptime_secs: f64,
        graphs: &[(String, u64, usize, usize)],
    ) -> String {
        let hist = lock_recover(&self.occupancy);
        let occupancy = json::array(hist.iter().enumerate().filter(|(_, &c)| c > 0).map(
            |(w, &c)| {
                JsonObject::new()
                    .int("width", w as i64)
                    .int("batches", c as i64)
                    .render()
            },
        ));
        drop(hist);
        let solve = *lock_recover(&self.solve);
        let graphs_json = json::array(graphs.iter().map(|(name, epoch, n, m)| {
            JsonObject::new()
                .str("name", name)
                .int("epoch", *epoch as i64)
                .int("n", *n as i64)
                .int("m", *m as i64)
                .render()
        }));
        JsonObject::new()
            .num("uptime_seconds", uptime_secs)
            .raw(
                "requests",
                JsonObject::new()
                    .int("eval_group", self.eval_group.load(Ordering::Relaxed) as i64)
                    .int(
                        "topk_greedy",
                        self.topk_greedy.load(Ordering::Relaxed) as i64,
                    )
                    .int(
                        "node_centrality",
                        self.node_centrality.load(Ordering::Relaxed) as i64,
                    )
                    .int("load_graph", self.load_graph.load(Ordering::Relaxed) as i64)
                    .int("errors", self.errors.load(Ordering::Relaxed) as i64)
                    .int("cancelled", self.cancelled.load(Ordering::Relaxed) as i64)
                    .int(
                        "deadline_misses",
                        self.deadline_misses.load(Ordering::Relaxed) as i64,
                    )
                    .int("shed", self.shed.load(Ordering::Relaxed) as i64)
                    .int("panics", self.panics.load(Ordering::Relaxed) as i64)
                    .int(
                        "retries_observed",
                        self.retries_observed.load(Ordering::Relaxed) as i64,
                    )
                    .int(
                        "solver_cancelled",
                        self.solver_cancelled.load(Ordering::Relaxed) as i64,
                    )
                    .int("active", self.active.load(Ordering::Relaxed))
                    .render(),
            )
            .raw(
                "cache",
                JsonObject::new()
                    .int("hits", cache.hits as i64)
                    .int("misses", cache.misses as i64)
                    .int("evictions", cache.evictions as i64)
                    .int("entries", cache.entries as i64)
                    .num("hit_rate", cache.hit_rate())
                    .render(),
            )
            .raw(
                "batching",
                JsonObject::new()
                    .int("batches", self.batches.load(Ordering::Relaxed) as i64)
                    .int(
                        "batched_jobs",
                        self.batched_jobs.load(Ordering::Relaxed) as i64,
                    )
                    .num("mean_width", self.mean_batch_width())
                    .int("queue_depth", queue_depth as i64)
                    .raw("occupancy", occupancy)
                    .render(),
            )
            .raw(
                "solve",
                JsonObject::new()
                    .int("solves", solve.solves as i64)
                    .int("iterations", solve.iterations as i64)
                    .int("flops", solve.flops as i64)
                    .num("max_rel_residual", solve.max_rel_residual)
                    .num("precond_shift", solve.precond_shift)
                    .num("precond_stretch", solve.precond_stretch)
                    .int("precond_offtree_edges", solve.precond_offtree_edges as i64)
                    .render(),
            )
            .raw("graphs", graphs_json)
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheCounters;

    #[test]
    fn occupancy_histogram_and_mean_width() {
        let m = Metrics::new();
        m.record_batch(1, 8);
        m.record_batch(3, 24);
        m.record_batch(1, 8);
        assert!((m.mean_batch_width() - 40.0 / 3.0).abs() < 1e-12);
        m.shed.fetch_add(3, Ordering::Relaxed);
        m.panics.fetch_add(1, Ordering::Relaxed);
        m.retries_observed.fetch_add(2, Ordering::Relaxed);
        let j = m.to_json(&CacheCounters::default(), 2, 1.0, &[]);
        assert!(j.contains(r#""queue_depth":2"#));
        assert!(j.contains(r#""shed":3"#));
        assert!(j.contains(r#""panics":1"#));
        assert!(j.contains(r#""retries_observed":2"#));
        assert!(j.contains(r#""solver_cancelled":0"#));
        assert!(j.contains(r#"{"width":8,"batches":2}"#));
        assert!(j.contains(r#"{"width":24,"batches":1}"#));
        assert!(j.contains(r#""batched_jobs":5"#));
    }

    #[test]
    fn solve_deltas_accumulate_without_double_counting() {
        let m = Metrics::new();
        let before = SolveStats {
            solves: 10,
            iterations: 100,
            flops: 1000,
            ..SolveStats::default()
        };
        let after = SolveStats {
            solves: 14,
            iterations: 160,
            flops: 1500,
            max_rel_residual: 1e-9,
            precond_stretch: 2.5,
            precond_offtree_edges: 37,
            ..SolveStats::default()
        };
        m.absorb_solve_delta(before, after);
        m.absorb_solve_delta(after, after); // no-op delta
        let j = m.to_json(&CacheCounters::default(), 0, 0.0, &[]);
        assert!(j.contains(r#""solves":4"#));
        assert!(j.contains(r#""iterations":60"#));
        assert!(j.contains(r#""flops":500"#));
        assert!(j.contains(r#""precond_stretch":2.5"#));
        assert!(j.contains(r#""precond_offtree_edges":37"#));
    }
}
