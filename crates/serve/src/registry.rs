//! Resident graph store: named graphs that survive across requests, each
//! with an **epoch counter** bumped on every (re)load under the same name.
//!
//! The epoch is what keeps the factor cache sound without invalidation
//! hooks: cache keys embed `(graph name, epoch)`, so reloading a graph
//! silently orphans every factor of the old epoch — they age out of the
//! LRU instead of ever being served against the wrong topology.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cfcc_graph::traversal::largest_connected_component;
use cfcc_graph::Graph;

use crate::poison::lock_recover;
use crate::protocol::{ErrorCode, GraphSource, ServeError};

/// One resident graph: the (LCC-reduced, connected) graph plus its epoch.
#[derive(Debug, Clone)]
pub struct ResidentGraph {
    pub graph: Arc<Graph>,
    pub epoch: u64,
    /// Whether the loaded input was reduced to its largest connected
    /// component (node ids are post-reduction ids when true).
    pub reduced: bool,
}

/// Named, epoch-versioned graph registry. All methods are `&self`; the
/// registry is shared across connection threads.
#[derive(Default)]
pub struct GraphRegistry {
    inner: Mutex<HashMap<String, ResidentGraph>>,
}

impl GraphRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) `name`, reducing to the largest connected
    /// component if needed — every solver in the stack requires a
    /// connected graph. Returns the resident entry (epoch 1 for a fresh
    /// name, previous+1 on replace).
    pub fn insert(&self, name: &str, graph: Graph) -> Result<ResidentGraph, ServeError> {
        let (graph, reduced) = if graph.is_connected() {
            (graph, false)
        } else {
            let (lcc, _) = largest_connected_component(&graph);
            (lcc, true)
        };
        if graph.num_nodes() < 2 {
            return Err(ServeError::new(
                ErrorCode::Load,
                "graph must have at least 2 connected nodes",
            ));
        }
        let mut map = lock_recover(&self.inner);
        let epoch = map.get(name).map_or(1, |e| e.epoch + 1);
        let entry = ResidentGraph {
            graph: Arc::new(graph),
            epoch,
            reduced,
        };
        map.insert(name.to_string(), entry.clone());
        Ok(entry)
    }

    /// Load from a request's [`GraphSource`] and insert under `name`.
    pub fn load(&self, name: &str, source: &GraphSource) -> Result<ResidentGraph, ServeError> {
        let graph = match source {
            GraphSource::Dataset { name: ds, scale } => cfcc_datasets::by_name(ds, *scale)
                .ok_or_else(|| {
                    ServeError::new(ErrorCode::Load, format!("unknown dataset '{ds}'"))
                })?,
            GraphSource::Path(path) => {
                let (g, _labels) = cfcc_graph::io::read_edge_list_file(path)
                    .map_err(|e| ServeError::new(ErrorCode::Load, e.to_string()))?;
                g
            }
        };
        self.insert(name, graph)
    }

    /// Look up a resident graph.
    pub fn get(&self, name: &str) -> Result<ResidentGraph, ServeError> {
        lock_recover(&self.inner).get(name).cloned().ok_or_else(|| {
            ServeError::new(
                ErrorCode::UnknownGraph,
                format!("graph '{name}' not loaded (use load_graph)"),
            )
        })
    }

    /// Snapshot `(name, epoch, n, m)` for `stats`.
    pub fn snapshot(&self) -> Vec<(String, u64, usize, usize)> {
        let map = lock_recover(&self.inner);
        let mut out: Vec<_> = map
            .iter()
            .map(|(k, e)| (k.clone(), e.epoch, e.graph.num_nodes(), e.graph.num_edges()))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;

    #[test]
    fn epochs_bump_on_replace_and_lcc_reduction_applies() {
        let reg = GraphRegistry::new();
        let e1 = reg.insert("g", generators::cycle(6)).unwrap();
        assert_eq!((e1.epoch, e1.reduced), (1, false));
        // Disconnected input: reduced to its LCC, epoch bumped.
        let split = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (5, 6)]).unwrap();
        let e2 = reg.insert("g", split).unwrap();
        assert_eq!(e2.epoch, 2);
        assert!(e2.reduced);
        assert_eq!(e2.graph.num_nodes(), 4);
        assert_eq!(reg.get("g").unwrap().epoch, 2);
        assert_eq!(
            reg.get("missing").unwrap_err().code,
            ErrorCode::UnknownGraph
        );
    }

    #[test]
    fn rejects_degenerate_graphs() {
        let reg = GraphRegistry::new();
        let lonely = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(reg.insert("g", lonely).unwrap_err().code, ErrorCode::Load);
    }
}
