//! The LRU factor cache: the daemon's factor-once/solve-many memory.
//!
//! Keys are `(graph name, epoch, grounding set, resolved backend)` — the
//! full identity of a factorization. Values are [`OwnedFactor`]s (factors
//! holding a reference count on their graph, so entries survive graph
//! replacement until evicted) behind a per-entry mutex: `SddFactor`
//! methods take `&mut self` (stats accumulation, internal workspaces), so
//! concurrent solves against one factor serialize at the entry — which is
//! exactly what the batcher exploits by fusing them into one blocked
//! `solve_mat` instead.
//!
//! A thundering herd on a cold key counts **one** miss: the first arrival
//! inserts an empty entry (publishing it under the map lock) and builds
//! the factor under the entry lock; concurrent arrivals find the entry
//! (a hit), then block on the entry lock until the factor exists. The
//! expensive factorization itself never runs under the map lock.
//!
//! Entries also memoize two derived results that are deterministic given
//! the factor — the exact trace (direct backends read it off the
//! triangular factor, but at `O(n²)` a repeat would still hurt) and the
//! all-nodes centrality vector — so repeated queries collapse to pure
//! cache reads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cfcc_graph::Node;
use cfcc_linalg::sdd::OwnedFactor;

use crate::poison::lock_recover;

/// Full identity of a cached factorization.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FactorKey {
    pub graph: String,
    pub epoch: u64,
    /// Grounding set in sorted order (canonical set form).
    pub grounding: Vec<Node>,
    /// Resolved backend name (post-`auto`), so `backend=auto` and an
    /// explicit `backend=sparse-cg` that resolves identically share an
    /// entry.
    pub backend: &'static str,
}

/// One cache slot. The factor starts `None` and is built by the first
/// requester under the entry lock.
#[derive(Default)]
pub struct CacheEntry {
    factor: Mutex<Option<OwnedFactor>>,
    /// Memoized exact `Tr(L_{-S}^{-1})` (direct backends only).
    trace: Mutex<Option<f64>>,
    /// Memoized all-nodes centrality vector (single-node groundings).
    centrality: Mutex<Option<Arc<Vec<f64>>>>,
}

impl CacheEntry {
    /// Lock the factor slot (build-or-use seam).
    ///
    /// A panic during a build or solve (an injected fault, or a real bug)
    /// poisons this lock with a factor in an unknown state. Recover by
    /// clearing the slot: the next requester sees an empty entry and
    /// rebuilds, instead of every future request on this key panicking on
    /// the poisoned mutex.
    pub fn factor(&self) -> MutexGuard<'_, Option<OwnedFactor>> {
        match self.factor.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                guard
            }
        }
    }

    /// Memoized exact trace: compute once, then serve from memory.
    pub fn trace_or_compute<E>(&self, compute: impl FnOnce() -> Result<f64, E>) -> Result<f64, E> {
        // Memoized values are only written complete, so a poisoned lock
        // (panicking compute closure) can keep its contents.
        let mut slot = lock_recover(&self.trace);
        if let Some(t) = *slot {
            return Ok(t);
        }
        let t = compute()?;
        *slot = Some(t);
        Ok(t)
    }

    /// Memoized all-nodes centrality vector.
    pub fn centrality_or_compute<E>(
        &self,
        compute: impl FnOnce() -> Result<Vec<f64>, E>,
    ) -> Result<Arc<Vec<f64>>, E> {
        let mut slot = lock_recover(&self.centrality);
        if let Some(c) = &*slot {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(compute()?);
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }
}

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

/// Counters the `stats` response reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
}

impl CacheCounters {
    /// `hits / (hits + misses)`, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU map from [`FactorKey`] to [`CacheEntry`]. In-flight `Arc`s keep
/// evicted entries alive until their last user drops them, so eviction
/// never races an ongoing solve.
pub struct FactorCache {
    capacity: usize,
    inner: Mutex<HashMap<FactorKey, Slot>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl FactorCache {
    /// An empty cache holding at most `capacity` factors (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the entry for `key`, inserting an empty one (and evicting the
    /// least-recently-used slot if at capacity) on miss. Returns
    /// `(entry, hit)`.
    pub fn get_or_insert(&self, key: &FactorKey) -> (Arc<CacheEntry>, bool) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = lock_recover(&self.inner);
        if let Some(slot) = map.get_mut(key) {
            slot.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(&slot.entry), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if map.len() >= self.capacity {
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let entry = Arc::new(CacheEntry::default());
        map.insert(
            key.clone(),
            Slot {
                entry: Arc::clone(&entry),
                last_used: tick,
            },
        );
        (entry, false)
    }

    /// Drop `key` (a failed factor build must not poison future requests
    /// with an empty entry that counts as a hit).
    pub fn remove(&self, key: &FactorKey) {
        lock_recover(&self.inner).remove(key);
    }

    /// Proactively drop every entry of `graph` older than `epoch` (called
    /// on graph replacement; LRU aging would get there eventually, but the
    /// factors can be large).
    pub fn purge_stale(&self, graph: &str, epoch: u64) {
        lock_recover(&self.inner).retain(|k, _| k.graph != graph || k.epoch >= epoch);
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: lock_recover(&self.inner).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(graph: &str, epoch: u64, grounding: &[Node]) -> FactorKey {
        FactorKey {
            graph: graph.into(),
            epoch,
            grounding: grounding.to_vec(),
            backend: "dense-cholesky",
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = FactorCache::new(2);
        let (a, hit) = cache.get_or_insert(&key("g", 1, &[0]));
        assert!(!hit);
        let (_b, hit) = cache.get_or_insert(&key("g", 1, &[1]));
        assert!(!hit);
        // Touch a so b is the LRU victim.
        let (a2, hit) = cache.get_or_insert(&key("g", 1, &[0]));
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &a2));
        let (_c, hit) = cache.get_or_insert(&key("g", 1, &[2]));
        assert!(!hit);
        // b was evicted; a survived.
        let (_a3, hit) = cache.get_or_insert(&key("g", 1, &[0]));
        assert!(hit);
        let (_b2, hit) = cache.get_or_insert(&key("g", 1, &[1]));
        assert!(!hit);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (2, 4));
        assert!(c.evictions >= 2);
        assert!((c.hit_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_purge_and_memoization() {
        let cache = FactorCache::new(8);
        let (e, _) = cache.get_or_insert(&key("g", 1, &[0]));
        let t: Result<f64, ()> = e.trace_or_compute(|| Ok(2.5));
        assert_eq!(t, Ok(2.5));
        // Second compute closure must not run.
        let t: Result<f64, ()> = e.trace_or_compute(|| panic!("memoized"));
        assert_eq!(t, Ok(2.5));
        let c: Result<_, ()> = e.centrality_or_compute(|| Ok(vec![1.0, 2.0]));
        assert_eq!(*c.unwrap(), vec![1.0, 2.0]);

        cache.get_or_insert(&key("g", 2, &[0]));
        cache.purge_stale("g", 2);
        let (_, hit) = cache.get_or_insert(&key("g", 1, &[0]));
        assert!(!hit, "stale epoch must be purged");
        let (_, hit) = cache.get_or_insert(&key("g", 2, &[0]));
        assert!(hit, "current epoch must survive the purge");
    }

    #[test]
    fn poisoned_factor_lock_recovers_empty() {
        let entry = Arc::new(CacheEntry::default());
        let poisoner = Arc::clone(&entry);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.factor();
            panic!("poison the factor lock");
        })
        .join();
        // The poisoned slot recovers as empty instead of propagating the
        // panic to every later requester.
        assert!(entry.factor().is_none());
        let t: Result<f64, ()> = entry.trace_or_compute(|| Ok(1.0));
        assert_eq!(t, Ok(1.0));
    }
}
