//! The cross-request batching core.
//!
//! Connection threads never solve; they submit a [`SolveJob`] (a
//! right-hand-side block plus a reply channel) and block on the reply. A
//! dedicated batcher thread collects jobs over a short window, groups them
//! by [`FactorKey`], fuses each group's RHS columns into **one** blocked
//! `solve_mat` call against the shared cached factor, and scatters the
//! solution columns back to the per-request responders.
//!
//! Why this wins: the blocked multi-RHS PCG (PR 4) advances all columns in
//! lockstep, sharing each operator and preconditioner sweep across the
//! block — so 8 concurrent 8-column requests fused into one 64-column
//! solve traverse the matrix once per iteration instead of eight times.
//! Batching off degenerates to per-job solves against the same factor
//! mutex, which is exactly the baseline the `serve` bench measures.
//!
//! Deadlines are enforced twice. At the batch boundary, a job whose
//! deadline already passed is answered with a `deadline` error instead of
//! joining a solve (and a request whose deadline passed before submission
//! never enqueues at all — the handler checks first). **Inside** the
//! solve, the batcher installs a [`StopHook`] on the cached factor set to
//! the earliest deadline in the chunk: when it fires, the PCG sweep
//! returns a typed interruption, expired jobs are answered, and the
//! survivors' solve resumes **warm-started from the partial iterate** —
//! no work is thrown away and no job waits on a slower sibling's full
//! convergence. The same hook path force-cancels in-flight solves when a
//! shutdown drain times out ([`BatchQueue::cancel_inflight`]).
//!
//! A panicking solve (injected fault, or a real bug) is caught per chunk:
//! every job in the chunk gets an `internal` error, the offending factor's
//! cache entry is evicted, and the batcher thread keeps serving.
//!
//! Group solves run through `cfcc_linalg::pool` when several keys are
//! ready at once, so distinct factors solve in parallel while same-key
//! work fuses.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cfcc_linalg::{pool, DenseMatrix, LinalgError, SddFactor, StopCause, StopHook};

use crate::cache::{CacheEntry, FactorCache, FactorKey};
use crate::fault::FaultPlan;
use crate::metrics::Metrics;
use crate::poison::{lock_recover, wait_recover};
use crate::protocol::{ErrorCode, ServeError};

/// What a finished job hands back to its requester.
pub struct SolveOutcome {
    /// Solution block, same shape as the submitted RHS.
    pub x: DenseMatrix,
    /// Total fused width of the batch this job rode in.
    pub batch_width: usize,
    /// Requests fused into that batch (1 = solo).
    pub batch_jobs: usize,
}

/// One request's solve: an RHS block against a cached factor.
pub struct SolveJob {
    pub key: FactorKey,
    /// Resolved at submit time so cache eviction can't strand the job.
    pub entry: Arc<CacheEntry>,
    pub rhs: DenseMatrix,
    pub deadline: Option<Instant>,
    pub reply: Sender<Result<SolveOutcome, ServeError>>,
}

/// What the batcher needs from the server besides the queue itself —
/// passed in by the owning thread so the queue stays free of `Arc` cycles
/// back into the server state.
pub struct BatchCtx<'a> {
    pub metrics: &'a Metrics,
    /// Evicted on a caught solve panic so the (possibly corrupt) factor
    /// is rebuilt instead of reused.
    pub cache: &'a FactorCache,
    pub fault: Arc<FaultPlan>,
}

/// Shared job queue + batcher control.
pub struct BatchQueue {
    jobs: Mutex<VecDeque<SolveJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Set by [`BatchQueue::cancel_inflight`]; polled by every in-flight
    /// solve's stop hook. One-way: only used when a shutdown drain times
    /// out, after which no new solves are accepted anyway.
    force_cancel: Arc<AtomicBool>,
    /// Collection window: after the first job arrives, wait this long for
    /// companions before executing. Zero = execute as soon as drained.
    window: Duration,
    /// Fuse jobs per key (true) or solve each job alone (false — the
    /// measured baseline).
    batching: bool,
    /// Hard cap on fused columns per `solve_mat` call.
    max_batch_cols: usize,
}

impl BatchQueue {
    pub fn new(batching: bool, window: Duration, max_batch_cols: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            force_cancel: Arc::new(AtomicBool::new(false)),
            window,
            batching,
            max_batch_cols: max_batch_cols.max(1),
        }
    }

    /// Enqueue a job and wake the batcher. A job submitted after
    /// [`BatchQueue::stop`] is answered with `shutting_down` immediately.
    pub fn submit(&self, job: SolveJob) {
        {
            let mut jobs = lock_recover(&self.jobs);
            // The shutdown check must happen under the jobs lock: the
            // batcher reads the flag and drains the queue under this same
            // lock, so an unchecked push could land *after* its final
            // drain and strand the job (its requester would block on the
            // reply channel forever). The `batch-stranded-submit` model in
            // cfcc-audit finds that interleaving in one schedule.
            if !self.shutdown.load(Ordering::Relaxed) {
                jobs.push_back(job);
                drop(jobs);
                self.available.notify_all();
                return;
            }
        }
        let _ = job.reply.send(Err(ServeError::new(
            ErrorCode::ShuttingDown,
            "server shutting down",
        )));
    }

    /// Jobs currently waiting (the `stats` queue-depth gauge and the
    /// admission-control depth bound).
    pub fn depth(&self) -> usize {
        lock_recover(&self.jobs).len()
    }

    /// Stop the batcher loop after the current drain.
    pub fn stop(&self) {
        // The store must happen while holding the jobs lock. The batcher's
        // wait loop checks the flag and then releases the lock inside
        // `Condvar::wait` as one atomic step; storing without the lock can
        // fire `notify_all` in the window where the batcher has checked
        // but not yet registered as a waiter — a lost wakeup that parks
        // the batcher (and the shutdown drain behind it) forever. The
        // `batch-unlocked-stop` model in cfcc-audit demonstrates exactly
        // that deadlock.
        let guard = lock_recover(&self.jobs);
        self.shutdown.store(true, Ordering::Relaxed);
        drop(guard);
        self.available.notify_all();
    }

    /// Interrupt every in-flight solve through its stop hook (shutdown
    /// drain timed out; jobs get `shutting_down` errors). Irreversible.
    pub fn cancel_inflight(&self) {
        self.force_cancel.store(true, Ordering::Relaxed);
    }

    fn drain_queue(&self) -> Vec<SolveJob> {
        lock_recover(&self.jobs).drain(..).collect()
    }

    /// The batcher thread body: loop until [`BatchQueue::stop`], then
    /// answer any stragglers with a shutdown error.
    pub fn run_batcher(&self, ctx: &BatchCtx<'_>) {
        loop {
            // Wait for work.
            let mut guard = lock_recover(&self.jobs);
            while guard.is_empty() && !self.shutdown.load(Ordering::Relaxed) {
                guard = wait_recover(&self.available, guard);
            }
            if self.shutdown.load(Ordering::Relaxed) {
                for job in guard.drain(..) {
                    let _ = job.reply.send(Err(ServeError::new(
                        ErrorCode::ShuttingDown,
                        "server shutting down",
                    )));
                }
                return;
            }
            drop(guard);
            // Collection window: let concurrent requests that share a
            // factor catch up so they fuse (under saturation the queue
            // refills on its own and the sleep barely matters).
            if self.batching && !self.window.is_zero() {
                std::thread::sleep(self.window);
            }
            let jobs = self.drain_queue();
            if jobs.is_empty() {
                continue;
            }
            self.execute(jobs, ctx);
        }
    }

    /// Group, fuse, solve, scatter.
    fn execute(&self, jobs: Vec<SolveJob>, ctx: &BatchCtx<'_>) {
        // Group by key, preserving arrival order within a group.
        let mut groups: Vec<(FactorKey, Vec<SolveJob>)> = Vec::new();
        for job in jobs {
            if !self.batching {
                // Baseline mode: every job is its own group.
                groups.push((job.key.clone(), vec![job]));
                continue;
            }
            match groups.iter_mut().find(|(k, _)| *k == job.key) {
                Some((_, g)) => g.push(job),
                None => groups.push((job.key.clone(), vec![job])),
            }
        }
        // Split any group that exceeds the fused-column cap.
        let mut chunks: Vec<Vec<SolveJob>> = Vec::new();
        for (_, group) in groups {
            let mut current: Vec<SolveJob> = Vec::new();
            let mut cols = 0usize;
            for job in group {
                let jc = job.rhs.cols();
                if !current.is_empty() && cols + jc > self.max_batch_cols {
                    chunks.push(std::mem::take(&mut current));
                    cols = 0;
                }
                cols += jc;
                current.push(job);
            }
            if !current.is_empty() {
                chunks.push(current);
            }
        }
        // Distinct factors can solve in parallel through the worker pool;
        // same-key chunks are consecutive but rarely co-occur (the cap is
        // far above a window's worth of columns).
        let slots: Vec<Mutex<Option<Vec<SolveJob>>>> =
            chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let threads = slots.len().min(pool::max_workers());
        pool::run(threads, slots.len(), &|i| {
            let Some(chunk) = lock_recover(&slots[i]).take() else {
                // Unreachable by the pool contract (each index runs once);
                // an empty slot means there is simply nothing to solve.
                return;
            };
            // Panic isolation: a chunk that blows up answers its own jobs
            // with `internal`, evicts the (possibly corrupt) factor, and
            // leaves the batcher and its siblings running.
            let key = chunk[0].key.clone();
            let repliers: Vec<Sender<Result<SolveOutcome, ServeError>>> =
                chunk.iter().map(|j| j.reply.clone()).collect();
            let outcome = catch_unwind(AssertUnwindSafe(|| self.execute_chunk(chunk, ctx)));
            if outcome.is_err() {
                ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
                ctx.cache.remove(&key);
                let e = ServeError::new(
                    ErrorCode::Internal,
                    "solve panicked; factor evicted — retry the request",
                );
                for reply in &repliers {
                    // Jobs answered before the panic just drop the
                    // duplicate message on their closed receiver.
                    let _ = reply.send(Err(e.clone()));
                }
            }
        });
    }

    /// Solve one fused chunk (all jobs share a key) and scatter the
    /// columns, restarting from the partial iterate whenever an in-solve
    /// deadline expiry drops jobs from the fused block.
    fn execute_chunk(&self, mut jobs: Vec<SolveJob>, ctx: &BatchCtx<'_>) {
        // Deadline check at the batch boundary: expired jobs error out
        // instead of joining the solve.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs.drain(..) {
            if job.deadline.is_some_and(|d| now >= d) {
                ctx.metrics.deadline_misses.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Err(ServeError::new(
                    ErrorCode::Deadline,
                    "deadline expired before solve",
                )));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            return;
        }
        ctx.fault.on_batched_solve();
        let entry = Arc::clone(&live[0].entry);
        let dim = live[0].rhs.rows();
        let width: usize = live.iter().map(|j| j.rhs.cols()).sum();
        ctx.metrics.record_batch(live.len(), width);

        let mut factor_slot = entry.factor();
        let Some(factor) = factor_slot.as_mut() else {
            let e = ServeError::new(ErrorCode::Internal, "cache entry lost its factor");
            for job in &live {
                let _ = job.reply.send(Err(e.clone()));
            }
            return;
        };
        let before = factor.stats();

        // Warm-startable solution block, column-aligned with `live`.
        let mut x = DenseMatrix::zeros(dim, width);
        loop {
            let fused = fuse_rhs(&live, dim);
            factor.set_stop(chunk_stop_hook(
                live.iter().filter_map(|j| j.deadline).min(),
                Arc::clone(&self.force_cancel),
                Arc::clone(&ctx.fault),
            ));
            let solved = factor.solve_mat_into(&fused, &mut x);
            match solved {
                Ok(()) => {
                    let mut at = 0;
                    for job in &live {
                        let jc = job.rhs.cols();
                        let mut part = DenseMatrix::zeros(dim, jc);
                        for i in 0..dim {
                            part.row_mut(i).copy_from_slice(&x.row(i)[at..at + jc]);
                        }
                        at += jc;
                        let _ = job.reply.send(Ok(SolveOutcome {
                            x: part,
                            batch_width: width,
                            batch_jobs: live.len(),
                        }));
                    }
                    break;
                }
                Err(LinalgError::DeadlineExceeded { .. }) => {
                    // The earliest deadline in the chunk fired mid-sweep.
                    // Answer the expired jobs now, keep the survivors'
                    // partial iterate as the warm start, and resume.
                    ctx.metrics.solver_cancelled.fetch_add(1, Ordering::Relaxed);
                    let now = Instant::now();
                    let mut survivors = Vec::with_capacity(live.len());
                    let mut kept_cols: Vec<usize> = Vec::with_capacity(width);
                    let mut at = 0;
                    for job in live.drain(..) {
                        let jc = job.rhs.cols();
                        if job.deadline.is_some_and(|d| now >= d) {
                            ctx.metrics.deadline_misses.fetch_add(1, Ordering::Relaxed);
                            let _ = job.reply.send(Err(ServeError::new(
                                ErrorCode::Deadline,
                                "deadline expired mid-solve",
                            )));
                        } else {
                            kept_cols.extend(at..at + jc);
                            survivors.push(job);
                        }
                        at += jc;
                    }
                    if survivors.is_empty() {
                        break;
                    }
                    let mut next_x = DenseMatrix::zeros(dim, kept_cols.len());
                    for i in 0..dim {
                        let row = x.row(i);
                        let dst = next_x.row_mut(i);
                        for (c, &src) in kept_cols.iter().enumerate() {
                            dst[c] = row[src];
                        }
                    }
                    x = next_x;
                    live = survivors;
                }
                Err(LinalgError::Cancelled { .. }) => {
                    // Force-cancel: the shutdown drain timed out.
                    ctx.metrics.solver_cancelled.fetch_add(1, Ordering::Relaxed);
                    let e = ServeError::new(ErrorCode::ShuttingDown, "solve cancelled by shutdown");
                    for job in &live {
                        let _ = job.reply.send(Err(e.clone()));
                    }
                    break;
                }
                Err(e) => {
                    let e = ServeError::new(ErrorCode::Solver, e.to_string());
                    for job in &live {
                        let _ = job.reply.send(Err(e.clone()));
                    }
                    break;
                }
            }
        }
        // The hook captures this chunk's deadlines: clear it before the
        // factor goes back to the cache, or a stale deadline would cancel
        // some later request's solve.
        factor.set_stop(StopHook::none());
        let after = factor.stats();
        ctx.metrics.absorb_solve_delta(before, after);
    }
}

/// Fuse the live jobs' RHS blocks column-wise (skip the copy for solo
/// jobs).
fn fuse_rhs(live: &[SolveJob], dim: usize) -> DenseMatrix {
    if live.len() == 1 {
        return live[0].rhs.clone();
    }
    let width: usize = live.iter().map(|j| j.rhs.cols()).sum();
    let mut fused = DenseMatrix::zeros(dim, width);
    let mut at = 0;
    for job in live {
        let jc = job.rhs.cols();
        for i in 0..dim {
            fused.row_mut(i)[at..at + jc].copy_from_slice(job.rhs.row(i));
        }
        at += jc;
    }
    fused
}

/// The per-chunk stop hook: earliest deadline in the chunk, the queue's
/// shutdown force-cancel flag, and the fault plan's per-iteration pause.
fn chunk_stop_hook(
    min_deadline: Option<Instant>,
    force_cancel: Arc<AtomicBool>,
    fault: Arc<FaultPlan>,
) -> StopHook {
    StopHook::new(move || {
        fault.iteration_pause();
        if force_cancel.load(Ordering::Relaxed) {
            return Some(StopCause::Cancelled);
        }
        if min_deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopCause::DeadlineExceeded);
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheEntry;
    use std::sync::mpsc::channel;

    fn job(reply: Sender<Result<SolveOutcome, ServeError>>) -> SolveJob {
        SolveJob {
            key: FactorKey {
                graph: "g".into(),
                epoch: 1,
                grounding: vec![0],
                backend: "dense-cholesky",
            },
            entry: Arc::new(CacheEntry::default()),
            rhs: DenseMatrix::zeros(2, 1),
            deadline: None,
            reply,
        }
    }

    #[test]
    fn submit_after_stop_answers_shutting_down() {
        // Regression for the stranded-submit race (see `submit`): a job
        // enqueued after `stop` must get a reply, not wait forever on a
        // batcher that has already drained and exited.
        let q = BatchQueue::new(true, Duration::ZERO, 64);
        q.stop();
        let (tx, rx) = channel();
        q.submit(job(tx));
        let reply = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("submit after stop must answer, not strand the job");
        match reply {
            Err(e) => assert_eq!(e.code, ErrorCode::ShuttingDown),
            Ok(_) => panic!("job submitted after stop must be rejected"),
        }
        assert_eq!(q.depth(), 0, "rejected job must not sit in the queue");
    }

    #[test]
    fn stop_wakes_and_exits_idle_batcher() {
        // Regression for the lost-wakeup race (see `stop`): stopping an
        // idle batcher must terminate it even though its queue is empty.
        let q = Arc::new(BatchQueue::new(true, Duration::ZERO, 64));
        let (tx, rx) = channel();
        let q2 = Arc::clone(&q);
        let batcher = std::thread::spawn(move || {
            let metrics = Metrics::new();
            let cache = FactorCache::new(2);
            let ctx = BatchCtx {
                metrics: &metrics,
                cache: &cache,
                fault: FaultPlan::none(),
            };
            q2.run_batcher(&ctx);
            let _ = tx.send(());
        });
        // Give the batcher a moment to park on the condvar, then stop.
        std::thread::sleep(Duration::from_millis(20));
        q.stop();
        rx.recv_timeout(Duration::from_secs(5))
            .expect("stop must wake the parked batcher");
        batcher.join().expect("batcher exits cleanly");
    }

    #[test]
    fn depth_survives_a_poisoned_queue_lock() {
        // `stats` must keep answering after a panic poisons the jobs lock.
        let q = Arc::new(BatchQueue::new(true, Duration::ZERO, 64));
        let poisoner = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.jobs.lock().unwrap();
            panic!("poison the queue lock");
        })
        .join();
        assert_eq!(q.depth(), 0);
        let (tx, rx) = channel();
        q.stop();
        q.submit(job(tx));
        assert!(rx.recv_timeout(Duration::from_secs(5)).is_ok());
    }
}
