//! The cross-request batching core.
//!
//! Connection threads never solve; they submit a [`SolveJob`] (a
//! right-hand-side block plus a reply channel) and block on the reply. A
//! dedicated batcher thread collects jobs over a short window, groups them
//! by [`FactorKey`], fuses each group's RHS columns into **one** blocked
//! `solve_mat` call against the shared cached factor, and scatters the
//! solution columns back to the per-request responders.
//!
//! Why this wins: the blocked multi-RHS PCG (PR 4) advances all columns in
//! lockstep, sharing each operator and preconditioner sweep across the
//! block — so 8 concurrent 8-column requests fused into one 64-column
//! solve traverse the matrix once per iteration instead of eight times.
//! Batching off degenerates to per-job solves against the same factor
//! mutex, which is exactly the baseline the `serve` bench measures.
//!
//! Deadlines are enforced at batch boundaries: a job whose deadline has
//! passed when the batcher picks it up is answered with a `deadline`
//! error instead of joining a solve (and a request whose deadline passed
//! before submission never enqueues at all — the handler checks first).
//! Group solves run through `cfcc_linalg::pool` when several keys are
//! ready at once, so distinct factors solve in parallel while same-key
//! work fuses.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cfcc_linalg::{pool, DenseMatrix};

use crate::cache::{CacheEntry, FactorKey};
use crate::metrics::Metrics;
use crate::protocol::{ErrorCode, ServeError};

/// What a finished job hands back to its requester.
pub struct SolveOutcome {
    /// Solution block, same shape as the submitted RHS.
    pub x: DenseMatrix,
    /// Total fused width of the batch this job rode in.
    pub batch_width: usize,
    /// Requests fused into that batch (1 = solo).
    pub batch_jobs: usize,
}

/// One request's solve: an RHS block against a cached factor.
pub struct SolveJob {
    pub key: FactorKey,
    /// Resolved at submit time so cache eviction can't strand the job.
    pub entry: Arc<CacheEntry>,
    pub rhs: DenseMatrix,
    pub deadline: Option<Instant>,
    pub reply: Sender<Result<SolveOutcome, ServeError>>,
}

/// Shared job queue + batcher control.
pub struct BatchQueue {
    jobs: Mutex<VecDeque<SolveJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Collection window: after the first job arrives, wait this long for
    /// companions before executing. Zero = execute as soon as drained.
    window: Duration,
    /// Fuse jobs per key (true) or solve each job alone (false — the
    /// measured baseline).
    batching: bool,
    /// Hard cap on fused columns per `solve_mat` call.
    max_batch_cols: usize,
}

impl BatchQueue {
    pub fn new(batching: bool, window: Duration, max_batch_cols: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            window,
            batching,
            max_batch_cols: max_batch_cols.max(1),
        }
    }

    /// Enqueue a job and wake the batcher.
    pub fn submit(&self, job: SolveJob) {
        self.jobs
            .lock()
            .expect("batch queue lock poisoned")
            .push_back(job);
        self.available.notify_all();
    }

    /// Jobs currently waiting (the `stats` queue-depth gauge).
    pub fn depth(&self) -> usize {
        self.jobs.lock().expect("batch queue lock poisoned").len()
    }

    /// Stop the batcher loop after the current drain.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.available.notify_all();
    }

    fn drain(&self) -> Vec<SolveJob> {
        self.jobs
            .lock()
            .expect("batch queue lock poisoned")
            .drain(..)
            .collect()
    }

    /// The batcher thread body: loop until [`BatchQueue::stop`], then
    /// answer any stragglers with a shutdown error.
    pub fn run_batcher(&self, metrics: &Metrics) {
        loop {
            // Wait for work.
            let mut guard = self.jobs.lock().expect("batch queue lock poisoned");
            while guard.is_empty() && !self.shutdown.load(Ordering::Relaxed) {
                guard = self
                    .available
                    .wait(guard)
                    .expect("batch queue lock poisoned");
            }
            if self.shutdown.load(Ordering::Relaxed) {
                for job in guard.drain(..) {
                    let _ = job.reply.send(Err(ServeError::new(
                        ErrorCode::ShuttingDown,
                        "server shutting down",
                    )));
                }
                return;
            }
            drop(guard);
            // Collection window: let concurrent requests that share a
            // factor catch up so they fuse (under saturation the queue
            // refills on its own and the sleep barely matters).
            if self.batching && !self.window.is_zero() {
                std::thread::sleep(self.window);
            }
            let jobs = self.drain();
            if jobs.is_empty() {
                continue;
            }
            self.execute(jobs, metrics);
        }
    }

    /// Group, fuse, solve, scatter.
    fn execute(&self, jobs: Vec<SolveJob>, metrics: &Metrics) {
        // Group by key, preserving arrival order within a group.
        let mut groups: Vec<(FactorKey, Vec<SolveJob>)> = Vec::new();
        for job in jobs {
            if !self.batching {
                // Baseline mode: every job is its own group.
                groups.push((job.key.clone(), vec![job]));
                continue;
            }
            match groups.iter_mut().find(|(k, _)| *k == job.key) {
                Some((_, g)) => g.push(job),
                None => groups.push((job.key.clone(), vec![job])),
            }
        }
        // Split any group that exceeds the fused-column cap.
        let mut chunks: Vec<Vec<SolveJob>> = Vec::new();
        for (_, group) in groups {
            let mut current: Vec<SolveJob> = Vec::new();
            let mut cols = 0usize;
            for job in group {
                let jc = job.rhs.cols();
                if !current.is_empty() && cols + jc > self.max_batch_cols {
                    chunks.push(std::mem::take(&mut current));
                    cols = 0;
                }
                cols += jc;
                current.push(job);
            }
            if !current.is_empty() {
                chunks.push(current);
            }
        }
        // Distinct factors can solve in parallel through the worker pool;
        // same-key chunks are consecutive but rarely co-occur (the cap is
        // far above a window's worth of columns).
        let slots: Vec<Mutex<Option<Vec<SolveJob>>>> =
            chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let threads = slots.len().min(pool::max_workers());
        pool::run(threads, slots.len(), &|i| {
            let chunk = slots[i]
                .lock()
                .expect("batch slot lock poisoned")
                .take()
                .expect("each slot runs exactly once");
            execute_chunk(chunk, metrics);
        });
    }
}

/// Solve one fused chunk (all jobs share a key) and scatter the columns.
fn execute_chunk(mut jobs: Vec<SolveJob>, metrics: &Metrics) {
    // Deadline check at the batch boundary: expired jobs error out
    // instead of joining the solve.
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs.drain(..) {
        if job.deadline.is_some_and(|d| now >= d) {
            metrics.deadline_misses.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Err(ServeError::new(
                ErrorCode::Deadline,
                "deadline expired before solve",
            )));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    let entry = Arc::clone(&live[0].entry);
    let dim = live[0].rhs.rows();
    let width: usize = live.iter().map(|j| j.rhs.cols()).sum();
    metrics.record_batch(live.len(), width);

    // Fuse the RHS blocks column-wise (skip the copy for solo jobs).
    let fused = if live.len() == 1 {
        live[0].rhs.clone()
    } else {
        let mut fused = DenseMatrix::zeros(dim, width);
        let mut at = 0;
        for job in &live {
            let jc = job.rhs.cols();
            for i in 0..dim {
                fused.row_mut(i)[at..at + jc].copy_from_slice(job.rhs.row(i));
            }
            at += jc;
        }
        fused
    };

    // One blocked solve against the shared factor.
    let mut factor_slot = entry.factor();
    let result = match factor_slot.as_mut() {
        Some(factor) => {
            let before = cfcc_linalg::SddFactor::stats(factor);
            let solved = cfcc_linalg::SddFactor::solve_mat(factor, &fused);
            let after = cfcc_linalg::SddFactor::stats(factor);
            metrics.absorb_solve_delta(before, after);
            solved.map_err(|e| ServeError::new(ErrorCode::Solver, e.to_string()))
        }
        None => Err(ServeError::new(
            ErrorCode::Internal,
            "cache entry lost its factor",
        )),
    };
    drop(factor_slot);

    // Scatter columns back to the responders.
    match result {
        Ok(x) => {
            let mut at = 0;
            for job in &live {
                let jc = job.rhs.cols();
                let mut part = DenseMatrix::zeros(dim, jc);
                for i in 0..dim {
                    part.row_mut(i).copy_from_slice(&x.row(i)[at..at + jc]);
                }
                at += jc;
                let _ = job.reply.send(Ok(SolveOutcome {
                    x: part,
                    batch_width: width,
                    batch_jobs: live.len(),
                }));
            }
        }
        Err(e) => {
            for job in &live {
                let _ = job.reply.send(Err(e.clone()));
            }
        }
    }
}
