//! Compile-time-free fault injection for chaos testing.
//!
//! A [`FaultPlan`] rides in [`crate::ServeConfig`] (the default plan is
//! inert — every probe is a relaxed atomic load on the hot path) and lets
//! tests break the daemon on purpose at its three seams: factorization
//! (panic on the Nth build), the batched solve path (delay before a
//! solve, a per-iteration pause that makes solves slow enough to
//! interrupt, panic on the Nth chunk), and the reply path (drop the
//! connection instead of writing the Nth reply). The chaos suite in
//! `tests/faults.rs` drives all of them end to end; production builds
//! carry the same code with every trigger disarmed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Injectable failure plan. All triggers are disarmed by default; `Nth`
/// counters are 1-based and fire exactly once.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Panic on this factorization build (0 = disarmed).
    fail_factor_nth: AtomicU64,
    factor_builds: AtomicU64,
    /// Panic on this batched chunk solve (0 = disarmed).
    fail_solve_nth: AtomicU64,
    solve_calls: AtomicU64,
    /// Sleep this long before every batched chunk solve.
    solve_delay_ms: AtomicU64,
    /// Sleep this long at every stop-hook poll (≈ once per PCG
    /// iteration) — turns any solve into a slow, interruptible one.
    iter_delay_us: AtomicU64,
    /// Drop the connection instead of writing this reply (0 = disarmed).
    drop_reply_nth: AtomicU64,
    replies: AtomicU64,
}

impl FaultPlan {
    /// An inert plan behind an `Arc` (what [`crate::ServeConfig`] holds).
    pub fn none() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arm: panic on the `n`th factorization build (1-based).
    pub fn fail_factor(&self, n: u64) {
        self.fail_factor_nth.store(n, Ordering::Relaxed);
    }

    /// Arm: panic on the `n`th batched chunk solve (1-based).
    pub fn fail_solve(&self, n: u64) {
        self.fail_solve_nth.store(n, Ordering::Relaxed);
    }

    /// Arm: sleep `d` before every batched chunk solve.
    pub fn delay_solves(&self, d: Duration) {
        self.solve_delay_ms
            .store(d.as_millis() as u64, Ordering::Relaxed);
    }

    /// Arm: pause `d` at every solver stop-hook poll, making iterative
    /// solves arbitrarily slow while staying interruptible.
    pub fn delay_iterations(&self, d: Duration) {
        self.iter_delay_us
            .store(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Arm: drop the connection instead of writing the `n`th reply
    /// (1-based, counted across all connections).
    pub fn drop_reply(&self, n: u64) {
        self.drop_reply_nth.store(n, Ordering::Relaxed);
    }

    /// Probe at a factorization build: panics when armed for this build.
    pub fn on_factor_build(&self) {
        let c = self.factor_builds.fetch_add(1, Ordering::Relaxed) + 1;
        let n = self.fail_factor_nth.load(Ordering::Relaxed);
        if n != 0 && c == n {
            panic!("injected fault: factorization {c}");
        }
    }

    /// Probe at a batched chunk solve: injected delay, then panics when
    /// armed for this solve.
    pub fn on_batched_solve(&self) {
        let ms = self.solve_delay_ms.load(Ordering::Relaxed);
        if ms != 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let c = self.solve_calls.fetch_add(1, Ordering::Relaxed) + 1;
        let n = self.fail_solve_nth.load(Ordering::Relaxed);
        if n != 0 && c == n {
            panic!("injected fault: batched solve {c}");
        }
    }

    /// Probe inside the solver stop hook: injected per-iteration pause.
    pub fn iteration_pause(&self) {
        let us = self.iter_delay_us.load(Ordering::Relaxed);
        if us != 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    /// Probe before writing a reply: true when the connection should be
    /// dropped instead.
    pub fn should_drop_reply(&self) -> bool {
        let c = self.replies.fetch_add(1, Ordering::Relaxed) + 1;
        let n = self.drop_reply_nth.load(Ordering::Relaxed);
        n != 0 && c == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_is_inert() {
        let f = FaultPlan::default();
        for _ in 0..10 {
            f.on_factor_build();
            f.on_batched_solve();
            f.iteration_pause();
            assert!(!f.should_drop_reply());
        }
    }

    #[test]
    fn nth_triggers_fire_exactly_once() {
        let f = FaultPlan::default();
        f.fail_factor(2);
        f.on_factor_build();
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.on_factor_build())).is_err()
        );
        f.on_factor_build(); // third build: disarmed again

        let g = FaultPlan::default();
        g.drop_reply(3);
        assert!(!g.should_drop_reply());
        assert!(!g.should_drop_reply());
        assert!(g.should_drop_reply());
        assert!(!g.should_drop_reply());
    }
}
