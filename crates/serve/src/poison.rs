//! Poison-tolerant lock helpers for the serve request path.
//!
//! A poisoned `std::sync::Mutex` only means *some* thread panicked while
//! holding the guard — the data inside is still a valid value of its type.
//! Every lock on the request path protects state that stays meaningful
//! after an arbitrary interruption (queues of jobs, counters, `Option`
//! slots), and panic isolation elsewhere (the batcher's `catch_unwind`,
//! the pool's per-task catch) already converts the *cause* of the poison
//! into an error reply. Propagating the poison afterwards would turn one
//! failed request into a crash loop for every later request that touches
//! the same lock — exactly the cascade the fault-tolerance layer exists to
//! prevent. So the request path recovers the guard with
//! [`PoisonError::into_inner`] and moves on.
//!
//! `cfcc-lint`'s `no-unwrap` rule bans `.unwrap()` / `.expect(` in these
//! modules, which is what keeps new code on these helpers.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// [`Mutex::lock`] that recovers from poisoning instead of panicking.
#[inline]
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers from poisoning instead of panicking.
#[inline]
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}
