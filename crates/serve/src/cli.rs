//! Argument parsing and entry points for the `cfcm serve` / `cfcm client`
//! subcommands (the `cfcm` binary dispatches here when its first argument
//! is one of those words).

use std::time::Duration;

use crate::client::Client;
use crate::{ServeConfig, Server};

/// Usage text for the daemon subcommands, appended to the main `cfcm`
/// usage.
pub const SERVE_USAGE: &str = "\
cfcm serve — resident CFCC query daemon (factor caching + solve batching)

USAGE:
    cfcm serve [OPTIONS]
    cfcm client --addr <host:port> <request line…>

SERVE OPTIONS:
    --addr <host:port>      bind address (default: 127.0.0.1:0 — ephemeral
                            port, printed on startup)
    --no-batching           solve every request alone (baseline mode)
    --window-ms <int>       batch collection window in ms (default: 2)
    --max-batch-cols <int>  fused-column cap per blocked solve (default: 64)
    --cache-cap <int>       factor cache capacity in factors (default: 32)
    --probes <int>          default Hutchinson probes per eval_group on
                            iterative backends (default: 16)
    --threads <int>         worker threads per solve (default: 1)
    --rel-tol <float>       iterative solve residual target (default: 1e-8)
    --max-inflight <int>    shed solve requests beyond this many in flight
                            with 'err code=overloaded retry_after_ms=…'
                            (default: 256; 0 = unbounded)
    --max-queue-depth <int> shed solve requests once this many jobs wait in
                            the batch queue (default: 1024; 0 = unbounded)
    --drain-ms <int>        graceful-shutdown drain budget before in-flight
                            work is cooperatively cancelled (default: 5000)

CLIENT:
    Joins the remaining arguments into one request line, sends it, prints
    every response line, and exits non-zero if the terminal line is an
    error. Examples:

        cfcm client --addr 127.0.0.1:4317 load_graph name=g dataset=karate
        cfcm client --addr 127.0.0.1:4317 eval_group graph=g nodes=0,33
        cfcm client --addr 127.0.0.1:4317 topk_greedy graph=g k=4
        cfcm client --addr 127.0.0.1:4317 stats
        cfcm client --addr 127.0.0.1:4317 shutdown

The protocol is plain UTF-8 lines over TCP; see the README for the full
request/response reference and error-code table.
";

fn need(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse::<T>()
        .map_err(|_| format!("bad value '{v}' for {flag}"))
}

/// `cfcm serve …` — bind, announce, and serve until `shutdown`.
pub fn run_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = need(&mut it, "--addr")?,
            "--no-batching" => cfg.batching = false,
            "--window-ms" => {
                cfg.batch_window =
                    Duration::from_millis(parse(&need(&mut it, "--window-ms")?, "--window-ms")?);
            }
            "--max-batch-cols" => {
                cfg.max_batch_cols =
                    parse(&need(&mut it, "--max-batch-cols")?, "--max-batch-cols")?;
            }
            "--cache-cap" => {
                cfg.cache_capacity = parse(&need(&mut it, "--cache-cap")?, "--cache-cap")?;
            }
            "--probes" => cfg.probes = parse(&need(&mut it, "--probes")?, "--probes")?,
            "--threads" => cfg.threads = parse(&need(&mut it, "--threads")?, "--threads")?,
            "--rel-tol" => cfg.rel_tol = parse(&need(&mut it, "--rel-tol")?, "--rel-tol")?,
            "--max-inflight" => {
                cfg.max_inflight = parse(&need(&mut it, "--max-inflight")?, "--max-inflight")?;
            }
            "--max-queue-depth" => {
                cfg.max_queue_depth =
                    parse(&need(&mut it, "--max-queue-depth")?, "--max-queue-depth")?;
            }
            "--drain-ms" => {
                cfg.drain_timeout =
                    Duration::from_millis(parse(&need(&mut it, "--drain-ms")?, "--drain-ms")?);
            }
            "--help" => {
                print!("{SERVE_USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }
    let server = Server::bind(cfg).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // CI and scripts parse this exact line to discover the ephemeral port.
    println!("cfcc-serve listening on {addr}");
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.run();
    Ok(())
}

/// `cfcm client --addr <a> <request…>` — one request, print the response.
pub fn run_client(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut request: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(need(&mut it, "--addr")?),
            "--help" => {
                print!("{SERVE_USAGE}");
                return Ok(());
            }
            _ => request.push(arg.clone()),
        }
    }
    let addr = addr.ok_or("client requires --addr <host:port>")?;
    if request.is_empty() {
        return Err("client requires a request line (e.g. 'ping')".into());
    }
    let line = request.join(" ");
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let lines = client
        .request(&line)
        .map_err(|e| format!("request failed: {e}"))?;
    for l in &lines {
        println!("{l}");
    }
    let terminal = lines.last().expect("response has a terminal line");
    if terminal.starts_with("err") {
        return Err(format!("server error: {terminal}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_flags_reject_garbage() {
        assert!(run_serve(&["--bogus".into()]).is_err());
        assert!(run_serve(&["--window-ms".into(), "x".into()]).is_err());
        assert!(run_client(&[]).is_err());
        assert!(run_client(&["ping".into()]).is_err()); // no --addr
    }
}
