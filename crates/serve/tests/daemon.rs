//! Integration tests for the `cfcc-serve` daemon over real TCP
//! connections: batching correctness (fused solves match sequential ones),
//! cache/epoch semantics over the wire, client-disconnect cancellation,
//! and deadline enforcement.

use std::time::{Duration, Instant};

use cfcc_graph::generators;
use cfcc_serve::client::Client;
use cfcc_serve::protocol::fields;
use cfcc_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_graph() -> cfcc_graph::Graph {
    let mut rng = StdRng::seed_from_u64(42);
    generators::barabasi_albert(300, 3, &mut rng)
}

/// The request mix the parity test replays on both servers: a few distinct
/// groundings (so same-key requests fuse) with per-request seeds (so every
/// request keeps its own probe block).
fn parity_requests(backend: &str) -> Vec<String> {
    let groundings = ["3,17,42", "5,80", "0,1,2,250"];
    (0..12)
        .map(|i| {
            format!(
                "eval_group graph=g nodes={} backend={} probes=4 seed={}",
                groundings[i % groundings.len()],
                backend,
                1000 + i
            )
        })
        .collect()
}

fn spawn_server(
    batching: bool,
    window: Duration,
    rel_tol: f64,
) -> (cfcc_serve::ServerHandle, std::net::SocketAddr) {
    let server = Server::bind(ServeConfig {
        batching,
        batch_window: window,
        rel_tol,
        ..ServeConfig::default()
    })
    .unwrap();
    server.registry().insert("g", test_graph()).unwrap();
    let addr = server.local_addr().unwrap();
    (server.spawn(), addr)
}

fn cfcc_of(terminal: &str) -> f64 {
    let f = fields(terminal);
    assert!(terminal.starts_with("ok "), "{terminal}");
    f["cfcc"].parse::<f64>().unwrap()
}

/// Concurrent batched requests must produce the same answers as the same
/// requests solved one-by-one with batching off. Solves run at 1e-12
/// residual so the blocked-vs-solo iterate paths agree far below the
/// 1e-10 comparison tolerance.
#[test]
fn batched_eval_group_matches_sequential() {
    for backend in ["dense-cholesky", "sparse-cg", "tree-pcg"] {
        let requests = parity_requests(backend);

        // Sequential baseline: batching off, one connection, in order.
        let (mut seq_handle, seq_addr) = spawn_server(false, Duration::ZERO, 1e-12);
        let mut c = Client::connect(seq_addr).unwrap();
        let baseline: Vec<f64> = requests
            .iter()
            .map(|r| cfcc_of(&c.request_terminal(r).unwrap()))
            .collect();
        seq_handle.shutdown();

        // Batched run: every request on its own connection, all in flight
        // at once, a wide window so same-grounding requests fuse.
        let (mut bat_handle, bat_addr) = spawn_server(true, Duration::from_millis(40), 1e-12);
        let fused: Vec<(f64, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = requests
                .iter()
                .map(|r| {
                    s.spawn(move || {
                        let mut c = Client::connect(bat_addr).unwrap();
                        let t = c.request_terminal(r).unwrap();
                        let jobs = fields(&t)
                            .get("batch_jobs")
                            .and_then(|v| v.parse::<usize>().ok())
                            .unwrap_or(0);
                        (cfcc_of(&t), jobs)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        bat_handle.shutdown();

        for (i, (&expect, &(got, _))) in baseline.iter().zip(fused.iter()).enumerate() {
            let rel = (got - expect).abs() / expect.abs().max(1.0);
            assert!(
                rel <= 1e-10,
                "{backend} request {i}: batched {got} vs sequential {expect} (rel {rel:.2e})"
            );
        }
        if backend != "dense-cholesky" {
            // At least one request must have actually fused with another
            // (12 concurrent requests, 3 groundings, 40ms window).
            let max_jobs = fused.iter().map(|&(_, j)| j).max().unwrap();
            assert!(
                max_jobs >= 2,
                "{backend}: no fusion happened (max batch_jobs = {max_jobs})"
            );
        }
    }
}

/// Factor-cache semantics over the wire: repeat groundings hit, reloading
/// a graph bumps the epoch and invalidates every cached factor.
#[test]
fn cache_hits_and_epoch_invalidation() {
    let (mut handle, addr) = spawn_server(true, Duration::from_millis(1), 1e-8);
    let mut c = Client::connect(addr).unwrap();

    let t = c
        .request_terminal("eval_group graph=g nodes=1,2 seed=7")
        .unwrap();
    assert_eq!(fields(&t)["cache"], "miss");
    let t = c
        .request_terminal("eval_group graph=g nodes=2,1 seed=7")
        .unwrap();
    assert_eq!(
        fields(&t)["cache"],
        "hit",
        "groundings are order-insensitive"
    );

    // Reload under the same name: epoch bumps, factors invalidate.
    let t = c
        .request_terminal("load_graph name=g dataset=karate")
        .unwrap();
    assert_eq!(fields(&t)["epoch"], "2");
    let t = c
        .request_terminal("eval_group graph=g nodes=1,2 seed=7")
        .unwrap();
    assert_eq!(fields(&t)["cache"], "miss", "stale epoch must not serve");

    let t = c.request_terminal("stats").unwrap();
    let stats = fields(&t)["stats"].to_string();
    assert!(stats.contains(r#""hits":1"#), "{stats}");
    assert!(stats.contains(r#""epoch":2"#), "{stats}");
    handle.shutdown();
}

/// A client that disconnects mid-`topk_greedy` must cancel the run (the
/// progress write fails, the sink cancels the token) and free the slot —
/// the daemon keeps serving other clients.
#[test]
fn client_disconnect_cancels_topk_greedy() {
    let (mut handle, addr) = spawn_server(true, Duration::from_millis(1), 1e-8);
    let mut c = Client::connect(addr).unwrap();
    // Plenty of rounds so progress keeps flowing after the disconnect.
    c.send("topk_greedy graph=g k=40 algo=schur seed=3")
        .unwrap();
    drop(c); // disconnect without reading — the daemon's next writes fail

    let t0 = Instant::now();
    while handle.cancelled_requests() == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "run was never cancelled after client disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The slot drains and the daemon still answers.
    while handle.active_requests() > 0 {
        assert!(t0.elapsed() < Duration::from_secs(60), "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut c2 = Client::connect(addr).unwrap();
    assert!(c2.request_terminal("ping").unwrap().starts_with("ok "));
    handle.shutdown();
}

/// Deadlines: a request whose deadline expires waiting for the batch
/// window gets `err code=deadline` instead of hanging — and the daemon
/// still serves afterwards.
#[test]
fn expired_deadlines_error_instead_of_hanging() {
    // Wide window so a short deadline expires at the batch boundary.
    let (mut handle, addr) = spawn_server(true, Duration::from_millis(80), 1e-8);
    let mut c = Client::connect(addr).unwrap();

    // Warm the factor so the deadline run spends its budget in the queue,
    // not the factorization.
    let t = c
        .request_terminal("eval_group graph=g nodes=9,10 backend=sparse-cg seed=1")
        .unwrap();
    assert!(t.starts_with("ok "), "{t}");

    // Submission-time expiry: deadline_ms=0 is already past at the handler.
    let t = c
        .request_terminal("eval_group graph=g nodes=9,10 backend=sparse-cg deadline_ms=0")
        .unwrap();
    assert!(t.starts_with("err code=deadline"), "{t}");

    // Batch-boundary expiry: 5ms deadline vs 80ms collection window.
    let t = c
        .request_terminal("eval_group graph=g nodes=9,10 backend=sparse-cg deadline_ms=5 seed=2")
        .unwrap();
    assert!(t.starts_with("err code=deadline"), "{t}");

    // A roomy deadline still succeeds on the warm factor.
    let t = c
        .request_terminal(
            "eval_group graph=g nodes=9,10 backend=sparse-cg deadline_ms=30000 seed=3",
        )
        .unwrap();
    assert!(t.starts_with("ok "), "{t}");
    handle.shutdown();
}
