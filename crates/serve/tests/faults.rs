//! Chaos suite: the daemon under injected faults. Every test drives a
//! [`FaultPlan`] seam end to end over real TCP and asserts the blast
//! radius stays contained — the offending request gets a typed error,
//! every other request is served correctly, and the daemon never needs a
//! restart.
//!
//! The headline test ([`overload_storm_is_shed_retried_and_served_correctly`])
//! is the acceptance scenario: an armed factorization panic plus 4×
//! overload, with clients retrying through capped backoff, must end with
//! every request answered at sequential parity and the shed/panic/retry
//! counters all accounted for.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfcc_graph::generators;
use cfcc_serve::client::Client;
use cfcc_serve::fault::FaultPlan;
use cfcc_serve::protocol::{fields, MAX_LINE_BYTES};
use cfcc_serve::{ServeConfig, Server, ServerHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_graph() -> cfcc_graph::Graph {
    let mut rng = StdRng::seed_from_u64(42);
    generators::barabasi_albert(300, 3, &mut rng)
}

/// Bind a daemon with graph `g` resident and the given config tweaks
/// applied on top of a chaos-friendly base (tight residuals so parity
/// checks bite).
fn spawn_with(
    fault: &Arc<FaultPlan>,
    tweak: impl FnOnce(&mut ServeConfig),
) -> (ServerHandle, std::net::SocketAddr) {
    let mut cfg = ServeConfig {
        rel_tol: 1e-12,
        fault: Arc::clone(fault),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(cfg).unwrap();
    server.registry().insert("g", test_graph()).unwrap();
    let addr = server.local_addr().unwrap();
    (server.spawn(), addr)
}

fn cfcc_of(terminal: &str) -> f64 {
    assert!(terminal.starts_with("ok "), "{terminal}");
    fields(terminal)["cfcc"].parse::<f64>().unwrap()
}

/// Pull an integer counter out of the `stats` JSON blob.
fn stat_counter(stats_json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = stats_json
        .find(&pat)
        .unwrap_or_else(|| panic!("'{key}' missing from stats: {stats_json}"));
    stats_json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn stats_of(c: &mut Client) -> String {
    let t = c.request_terminal("stats").unwrap();
    assert!(t.starts_with("ok "), "{t}");
    fields(&t)["stats"].to_string()
}

/// An injected factorization panic is isolated: the request that hit it
/// gets `err code=internal`, the poisoned cache entry is evicted, and the
/// very same request succeeds on retry — no restart, no wedged lock.
#[test]
fn factorization_panic_is_isolated_and_evicted() {
    let fault = Arc::new(FaultPlan::default());
    fault.fail_factor(1);
    let (mut handle, addr) = spawn_with(&fault, |_| {});
    let mut c = Client::connect(addr).unwrap();

    let req = "eval_group graph=g nodes=3,17,42 backend=sparse-cg probes=4 seed=7";
    let t = c.request_terminal(req).unwrap();
    assert!(t.starts_with("err code=internal"), "{t}");

    // Same connection, same request: the evicted entry rebuilds cleanly.
    let t = c.request_terminal(req).unwrap();
    assert!(t.starts_with("ok "), "{t}");

    let stats = stats_of(&mut c);
    assert!(stat_counter(&stats, "panics") >= 1, "{stats}");
    assert!(c.request_terminal("ping").unwrap().starts_with("ok "));
    handle.shutdown();
}

/// The acceptance scenario: a factorization panic armed, admission capped
/// at 4 in-flight, and 16 concurrent clients (4× overload) retrying
/// through [`Client::request_with_retry`]. Every client must end with a
/// correct answer (parity ≤ 1e-10 against a pristine sequential server),
/// the daemon must have shed with `overloaded`, observed stamped retries,
/// contained at least one panic — and still answer `ping` at the end.
#[test]
fn overload_storm_is_shed_retried_and_served_correctly() {
    let groundings = ["3,17,42", "5,80", "0,1,2,250"];
    let requests: Vec<String> = (0..16)
        .map(|i| {
            format!(
                "eval_group graph=g nodes={} backend=sparse-cg probes=4 seed={}",
                groundings[i % groundings.len()],
                2000 + i
            )
        })
        .collect();

    // Sequential baseline: no faults, no concurrency, batching off.
    let (mut seq_handle, seq_addr) = spawn_with(&FaultPlan::none(), |cfg| cfg.batching = false);
    let mut c = Client::connect(seq_addr).unwrap();
    let baseline: Vec<f64> = requests
        .iter()
        .map(|r| cfcc_of(&c.request_terminal(r).unwrap()))
        .collect();
    drop(c);
    seq_handle.shutdown();

    // Chaos server: first factorization panics, solves run slow enough to
    // keep the in-flight window saturated, admission sheds past 4.
    let fault = Arc::new(FaultPlan::default());
    fault.fail_factor(1);
    fault.delay_solves(Duration::from_millis(20));
    let (mut handle, addr) = spawn_with(&fault, |cfg| {
        cfg.max_inflight = 4;
        cfg.batch_window = Duration::from_millis(10);
    });

    let got: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|r| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    // Backoff-retry absorbs `overloaded`; one more outer
                    // round absorbs the injected `internal` panic.
                    for _ in 0..10 {
                        let lines = c.request_with_retry(r, 8).unwrap();
                        let t = lines.last().unwrap();
                        if t.starts_with("ok ") {
                            return cfcc_of(t);
                        }
                        assert!(
                            t.starts_with("err code=internal")
                                || t.starts_with("err code=overloaded"),
                            "unexpected failure: {t}"
                        );
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    panic!("request never served: {r}");
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (&expect, &got)) in baseline.iter().zip(got.iter()).enumerate() {
        let rel = (got - expect).abs() / expect.abs().max(1.0);
        assert!(
            rel <= 1e-10,
            "request {i}: chaos answer {got} vs sequential {expect} (rel {rel:.2e})"
        );
    }

    // Same daemon, zero restarts: health check plus the fault ledger.
    let mut c = Client::connect(addr).unwrap();
    assert!(c.request_terminal("ping").unwrap().starts_with("ok "));
    let stats = stats_of(&mut c);
    assert!(stat_counter(&stats, "shed") >= 1, "{stats}");
    assert!(stat_counter(&stats, "panics") >= 1, "{stats}");
    assert!(stat_counter(&stats, "retries_observed") >= 1, "{stats}");
    handle.shutdown();
}

/// Satellite 1, at the wire: a deadline that expires *mid-solve* (the
/// per-iteration pause makes the solve slow but interruptible) returns
/// `err code=deadline` within 2× the deadline instead of running the
/// solve to completion — and the factor stays reusable afterwards.
#[test]
fn mid_solve_deadline_expiry_returns_promptly() {
    let fault = Arc::new(FaultPlan::default());
    let (mut handle, addr) = spawn_with(&fault, |cfg| cfg.batch_window = Duration::ZERO);
    let mut c = Client::connect(addr).unwrap();

    // Warm the factor so the deadline budget is spent inside the solve.
    let t = c
        .request_terminal("eval_group graph=g nodes=3,17,42 backend=sparse-cg seed=1")
        .unwrap();
    assert!(t.starts_with("ok "), "{t}");

    // 25ms per block sweep against a 250ms budget: at 1e-12 residual the
    // solve needs far more than 10 sweeps, so the deadline must fire
    // mid-solve, and the stop hook polls once per sweep, so detection
    // latency is about one sweep.
    fault.delay_iterations(Duration::from_millis(25));
    let t0 = Instant::now();
    let t = c
        .request_terminal(
            "eval_group graph=g nodes=3,17,42 backend=sparse-cg deadline_ms=250 seed=2",
        )
        .unwrap();
    let elapsed = t0.elapsed();
    fault.delay_iterations(Duration::ZERO);
    assert!(t.starts_with("err code=deadline"), "{t}");
    assert!(
        elapsed < Duration::from_millis(500),
        "deadline reply took {elapsed:?} — more than 2× the 250ms budget"
    );

    // The abort folded into the ledger and the cached factor (hook
    // cleared) still serves.
    let stats = stats_of(&mut c);
    assert!(stat_counter(&stats, "solver_cancelled") >= 1, "{stats}");
    let t = c
        .request_terminal("eval_group graph=g nodes=3,17,42 backend=sparse-cg seed=3")
        .unwrap();
    assert!(t.starts_with("ok "), "{t}");
    handle.shutdown();
}

/// A dropped reply (connection cut instead of the Nth write) surfaces to
/// that client as an EOF error; the daemon and the next connection are
/// unaffected.
#[test]
fn dropped_reply_only_costs_that_connection() {
    let fault = Arc::new(FaultPlan::default());
    fault.drop_reply(1);
    let (mut handle, addr) = spawn_with(&fault, |_| {});

    let mut c = Client::connect(addr).unwrap();
    let err = c.request_terminal("ping").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");

    let mut c2 = Client::connect(addr).unwrap();
    assert!(c2.request_terminal("ping").unwrap().starts_with("ok "));
    handle.shutdown();
}

/// Hostile bytes on the wire — an oversized line, then invalid UTF-8 —
/// each earn `err code=bad_request` and the connection keeps serving.
#[test]
fn hostile_input_gets_bad_request_and_keeps_the_connection() {
    let (mut handle, addr) = spawn_with(&FaultPlan::none(), |_| {});
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let read_reply = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    // One line far past the bound, no newline until the very end.
    let big = vec![b'a'; MAX_LINE_BYTES + 10];
    writer.write_all(&big).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let t = read_reply(&mut reader);
    assert!(t.starts_with("err code=bad_request"), "{t}");

    // Invalid UTF-8.
    writer.write_all(&[0x66, 0xFF, 0xFE, b'\n']).unwrap();
    writer.flush().unwrap();
    let t = read_reply(&mut reader);
    assert!(t.starts_with("err code=bad_request"), "{t}");

    // Same connection still does real work.
    writer.write_all(b"ping\n").unwrap();
    writer.flush().unwrap();
    let t = read_reply(&mut reader);
    assert!(t.starts_with("ok "), "{t}");
    handle.shutdown();
}

/// Graceful shutdown drains: a solve in flight (slowed by an injected
/// delay) when `shutdown` begins still completes and delivers its answer
/// before the daemon exits.
#[test]
fn graceful_shutdown_drains_inflight_work() {
    let fault = Arc::new(FaultPlan::default());
    fault.delay_solves(Duration::from_millis(150));
    let (mut handle, addr) = spawn_with(&fault, |_| {});

    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request_terminal("eval_group graph=g nodes=3,17,42 backend=sparse-cg probes=4 seed=9")
            .unwrap()
    });
    // Let the request reach the (deliberately slow) solve, then shut down
    // while it is in flight.
    while handle.active_requests() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
    let t = worker.join().unwrap();
    assert!(t.starts_with("ok "), "drained request lost its answer: {t}");
}
