//! Regenerates **Fig. 1**: CFCC `C(S)` of the groups chosen by Optimum,
//! Exact, Approx, Forest and Schur for `k = 1..5` on the four tiny graphs
//! (Zebra, Karate, Cont. USA, Dolphins).
//!
//! Run: `cargo bench -p cfcc-bench --bench fig1`

use cfcc_bench::{banner, harness_threads, params_for, Preset};
use cfcc_core::{approx_greedy::approx_greedy, cfcc::cfcc_group_exact, exact::exact_greedy,
    forest_cfcm::forest_cfcm, optimum::optimum_cfcm, schur_cfcm::schur_cfcm};
use cfcc_util::table::Table;

const K_MAX: usize = 5;

fn main() {
    let preset = Preset::from_env();
    banner("fig1", "Fig. 1 (tiny graphs vs exhaustive optimum, k=1..5)", preset);
    let threads = harness_threads();
    let params = params_for(0.2, threads);

    for name in cfcc_datasets::suites::TINY {
        let g = cfcc_datasets::by_name(name, 1.0).expect("tiny dataset");
        println!(
            "\n--- {name} (n={}, m={}) ---",
            g.num_nodes(),
            g.num_edges()
        );
        // Greedy prefixes give all k at once; optimum needs one run per k.
        let exact = exact_greedy(&g, K_MAX).expect("exact");
        let approx = approx_greedy(&g, K_MAX, &params).expect("approx");
        let forest = forest_cfcm(&g, K_MAX, &params).expect("forest");
        let schur = schur_cfcm(&g, K_MAX, &params).expect("schur");

        let mut table =
            Table::new(["k", "Optimum", "Exact", "Approx", "Forest", "Schur"]);
        for k in 1..=K_MAX {
            let opt = optimum_cfcm(&g, k).expect("optimum");
            let row = [
                k.to_string(),
                format!("{:.4}", opt.cfcc),
                format!("{:.4}", cfcc_group_exact(&g, exact.prefix(k))),
                format!("{:.4}", cfcc_group_exact(&g, approx.prefix(k))),
                format!("{:.4}", cfcc_group_exact(&g, forest.prefix(k))),
                format!("{:.4}", cfcc_group_exact(&g, schur.prefix(k))),
            ];
            table.row(row);
        }
        println!("{table}");
    }
    println!("Shape check vs paper: all greedy variants sit within a few percent of Optimum,");
    println!("with Exact/Forest/Schur nearly identical (paper §V-B2, Fig. 1).");
}
