//! Regenerates **Fig. 1**: CFCC `C(S)` of the groups chosen by Optimum,
//! Exact, Approx, Forest and Schur for `k = 1..5` on the four tiny graphs
//! (Zebra, Karate, Cont. USA, Dolphins).
//!
//! Run: `cargo bench -p cfcc-bench --bench fig1`

use cfcc_bench::{banner, harness_threads, params_for, run_solver, Preset};
use cfcc_core::cfcc::cfcc_group_exact;
use cfcc_util::table::Table;

const K_MAX: usize = 5;
/// Greedy solvers whose nested prefixes give all k at once.
const GREEDY: [(&str, &str); 4] = [
    ("Exact", "exact"),
    ("Approx", "approx"),
    ("Forest", "forest"),
    ("Schur", "schur"),
];

fn main() {
    let preset = Preset::from_env();
    banner(
        "fig1",
        "Fig. 1 (tiny graphs vs exhaustive optimum, k=1..5)",
        preset,
    );
    let threads = harness_threads();
    let params = params_for(0.2, threads);

    for name in cfcc_datasets::suites::TINY {
        let g = cfcc_datasets::by_name(name, 1.0).expect("tiny dataset");
        println!(
            "\n--- {name} (n={}, m={}) ---",
            g.num_nodes(),
            g.num_edges()
        );
        // Greedy prefixes give all k at once; optimum needs one run per k.
        let selections: Vec<_> = GREEDY
            .iter()
            .map(|&(_, solver)| run_solver(solver, &g, K_MAX, &params))
            .collect();

        let mut header = vec!["k".to_string(), "Optimum".to_string()];
        header.extend(GREEDY.iter().map(|&(label, _)| label.to_string()));
        let mut table = Table::new(header);
        for k in 1..=K_MAX {
            let opt = run_solver("optimum", &g, k, &params);
            let mut row = vec![
                k.to_string(),
                format!("{:.4}", cfcc_group_exact(&g, &opt.nodes)),
            ];
            row.extend(
                selections
                    .iter()
                    .map(|sel| format!("{:.4}", cfcc_group_exact(&g, sel.prefix(k)))),
            );
            table.row(row);
        }
        println!("{table}");
    }
    println!("Shape check vs paper: all greedy variants sit within a few percent of Optimum,");
    println!("with Exact/Forest/Schur nearly identical (paper §V-B2, Fig. 1).");
}
