//! Regenerates **Fig. 5**: relative difference of the maximized CFCC
//! (vs the EXACT greedy baseline) as ε varies, for ForestCFCM and
//! SchurCFCM (k = 20).
//!
//! Graphs are loaded at a dense-feasible scale since the reference needs a
//! dense inverse (DESIGN.md §6); relative differences are scale-free.
//!
//! Run: `CFCC_PRESET=paper cargo bench -p cfcc-bench --bench fig5`

use cfcc_bench::{banner, harness_threads, load, params_for, run_solver, Preset};
use cfcc_core::cfcc::cfcc_group_exact;
use cfcc_util::table::Table;

const EPS_GRID: [f64; 6] = [0.40, 0.35, 0.30, 0.25, 0.20, 0.15];

fn main() {
    let preset = Preset::from_env();
    banner(
        "fig5",
        "Fig. 5 (relative difference vs EXACT as epsilon varies)",
        preset,
    );
    let threads = harness_threads();
    let k = preset.k();

    let names: &[&str] = match preset {
        Preset::Smoke => &["facebook", "web-epa"],
        _ => &cfcc_datasets::suites::FIG5,
    };

    for name in names {
        let spec = cfcc_datasets::spec(name).expect("dataset");
        let (g, scale) = load(spec, preset, preset.exact_limit());
        println!(
            "\n--- {name} (n={}, m={}, scale {scale:.4}) ---",
            g.num_nodes(),
            g.num_edges()
        );
        let exact = run_solver("exact", &g, k, &params_for(0.2, threads));
        let c_exact = cfcc_group_exact(&g, &exact.nodes);
        let mut table = Table::new(["epsilon", "Forest rel.diff", "Schur rel.diff"]);
        for &e in &EPS_GRID {
            let p = params_for(e, threads);
            let cf = cfcc_group_exact(&g, &run_solver("forest", &g, k, &p).nodes);
            let cs = cfcc_group_exact(&g, &run_solver("schur", &g, k, &p).nodes);
            table.row([
                format!("{e:.2}"),
                format!("{:.5}", ((c_exact - cf) / c_exact).max(0.0)),
                format!("{:.5}", ((c_exact - cs) / c_exact).max(0.0)),
            ]);
        }
        println!("{table}");
        println!("(reference EXACT C(S) = {c_exact:.5})");
    }
    println!("Shape check vs paper: differences shrink toward negligible by ε ≤ 0.2, with");
    println!("Schur at or below Forest across the grid (paper §V-C2, Fig. 5).");
}
