//! Ablation studies for the design choices DESIGN.md calls out (not in the
//! paper's figures, but probing its §IV claims directly):
//!
//! 1. **|T| sensitivity** — SchurCFCM runtime/quality at |T| ∈
//!    {1, T*/4, T*, 4·T*}: the balance-point rule should sit near the
//!    runtime sweet spot.
//! 2. **Walk shortening** — mean Wilson walk steps per forest with root set
//!    S vs S∪T (the mechanism behind Schur's speed-up).
//! 3. **Adaptive stop savings** — forests sampled with the Bernstein rule
//!    vs the fixed cap.
//!
//! Run: `cargo bench -p cfcc-bench --bench ablation`

use cfcc_bench::{banner, harness_threads, params_for, run_solver, timed_solver, Preset};
use cfcc_core::{cfcc, params::t_star};
use cfcc_util::table::Table;
use cfcc_util::timing::fmt_seconds;

fn main() {
    let preset = Preset::from_env();
    banner(
        "ablation",
        "design-choice ablations (ours, §IV mechanisms)",
        preset,
    );
    let threads = harness_threads();
    let (scale, k) = match preset {
        Preset::Smoke => (0.5, 8),
        Preset::Paper => (1.0, 20),
        Preset::Full => (1.0, 20),
    };
    let g = cfcc_datasets::by_name("hamsterster", scale).expect("dataset");
    let n = g.num_nodes();
    println!(
        "workload: hamsterster proxy, n={n}, m={}, k={k}\n",
        g.num_edges()
    );

    // --- 1. |T| sensitivity ---
    let tstar = t_star(&g);
    let t_grid = [1usize, (tstar / 4).max(2), tstar, 4 * tstar];
    let mut table = Table::new(["|T|", "time (s)", "C(S)", "note"]);
    for &c in &t_grid {
        let mut p = params_for(0.2, threads);
        p.schur_c = Some(c);
        let (sel, t) = timed_solver("schur", &g, k, &p);
        let score = cfcc::cfcc_group_cg(&g, &sel.nodes, 1e-8).expect("eval");
        let note = if c == tstar {
            "= T* (balance rule)"
        } else {
            ""
        };
        table.row([
            c.to_string(),
            fmt_seconds(t),
            format!("{score:.4}"),
            note.to_string(),
        ]);
    }
    println!("ablation 1 — |T| sensitivity (SchurCFCM):\n{table}");

    // --- 2. walk shortening ---
    let p = params_for(0.2, threads);
    let forest = run_solver("forest", &g, k, &p);
    let schur = run_solver("schur", &g, k, &p);
    let mean_steps = |sel: &cfcc_core::Selection| {
        let (s, f) = sel.stats.iterations[1..]
            .iter()
            .fold((0u64, 0u64), |(s, f), it| {
                (s + it.walk_steps, f + it.forests)
            });
        s as f64 / f.max(1) as f64
    };
    let mut table = Table::new(["algorithm", "mean walk steps / forest", "total forests"]);
    table.row([
        "Forest (roots = S)".to_string(),
        format!("{:.0}", mean_steps(&forest)),
        forest.stats.total_forests().to_string(),
    ]);
    table.row([
        "Schur (roots = S ∪ T)".to_string(),
        format!("{:.0}", mean_steps(&schur)),
        schur.stats.total_forests().to_string(),
    ]);
    println!("ablation 2 — Wilson walk shortening:\n{table}");

    // --- 3. adaptive stop savings ---
    let mut fixed = params_for(0.2, threads);
    fixed.min_batch = fixed.max_forests; // disables doubling → full cap upfront
    let (sel_fixed, t_fixed) = timed_solver("schur", &g, k, &fixed);
    let adaptive = params_for(0.2, threads);
    let (sel_adaptive, t_adaptive) = timed_solver("schur", &g, k, &adaptive);
    let mut table = Table::new(["strategy", "forests", "time (s)", "C(S)"]);
    table.row([
        "fixed cap".to_string(),
        sel_fixed.stats.total_forests().to_string(),
        fmt_seconds(t_fixed),
        format!(
            "{:.4}",
            cfcc::cfcc_group_cg(&g, &sel_fixed.nodes, 1e-8).unwrap()
        ),
    ]);
    table.row([
        "adaptive (Bernstein)".to_string(),
        sel_adaptive.stats.total_forests().to_string(),
        fmt_seconds(t_adaptive),
        format!(
            "{:.4}",
            cfcc::cfcc_group_cg(&g, &sel_adaptive.nodes, 1e-8).unwrap()
        ),
    ]);
    println!("ablation 3 — adaptive stopping (paper §III-D):\n{table}");
}
