//! Before/after microbenchmark of the blocked dense-kernel rebuild:
//! GEMM, Cholesky, Schur complement, and the exact-greedy pipeline at
//! n = 128/256/512/1024, each against the retained pre-rebuild reference
//! kernels (`matmul_naive`, `cholesky_naive`, `inverse_naive`,
//! per-column LU inversion).
//!
//! * `CFCC_PRESET=smoke` (default): tiny sizes — the CI regression gate.
//! * `CFCC_PRESET=paper`: the full ladder; emits `BENCH_PR2.json` at the
//!   workspace root (override the path with `CFCC_BENCH_OUT`; setting it
//!   also forces emission under `smoke`).

use cfcc_bench::report::BenchReport;
use cfcc_bench::{banner, fmt_ratio, Preset};
use cfcc_core::exact::{exact_greedy, remove_index};
use cfcc_core::schur::schur_complement_dense;
use cfcc_graph::{generators, Graph, Node};
use cfcc_linalg::dense::DenseMatrix;
use cfcc_linalg::laplacian::{laplacian_dense, laplacian_submatrix_dense};
use cfcc_linalg::vector::norm2_sq;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Best-of-`reps` wall clock in milliseconds.
fn time_ms<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e3
}

/// Pre-rebuild Schur complement: explicit per-column LU inversion plus
/// three zero-branch `ikj` products — the seed's exact code path.
fn schur_pre_rebuild(m: &DenseMatrix, t_idx: &[usize], u_idx: &[usize]) -> DenseMatrix {
    let t = t_idx.len();
    let u = u_idx.len();
    let mut mtt = DenseMatrix::zeros(t, t);
    let mut mtu = DenseMatrix::zeros(t, u);
    let mut mut_ = DenseMatrix::zeros(u, t);
    let mut muu = DenseMatrix::zeros(u, u);
    for (i, &ti) in t_idx.iter().enumerate() {
        for (j, &tj) in t_idx.iter().enumerate() {
            mtt.set(i, j, m.get(ti, tj));
        }
        for (j, &uj) in u_idx.iter().enumerate() {
            mtu.set(i, j, m.get(ti, uj));
        }
    }
    for (i, &ui) in u_idx.iter().enumerate() {
        for (j, &tj) in t_idx.iter().enumerate() {
            mut_.set(i, j, m.get(ui, tj));
        }
        for (j, &uj) in u_idx.iter().enumerate() {
            muu.set(i, j, m.get(ui, uj));
        }
    }
    let lu = muu.lu().expect("M_UU invertible");
    // Per-column inversion, exactly as the seed's `Lu::inverse`.
    let mut muu_inv = DenseMatrix::zeros(u, u);
    let mut e = vec![0.0f64; u];
    for j in 0..u {
        e.fill(0.0);
        e[j] = 1.0;
        for (i, &v) in lu.solve(&e).iter().enumerate() {
            muu_inv.set(i, j, v);
        }
    }
    let correction = mtu.matmul_naive(&muu_inv).matmul_naive(&mut_);
    for i in 0..t {
        for j in 0..t {
            mtt.add_to(i, j, -correction.get(i, j));
        }
    }
    mtt
}

/// Pre-rebuild exact greedy: scalar Cholesky + scalar triangular
/// inversion for both the pseudoinverse first pick and the maintained
/// `L_{-S}^{-1}`, as in the seed.
fn exact_greedy_pre_rebuild(g: &Graph, k: usize) -> Vec<Node> {
    let n = g.num_nodes();
    let mut shifted = laplacian_dense(g);
    let inv_n = 1.0 / n as f64;
    for i in 0..n {
        for j in 0..n {
            shifted.add_to(i, j, inv_n);
        }
    }
    let pinv = shifted.cholesky_naive().unwrap().inverse_naive();
    let first = (0..n)
        .min_by(|&a, &b| pinv.get(a, a).partial_cmp(&pinv.get(b, b)).unwrap())
        .unwrap() as Node;
    let mut chosen = vec![first];
    let mut mask = vec![false; n];
    mask[first as usize] = true;
    let (sub, keep) = laplacian_submatrix_dense(g, &mask);
    let mut m = sub.cholesky_naive().unwrap().inverse_naive();
    let mut nodes = keep;
    while chosen.len() < k {
        let d = m.rows();
        let mut best_c = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for c in 0..d {
            let gain = norm2_sq(m.row(c)) / m.get(c, c);
            if gain > best_gain {
                best_gain = gain;
                best_c = c;
            }
        }
        chosen.push(nodes[best_c]);
        if chosen.len() == k {
            break;
        }
        m = remove_index(&m, best_c);
        nodes.remove(best_c);
    }
    chosen
}

fn main() {
    let preset = Preset::from_env();
    banner(
        "linalg",
        "the blocked-kernel before/after ladder (BENCH_PR2)",
        preset,
    );
    let sizes: &[usize] = match preset {
        Preset::Smoke => &[96, 160],
        _ => &[128, 256, 512, 1024],
    };
    let k = 8; // greedy picks in the pipeline benchmark
    let mut report = BenchReport::new();

    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>9}",
        "kernel", "n", "naive (ms)", "blocked (ms)", "speedup"
    );
    for &n in sizes {
        let reps = if n >= 1024 { 1 } else { 3 };
        let mut rng = SmallRng::seed_from_u64(0xCAFE + n as u64);
        let g = generators::barabasi_albert(n, 3, &mut rng);
        let mut mask = vec![false; n];
        mask[0] = true;
        let (l_minus_s, _) = laplacian_submatrix_dense(&g, &mask);
        let d = l_minus_s.rows();

        // GEMM: dense (non-Laplacian) operands so the zero-skip branch of
        // the naive kernel does not get an artificial advantage.
        let a = {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, ((i * 31 + j * 17) % 23) as f64 * 0.1 - 1.0);
                }
            }
            a
        };
        let naive = time_ms(reps, || a.matmul_naive(&a));
        let blocked = time_ms(reps, || a.matmul(&a));
        record(&mut report, "gemm", n, naive, blocked);

        // Cholesky of an SPD matrix.
        let spd = {
            let mut s = a.gram();
            s.add_ridge(n as f64);
            s
        };
        let naive = time_ms(reps, || spd.cholesky_naive().unwrap());
        let blocked = time_ms(reps, || spd.cholesky().unwrap());
        record(&mut report, "cholesky", n, naive, blocked);

        // Schur complement of L_{-S} onto its |T| = n/8 top rows.
        let t_idx: Vec<usize> = (0..d / 8).collect();
        let u_idx: Vec<usize> = (d / 8..d).collect();
        let naive = time_ms(reps, || schur_pre_rebuild(&l_minus_s, &t_idx, &u_idx));
        let blocked = time_ms(reps, || {
            schur_complement_dense(&l_minus_s, &t_idx, &u_idx).unwrap()
        });
        record(&mut report, "schur", n, naive, blocked);

        // The whole exact-greedy pipeline (first pick + maintained M).
        let naive = time_ms(1, || exact_greedy_pre_rebuild(&g, k));
        let blocked = time_ms(1, || exact_greedy(&g, k).unwrap().nodes);
        record(&mut report, "exact_greedy", n, naive, blocked);
    }

    let out = std::env::var("CFCC_BENCH_OUT").ok();
    let emit = out.is_some() || preset != Preset::Smoke;
    if emit {
        // cargo bench runs with the package as cwd; default to the
        // workspace root where the BENCH_*.json trajectory lives.
        let path = out
            .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json").into());
        report
            .write(&path, "linalg", preset.name())
            .expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\nsmoke preset: report not written (set CFCC_BENCH_OUT to force)");
    }
}

fn record(report: &mut BenchReport, name: &str, n: usize, naive_ms: f64, blocked_ms: f64) {
    report.push(name, n, naive_ms, blocked_ms);
    println!(
        "{:<14} {:>6} {:>12.2} {:>12.2} {:>9}",
        name,
        n,
        naive_ms,
        blocked_ms,
        fmt_ratio(naive_ms / blocked_ms)
    );
}
