//! `cfcc-serve` under load (BENCH_PR6): an in-process daemon driven by
//! concurrent TCP clients replaying a repeated-grounding `eval_group`
//! trace, batching on vs off.
//!
//! Each request is an 8-probe Hutchinson trace estimate on `sparse-cg`
//! (an 8-column blocked solve against a cached factor). The trace cycles
//! through 16 distinct groundings, so after a short warmup every request
//! is a factor-cache hit and the two modes differ **only** in how solves
//! execute: batching fuses concurrent same-grounding requests into one
//! wide `solve_mat` (lockstep PCG shares every operator/preconditioner
//! sweep across the fused columns — the PR 4 mechanism), while the
//! baseline answers each request with its own 8-column solve.
//!
//! Reported per (mode × concurrency level): p50/p99 request latency,
//! throughput, factor-cache hit rate, and mean fused batch width.
//!
//! * `CFCC_PRESET=smoke` (default): n = 1024, levels 8/32 — the CI gate.
//! * `CFCC_PRESET=paper`: n = 8192, levels 64/256, ~4k total requests;
//!   emits `BENCH_PR6.json` at the workspace root (override with
//!   `CFCC_BENCH_OUT`; setting it also forces emission under `smoke`).

use std::time::Instant;

use cfcc_bench::{banner, fmt_ratio, Preset};
use cfcc_graph::generators;
use cfcc_graph::Graph;
use cfcc_serve::client::Client;
use cfcc_serve::protocol::fields;
use cfcc_serve::{ServeConfig, Server};
use cfcc_util::json::{self, JsonObject};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct LoadSpec {
    n: usize,
    m_attach: usize,
    probes: usize,
    groundings: usize,
    group_size: usize,
    levels: &'static [usize],
    requests_per_level: usize,
}

struct LoadResult {
    p50_ms: f64,
    p99_ms: f64,
    throughput_rps: f64,
    hit_rate: f64,
    mean_width: f64,
}

/// Pull a bare number out of a rendered JSON string (the bench is the
/// protocol's client: stats arrive as one opaque JSON token).
fn scrape_num(doc: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat).map(|i| i + pat.len()).unwrap_or(doc.len());
    let num: String = doc[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().unwrap_or(f64::NAN)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Run one (mode, concurrency) configuration against a fresh in-process
/// daemon and measure the steady-state phase (factors pre-warmed).
fn run_load(
    graph: &Graph,
    groundings: &[String],
    spec: &LoadSpec,
    batching: bool,
    concurrency: usize,
) -> LoadResult {
    let server = Server::bind(ServeConfig {
        batching,
        rel_tol: 1e-6,
        probes: spec.probes,
        ..ServeConfig::default()
    })
    .expect("bind in-process daemon");
    server.registry().insert("g", graph.clone()).unwrap();
    let addr = server.local_addr().unwrap();
    let mut handle = server.spawn();

    // Warmup: prime every grounding's factor once, off the clock.
    let mut admin = Client::connect(addr).unwrap();
    for (i, g) in groundings.iter().enumerate() {
        let t = admin
            .request_terminal(&format!(
                "eval_group graph=g nodes={g} backend=sparse-cg probes={} seed={i}",
                spec.probes
            ))
            .unwrap();
        assert!(t.starts_with("ok "), "warmup failed: {t}");
    }

    // Measured phase: `concurrency` connections, each replaying its slice
    // of the repeated-grounding trace.
    let per_worker = spec.requests_per_level / concurrency;
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..concurrency)
            .map(|w| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("worker connect");
                    let mut lat = Vec::with_capacity(per_worker);
                    for i in 0..per_worker {
                        let r = w * per_worker + i;
                        let req = format!(
                            "eval_group graph=g nodes={} backend=sparse-cg probes={} seed={}",
                            groundings[r % groundings.len()],
                            spec.probes,
                            10_000 + r
                        );
                        let q0 = Instant::now();
                        let t = c.request_terminal(&req).expect("request");
                        lat.push(q0.elapsed().as_secs_f64() * 1e3);
                        assert!(t.starts_with("ok "), "{t}");
                    }
                    lat
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    let stats = admin.request_terminal("stats").unwrap();
    let stats = fields(&stats)["stats"].to_string();
    handle.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LoadResult {
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        throughput_rps: (per_worker * concurrency) as f64 / wall,
        hit_rate: scrape_num(&stats, "hit_rate"),
        mean_width: scrape_num(&stats, "mean_width"),
    }
}

fn main() {
    let preset = Preset::from_env();
    banner(
        "serve",
        "cfcc-serve load: cross-request solve batching on vs off (BENCH_PR6)",
        preset,
    );
    let spec = match preset {
        Preset::Smoke => LoadSpec {
            n: 1024,
            m_attach: 4,
            probes: 8,
            groundings: 16,
            group_size: 4,
            levels: &[8, 32],
            requests_per_level: 192,
        },
        _ => LoadSpec {
            n: 8192,
            m_attach: 4,
            probes: 8,
            groundings: 16,
            group_size: 4,
            levels: &[64, 256],
            requests_per_level: 1024,
        },
    };
    let mut rng = SmallRng::seed_from_u64(0x6E55);
    let graph = generators::barabasi_albert(spec.n, spec.m_attach, &mut rng);
    let groundings: Vec<String> = (0..spec.groundings)
        .map(|_| {
            let mut nodes = std::collections::BTreeSet::new();
            while nodes.len() < spec.group_size {
                nodes.insert(rng.gen_range(0..spec.n as u32));
            }
            nodes
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();

    println!(
        "graph: barabasi_albert n={} m={}  trace: {} groundings x {} probes, {} requests/level\n",
        graph.num_nodes(),
        graph.num_edges(),
        spec.groundings,
        spec.probes,
        spec.requests_per_level,
    );
    println!(
        "{:>9} {:>6} {:>10} {:>10} {:>12} {:>9} {:>10}",
        "batching", "conc", "p50 ms", "p99 ms", "req/s", "hit rate", "avg width"
    );

    let mut rows: Vec<(bool, usize, LoadResult)> = Vec::new();
    for &batching in &[false, true] {
        for &conc in spec.levels {
            let res = run_load(&graph, &groundings, &spec, batching, conc);
            println!(
                "{:>9} {:>6} {:>10.2} {:>10.2} {:>12.1} {:>8.1}% {:>10.1}",
                if batching { "on" } else { "off" },
                conc,
                res.p50_ms,
                res.p99_ms,
                res.throughput_rps,
                res.hit_rate * 100.0,
                res.mean_width,
            );
            rows.push((batching, conc, res));
        }
    }

    let max_conc = *spec.levels.last().unwrap();
    let find = |b: bool| {
        rows.iter()
            .find(|(m, c, _)| *m == b && *c == max_conc)
            .map(|(_, _, r)| r)
            .unwrap()
    };
    let speedup = find(true).throughput_rps / find(false).throughput_rps;
    println!(
        "\nbatching speedup at {max_conc} concurrent: {} throughput ({:.1} vs {:.1} req/s)",
        fmt_ratio(speedup),
        find(true).throughput_rps,
        find(false).throughput_rps,
    );

    let out = std::env::var("CFCC_BENCH_OUT").ok();
    if preset != Preset::Smoke || out.is_some() {
        let path = out
            .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json").into());
        let entries = json::array(rows.iter().map(|(batching, conc, r)| {
            JsonObject::new()
                .str("name", "eval_group_load")
                .raw("batching", if *batching { "true" } else { "false" })
                .int("concurrency", *conc as i64)
                .int("requests", spec.requests_per_level as i64)
                .num("p50_ms", r.p50_ms)
                .num("p99_ms", r.p99_ms)
                .num("throughput_rps", r.throughput_rps)
                .num("cache_hit_rate", r.hit_rate)
                .num("mean_batch_width", r.mean_width)
                .render()
        }));
        let doc = JsonObject::new()
            .str("bench", "serve")
            .str("preset", preset.name())
            .str(
                "regenerate",
                "CFCC_PRESET=paper cargo bench -p cfcc-bench --bench serve",
            )
            .raw(
                "graph",
                JsonObject::new()
                    .str("model", "barabasi_albert")
                    .int("n", spec.n as i64)
                    .int("m_attach", spec.m_attach as i64)
                    .render(),
            )
            .int("probes", spec.probes as i64)
            .int("groundings", spec.groundings as i64)
            .num("batching_speedup_at_max_concurrency", speedup)
            .raw("entries", entries)
            .render()
            .replace("},{", "},\n    {")
            .replace("\"entries\":[{", "\"entries\":[\n    {")
            .replace("}]}", "}\n]}");
        std::fs::write(&path, format!("{doc}\n")).expect("write bench report");
        println!("wrote {path}");
    } else {
        println!("\nsmoke preset: report not written (set CFCC_BENCH_OUT to force)");
    }

    // The wire-level latency sanity floor: every mode must have answered
    // with cache hits after warmup.
    for (_, _, r) in &rows {
        assert!(
            r.hit_rate > 0.9,
            "repeated-grounding trace should be >90% cache hits (got {:.3})",
            r.hit_rate
        );
    }
}
