//! Criterion microbenchmark: Wilson forest-sampling throughput as the root
//! set grows — the mechanism behind SchurCFCM's speed-up (Lemma 3.7: cost
//! is the mean absorption time onto the root set).

use cfcc_forest::wilson::sample_forest_into;
use cfcc_forest::Forest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_wilson(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = cfcc_graph::generators::scale_free_with_edges(10_000, 40_000, &mut rng);
    let by_degree = g.nodes_by_degree_desc();
    let mut group = c.benchmark_group("wilson_sampling");
    group.sample_size(10);
    for &roots in &[1usize, 8, 64, 256] {
        let mut in_root = vec![false; g.num_nodes()];
        for &h in by_degree.iter().take(roots) {
            in_root[h as usize] = true;
        }
        group.bench_with_input(
            BenchmarkId::new("hub_roots", roots),
            &in_root,
            |b, in_root| {
                let mut forest = Forest::default();
                let mut rng = SmallRng::seed_from_u64(2);
                b.iter(|| {
                    sample_forest_into(&g, in_root, &mut rng, &mut forest);
                    forest.walk_steps
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wilson);
criterion_main!(benches);
