//! Dense-vs-sparse ladder for the unified `SddSolver` backend API
//! (BENCH_PR3): the same factor-once/solve-many workload — factor
//! `L_{-S}`, then 16 right-hand sides through `solve_mat` — through the
//! `dense-cholesky` and `sparse-cg` (CSR + IC(0)) backends at
//! n = 512…8192, plus an end-to-end ApproxGreedy run at 50k nodes
//! comparing the unpreconditioned `cg-jacobi` path against `sparse-cg`.
//! The large run never allocates an `n × n` matrix.
//!
//! * `CFCC_PRESET=smoke` (default): tiny sizes — the CI regression gate.
//! * `CFCC_PRESET=paper`: the full ladder; emits `BENCH_PR3.json` at the
//!   workspace root (override with `CFCC_BENCH_OUT`; setting it also
//!   forces emission under `smoke`).

use cfcc_bench::report::BenchReport;
use cfcc_bench::{banner, fmt_ratio, Preset};
use cfcc_core::approx_greedy::approx_greedy;
use cfcc_core::CfcmParams;
use cfcc_graph::generators;
use cfcc_linalg::sdd::{by_name, SddBackend, SddOptions};
use cfcc_linalg::DenseMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Best-of-`reps` wall clock in milliseconds.
fn time_ms<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e3
}

fn main() {
    let preset = Preset::from_env();
    banner(
        "sdd",
        "the dense-vs-sparse SDD backend ladder (BENCH_PR3)",
        preset,
    );
    let sizes: &[usize] = match preset {
        Preset::Smoke => &[256, 512],
        _ => &[512, 1024, 2048, 4096, 8192],
    };
    const W: usize = 16; // right-hand sides per factorization
    let opts = SddOptions::with_tol(1e-8);
    let mut report = BenchReport::new();

    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>9}",
        "workload", "n", "dense (ms)", "sparse (ms)", "speedup"
    );
    for &n in sizes {
        let reps = if n >= 2048 { 1 } else { 2 };
        let mut rng = SmallRng::seed_from_u64(0x5DD + n as u64);
        let g = generators::barabasi_albert(n, 4, &mut rng);
        let mut in_s = vec![false; n];
        in_s[0] = true;
        let d = n - 1;
        let mut rhs = DenseMatrix::zeros(d, W);
        for i in 0..d {
            for j in 0..W {
                rhs.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let run = |backend: &str| {
            let b = by_name(backend).expect("registered backend");
            time_ms(reps, || {
                let mut f = b.factor(&g, &in_s, &opts).expect("factor");
                f.solve_mat(&rhs).expect("solve")
            })
        };
        let dense_ms = run("dense-cholesky");
        let sparse_ms = run("sparse-cg");
        report.push("sdd_factor_solve16", n, dense_ms, sparse_ms);
        println!(
            "{:<24} {:>6} {:>12.2} {:>12.2} {:>9}",
            "sdd_factor_solve16",
            n,
            dense_ms,
            sparse_ms,
            fmt_ratio(dense_ms / sparse_ms)
        );
    }

    // End-to-end ApproxGreedy far past the dense ceiling: the historical
    // Jacobi-CG path vs the preconditioned CSR backend. Baseline column =
    // cg-jacobi (dense would need an n² allocation that this workload is
    // specifically built to avoid).
    let n_big = match preset {
        Preset::Smoke => 2_000,
        _ => 50_000,
    };
    let mut rng = SmallRng::seed_from_u64(0xB16);
    let g = generators::barabasi_albert(n_big, 3, &mut rng);
    let mut params = CfcmParams::with_epsilon(0.3).seed(7);
    params.jl_width = Some(4);
    params.cg_tol = 1e-6;
    let k = 2;
    let mut selections = Vec::new();
    let mut times = Vec::new();
    for backend in [SddBackend::CgJacobi, SddBackend::SparseCg] {
        let p = params.clone().backend(backend);
        let t = Instant::now();
        let sel = approx_greedy(&g, k, &p).expect("approx greedy");
        times.push(t.elapsed().as_secs_f64() * 1e3);
        selections.push(sel.nodes);
    }
    assert_eq!(
        selections[0], selections[1],
        "backends must select the same group"
    );
    report.push("approx_greedy_jacobi_vs_sparse", n_big, times[0], times[1]);
    println!(
        "{:<24} {:>6} {:>12.2} {:>12.2} {:>9}   (jacobi vs sparse, k={k})",
        "approx_greedy",
        n_big,
        times[0],
        times[1],
        fmt_ratio(times[0] / times[1])
    );

    let out = std::env::var("CFCC_BENCH_OUT").ok();
    let emit = out.is_some() || preset != Preset::Smoke;
    if emit {
        let path = out
            .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json").into());
        report
            .write(&path, "sdd", preset.name())
            .expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\nsmoke preset: report not written (set CFCC_BENCH_OUT to force)");
    }
}
