//! SDD backend ladder (BENCH_PR4): three sections over the unified
//! `SddSolver` registry.
//!
//! 1. **Dense vs sparse** (`sdd_factor_solve16`, carried over from
//!    BENCH_PR3): factor `L_{-S}` + 16 right-hand sides through
//!    `solve_mat`, `dense-cholesky` vs `sparse-cg`, n = 512…8192.
//! 2. **Blocked multi-RHS vs per-column** (`solve16_block_vs_col_*`):
//!    for every iterative backend, the same 16-RHS workload answered by
//!    one blocked `solve_mat` (lockstep PCG, shared sweeps, deflation)
//!    vs sixteen independent `solve_vec` runs on an identical factor —
//!    baseline column = per-column, blocked column = `solve_mat`.
//! 3. **Jacobi vs spanning-tree preconditioner on a mesh**
//!    (`grid_pcg_iterations_jacobi_vs_tree`, `grid_solve16_jacobi_vs_tree`):
//!    PCG iteration counts (recorded in the two timing columns) and
//!    16-RHS wall clock on a √n × √n grid — the large-diameter topology
//!    where Jacobi pays `O(√n)`-ish iteration counts and the `tree-pcg`
//!    combinatorial preconditioner cuts them.
//!
//! Plus the end-to-end 50k-node ApproxGreedy run (jacobi vs sparse-cg)
//! asserting identical selections.
//!
//! * `CFCC_PRESET=smoke` (default): tiny sizes — the CI regression gate.
//! * `CFCC_PRESET=paper`: the full ladder; emits `BENCH_PR4.json` at the
//!   workspace root (override with `CFCC_BENCH_OUT`; setting it also
//!   forces emission under `smoke`).

use cfcc_bench::report::BenchReport;
use cfcc_bench::{banner, fmt_ratio, Preset};
use cfcc_core::approx_greedy::approx_greedy;
use cfcc_core::CfcmParams;
use cfcc_graph::generators;
use cfcc_linalg::sdd::{by_name, SddBackend, SddOptions};
use cfcc_linalg::DenseMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Best-of-`reps` wall clock in milliseconds.
fn time_ms<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e3
}

fn random_rhs(rng: &mut SmallRng, rows: usize, cols: usize) -> DenseMatrix {
    let mut rhs = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            rhs.set(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    rhs
}

fn main() {
    let preset = Preset::from_env();
    banner(
        "sdd",
        "the SDD backend ladder: dense vs sparse, blocked vs per-column, Jacobi vs tree-pcg (BENCH_PR4)",
        preset,
    );
    let sizes: &[usize] = match preset {
        Preset::Smoke => &[256, 512],
        _ => &[512, 1024, 2048, 4096, 8192],
    };
    const W: usize = 16; // right-hand sides per factorization
    let opts = SddOptions::with_tol(1e-8);
    let mut report = BenchReport::new();

    // ---- 1. dense vs sparse: factor + 16-RHS solve_mat -----------------
    println!(
        "{:<32} {:>6} {:>12} {:>12} {:>9}",
        "workload", "n", "dense (ms)", "sparse (ms)", "speedup"
    );
    for &n in sizes {
        let reps = if n >= 2048 { 1 } else { 2 };
        let mut rng = SmallRng::seed_from_u64(0x5DD + n as u64);
        let g = generators::barabasi_albert(n, 4, &mut rng);
        let mut in_s = vec![false; n];
        in_s[0] = true;
        let rhs = random_rhs(&mut rng, n - 1, W);
        let run = |backend: &str| {
            let b = by_name(backend).expect("registered backend");
            time_ms(reps, || {
                let mut f = b.factor(&g, &in_s, &opts).expect("factor");
                f.solve_mat(&rhs).expect("solve")
            })
        };
        let dense_ms = run("dense-cholesky");
        let sparse_ms = run("sparse-cg");
        report.push("sdd_factor_solve16", n, dense_ms, sparse_ms);
        println!(
            "{:<32} {:>6} {:>12.2} {:>12.2} {:>9}",
            "sdd_factor_solve16",
            n,
            dense_ms,
            sparse_ms,
            fmt_ratio(dense_ms / sparse_ms)
        );
    }

    // ---- 2. blocked multi-RHS solve_mat vs per-column solve_vec --------
    println!(
        "\n{:<32} {:>6} {:>12} {:>12} {:>9}",
        "workload", "n", "col (ms)", "block (ms)", "speedup"
    );
    for &n in sizes {
        let reps = if n >= 2048 { 1 } else { 2 };
        let mut rng = SmallRng::seed_from_u64(0xB10C + n as u64);
        let g = generators::barabasi_albert(n, 4, &mut rng);
        let mut in_s = vec![false; n];
        in_s[0] = true;
        let d = n - 1;
        let rhs = random_rhs(&mut rng, d, W);
        for backend in ["cg-jacobi", "sparse-cg", "tree-pcg"] {
            let b = by_name(backend).expect("registered backend");
            // Factor outside the timed region: both sides solve through
            // an identical, already-built factor (cold start per column).
            let mut fc = b.factor(&g, &in_s, &opts).expect("factor");
            let col_ms = time_ms(reps, || {
                let mut col = vec![0.0; d];
                for j in 0..W {
                    for (i, c) in col.iter_mut().enumerate() {
                        *c = rhs.get(i, j);
                    }
                    fc.solve_vec(&col).expect("solve");
                }
            });
            let mut fb = b.factor(&g, &in_s, &opts).expect("factor");
            let block_ms = time_ms(reps, || fb.solve_mat(&rhs).expect("solve"));
            let name = format!("solve16_block_vs_col_{backend}");
            report.push(&name, n, col_ms, block_ms);
            println!(
                "{:<32} {:>6} {:>12.2} {:>12.2} {:>9}",
                name,
                n,
                col_ms,
                block_ms,
                fmt_ratio(col_ms / block_ms)
            );
        }
    }

    // ---- 3. Jacobi vs the spanning-tree preconditioner on a mesh -------
    // Iteration counts go into the report's two timing columns (the
    // "speedup" is then the iteration ratio): the combinatorial
    // preconditioner's win on large-diameter graphs is an iteration-count
    // story first, wall clock second.
    let side = match preset {
        Preset::Smoke => 24,
        _ => 91, // 91 × 91 = 8281 ≥ 8192 unknowns+1
    };
    let n_grid = side * side;
    let g = generators::grid(side, side);
    let mut in_s = vec![false; n_grid];
    in_s[0] = true;
    let mut rng = SmallRng::seed_from_u64(0x9D1D);
    let rhs = random_rhs(&mut rng, n_grid - 1, W);
    let mut iters = Vec::new();
    let mut times = Vec::new();
    for backend in ["cg-jacobi", "tree-pcg"] {
        let b = by_name(backend).expect("registered backend");
        let mut f = b.factor(&g, &in_s, &opts).expect("factor");
        let ms = time_ms(1, || f.solve_mat(&rhs).expect("solve"));
        // Iterations per RHS column, averaged over the 16-column block.
        iters.push(f.stats().iterations as f64 / W as f64);
        times.push(ms);
    }
    report.push(
        "grid_pcg_iterations_jacobi_vs_tree",
        n_grid,
        iters[0],
        iters[1],
    );
    report.push("grid_solve16_jacobi_vs_tree", n_grid, times[0], times[1]);
    println!(
        "\n{:<32} {:>6} {:>12.1} {:>12.1} {:>9}   (PCG iterations/RHS, jacobi vs tree-pcg)",
        "grid_pcg_iterations",
        n_grid,
        iters[0],
        iters[1],
        fmt_ratio(iters[0] / iters[1])
    );
    println!(
        "{:<32} {:>6} {:>12.2} {:>12.2} {:>9}   (16-RHS solve ms, jacobi vs tree-pcg)",
        "grid_solve16",
        n_grid,
        times[0],
        times[1],
        fmt_ratio(times[0] / times[1])
    );

    // ---- end-to-end ApproxGreedy far past the dense ceiling ------------
    // The historical Jacobi-CG path vs the preconditioned CSR backend;
    // baseline column = cg-jacobi (dense would need an n² allocation that
    // this workload is specifically built to avoid).
    let n_big = match preset {
        Preset::Smoke => 2_000,
        _ => 50_000,
    };
    let mut rng = SmallRng::seed_from_u64(0xB16);
    let g = generators::barabasi_albert(n_big, 3, &mut rng);
    let mut params = CfcmParams::with_epsilon(0.3).seed(7);
    params.jl_width = Some(4);
    params.cg_tol = 1e-6;
    let k = 2;
    let mut selections = Vec::new();
    let mut times = Vec::new();
    for backend in [SddBackend::CgJacobi, SddBackend::SparseCg] {
        let p = params.clone().backend(backend);
        let t = Instant::now();
        let sel = approx_greedy(&g, k, &p).expect("approx greedy");
        times.push(t.elapsed().as_secs_f64() * 1e3);
        selections.push(sel.nodes);
    }
    assert_eq!(
        selections[0], selections[1],
        "backends must select the same group"
    );
    report.push("approx_greedy_jacobi_vs_sparse", n_big, times[0], times[1]);
    println!(
        "\n{:<32} {:>6} {:>12.2} {:>12.2} {:>9}   (jacobi vs sparse, k={k})",
        "approx_greedy",
        n_big,
        times[0],
        times[1],
        fmt_ratio(times[0] / times[1])
    );

    let out = std::env::var("CFCC_BENCH_OUT").ok();
    let emit = out.is_some() || preset != Preset::Smoke;
    if emit {
        let path = out
            .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json").into());
        report
            .write(&path, "sdd", preset.name())
            .expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\nsmoke preset: report not written (set CFCC_BENCH_OUT to force)");
    }
}
