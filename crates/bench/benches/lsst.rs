//! Low-stretch-tree ultrasparsifier ladder (BENCH_PR10): the `lsst-pcg`
//! backend against the existing iterative backends on the topologies the
//! routing change covers — large-diameter meshes AND low-diameter
//! power-law/expander graphs, since `auto` now routes *every* graph above
//! the dense limit to `lsst-pcg`.
//!
//! Per graph, each backend factors `L_{-S}` and answers a 16-RHS
//! `solve_mat` block. Report rows:
//!
//! * `lsst_iters_<graph>`: PCG iterations per RHS, `tree-pcg` (baseline)
//!   vs `lsst-pcg` — the acceptance gate is ≥ 1.3× fewer.
//! * `lsst_solve16_<graph>`: wall-clock ms (factor + 16-RHS solve), best
//!   prior iterative backend (min over cg-jacobi / sparse-cg / tree-pcg)
//!   vs `lsst-pcg` — the gate is ≥ 1.2× faster.
//! * `lsst_treeonly_vs_full_<graph>`: `lsst-pcg` with the off-tree sample
//!   disabled (`offtree_ratio = 0`) vs the full ultrasparsifier —
//!   isolates what the sampled off-tree edges buy over the bare
//!   low-stretch tree.
//!
//! * `CFCC_PRESET=smoke` (default): tiny sizes — the CI regression gate.
//! * `CFCC_PRESET=paper`: the full ladder (grid 91²/257², BA 8192/65536,
//!   WS expander 16384); emits `BENCH_PR10.json` at the workspace root
//!   (override with `CFCC_BENCH_OUT`; setting it also forces emission
//!   under `smoke`).

use cfcc_bench::report::BenchReport;
use cfcc_bench::{banner, fmt_ratio, Preset};
use cfcc_graph::{generators, Graph};
use cfcc_linalg::sdd::{by_name, SddOptions};
use cfcc_linalg::DenseMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Best-of-`reps` wall clock in milliseconds.
fn time_ms<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e3
}

fn random_rhs(rng: &mut SmallRng, rows: usize, cols: usize) -> DenseMatrix {
    let mut rhs = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            rhs.set(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    rhs
}

/// One backend's factor + 16-RHS solve: (wall ms, PCG iterations / RHS).
fn run(
    g: &Graph,
    in_s: &[bool],
    rhs: &DenseMatrix,
    backend: &str,
    opts: &SddOptions,
) -> (f64, f64) {
    let b = by_name(backend).expect("registered backend");
    let mut iters = 0.0;
    let ms = time_ms(1, || {
        let mut f = b.factor(g, in_s, opts).expect("factor");
        f.solve_mat(rhs).expect("solve");
        iters = f.stats().iterations as f64 / rhs.cols() as f64;
    });
    (ms, iters)
}

fn main() {
    let preset = Preset::from_env();
    banner(
        "lsst",
        "low-stretch tree + off-tree ultrasparsifier vs prior iterative backends (BENCH_PR10)",
        preset,
    );
    const W: usize = 16; // right-hand sides per factorization
    let opts = SddOptions::with_tol(1e-8);
    let tree_only = SddOptions {
        offtree_ratio: 0.0,
        ..SddOptions::with_tol(1e-8)
    };
    let mut report = BenchReport::new();

    // (label, graph) ladder: meshes where tree preconditioners shine and
    // low-diameter graphs where they historically did not.
    let mut rng = SmallRng::seed_from_u64(0x157);
    let ladder: Vec<(String, Graph)> = match preset {
        Preset::Smoke => vec![
            ("grid_576".into(), generators::grid(24, 24)),
            (
                "ba_2048".into(),
                generators::barabasi_albert(2048, 4, &mut rng),
            ),
        ],
        _ => vec![
            ("grid_8281".into(), generators::grid(91, 91)),
            ("grid_66049".into(), generators::grid(257, 257)),
            (
                "ba_8192".into(),
                generators::barabasi_albert(8192, 4, &mut rng),
            ),
            (
                "ba_65536".into(),
                generators::barabasi_albert(65_536, 4, &mut rng),
            ),
            // Expander proxy: WS stays connected by construction (ER at
            // this density has isolated nodes, which grounding rejects).
            (
                "ws_16384".into(),
                generators::watts_strogatz(16_384, 8, 0.2, &mut rng),
            ),
        ],
    };

    println!(
        "{:<26} {:>7} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "graph", "n", "jacobi", "sparse", "tree", "lsst", "it tree", "it lsst"
    );
    for (label, g) in &ladder {
        let n = g.num_nodes();
        let mut in_s = vec![false; n];
        in_s[0] = true;
        let mut rng = SmallRng::seed_from_u64(0x157 + n as u64);
        let rhs = random_rhs(&mut rng, n - 1, W);

        let (jacobi_ms, _) = run(g, &in_s, &rhs, "cg-jacobi", &opts);
        let (sparse_ms, _) = run(g, &in_s, &rhs, "sparse-cg", &opts);
        let (tree_ms, tree_it) = run(g, &in_s, &rhs, "tree-pcg", &opts);
        let (lsst_ms, lsst_it) = run(g, &in_s, &rhs, "lsst-pcg", &opts);
        let (lsst0_ms, lsst0_it) = run(g, &in_s, &rhs, "lsst-pcg", &tree_only);
        let best_prior = jacobi_ms.min(sparse_ms).min(tree_ms);

        report.push(&format!("lsst_iters_{label}"), n, tree_it, lsst_it);
        report.push(&format!("lsst_solve16_{label}"), n, best_prior, lsst_ms);
        report.push(
            &format!("lsst_treeonly_vs_full_{label}"),
            n,
            lsst0_ms,
            lsst_ms,
        );
        println!(
            "{:<26} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9.1} {:>9.1}",
            label, n, jacobi_ms, sparse_ms, tree_ms, lsst_ms, tree_it, lsst_it
        );
        println!(
            "{:<26} {:>7} iters tree-pcg/lsst {:>6}   wall best-prior/lsst {:>6}   tree-only lsst: {:.1} ms / {:.1} it",
            "", "", fmt_ratio(tree_it / lsst_it), fmt_ratio(best_prior / lsst_ms), lsst0_ms, lsst0_it
        );
    }

    let out = std::env::var("CFCC_BENCH_OUT").ok();
    let emit = out.is_some() || preset != Preset::Smoke;
    if emit {
        let path = out.unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json").into()
        });
        report
            .write(&path, "lsst", preset.name())
            .expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\nsmoke preset: report not written (set CFCC_BENCH_OUT to force)");
    }
}
