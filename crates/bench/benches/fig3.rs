//! Regenerates **Fig. 3**: CFCC `C(S)` versus `k` on four large graphs
//! (no Exact — infeasible), quality evaluated with conjugate gradients as
//! in the paper's §V-B2.
//!
//! Run: `CFCC_PRESET=paper cargo bench -p cfcc-bench --bench fig3`

use cfcc_bench::{banner, harness_threads, load, params_for, run_solver, Preset};
use cfcc_core::cfcc;
use cfcc_graph::Graph;
use cfcc_util::table::Table;

const KS: [usize; 5] = [4, 8, 12, 16, 20];
/// Large-graph lineup (everything here scales nearly linearly).
const SOLVERS: [(&str, &str); 4] = [
    ("Top-CFCC", "top-cfcc"),
    ("Degree", "degree"),
    ("Forest", "forest"),
    ("Schur", "schur"),
];

fn eval(g: &Graph, nodes: &[u32], params: &cfcc_core::CfcmParams) -> f64 {
    if g.num_nodes() <= 3_000 {
        cfcc::cfcc_group_exact(g, nodes)
    } else {
        // Hutchinson+CG keeps evaluation nearly linear on large graphs.
        cfcc::cfcc_group_hutchinson(g, nodes, 48, params).expect("hutchinson evaluation")
    }
}

fn main() {
    let preset = Preset::from_env();
    banner(
        "fig3",
        "Fig. 3 (effectiveness vs k on large graphs, CG-evaluated)",
        preset,
    );
    let threads = harness_threads();
    let params = params_for(0.2, threads);
    let k_max = *KS.last().unwrap();

    let names: &[&str] = match preset {
        Preset::Smoke => &["livemocha"],
        _ => &cfcc_datasets::suites::FIG3,
    };
    let cap = match preset {
        Preset::Smoke => 4_000,
        Preset::Paper => 25_000,
        Preset::Full => 120_000,
    };

    for name in names {
        let spec = cfcc_datasets::spec(name).expect("dataset");
        let (g, scale) = load(spec, preset, cap);
        println!(
            "\n--- {name} (n={}, m={}, scale {scale:.4}; paper n={}) ---",
            g.num_nodes(),
            g.num_edges(),
            spec.paper_nodes
        );
        let mut table = Table::new(["algorithm", "k=4", "k=8", "k=12", "k=16", "k=20"]);
        for (label, solver) in SOLVERS {
            let sel = run_solver(solver, &g, k_max, &params);
            let mut row = vec![label.to_string()];
            for &k in &KS {
                row.push(format!("{:.4}", eval(&g, sel.prefix(k), &params)));
            }
            table.row(row);
        }
        println!("{table}");
    }
    println!("Shape check vs paper: Schur delivers the best C(S) at every k; Degree/Top-CFCC");
    println!("saturate early — single-node rankings cannot capture group effects (Fig. 3).");
}
