//! Criterion microbenchmark: one marginal-gain estimation round —
//! ForestDelta vs SchurDelta at a fixed forest budget, isolating the
//! per-iteration cost difference of the two algorithms.

use cfcc_core::params::{t_star, top_degree_nodes};
use cfcc_core::{forest_delta::forest_delta, schur_delta::schur_delta, CfcmParams};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_delta(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let g = cfcc_graph::generators::scale_free_with_edges(2_000, 16_000, &mut rng);
    let n = g.num_nodes();
    let mut in_s = vec![false; n];
    in_s[g.max_degree_node().unwrap() as usize] = true;
    let mut params = CfcmParams::with_epsilon(0.3).seed(9);
    // Fixed budget so criterion measures comparable work.
    params.min_batch = 256;
    params.max_forests = 256;

    let c_star = t_star(&g);
    let t_nodes: Vec<u32> = top_degree_nodes(&g, c_star + 1)
        .into_iter()
        .filter(|&t| !in_s[t as usize])
        .take(c_star)
        .collect();

    let mut group = c.benchmark_group("delta_round");
    group.sample_size(10);
    group.bench_function("forest_delta", |b| {
        b.iter(|| forest_delta(&g, &in_s, &params, 1).best);
    });
    group.bench_function("schur_delta", |b| {
        b.iter(|| schur_delta(&g, &in_s, &t_nodes, &params, 1).unwrap().best);
    });
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
