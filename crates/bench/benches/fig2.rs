//! Regenerates **Fig. 2**: CFCC `C(S)` versus `k ∈ {4, 8, 12, 16, 20}` on
//! six small graphs for Exact, Top-CFCC, Degree, Approx, Forest, Schur.
//!
//! Run: `CFCC_PRESET=paper cargo bench -p cfcc-bench --bench fig2`

use cfcc_bench::{banner, harness_threads, load, params_for, run_solver, Preset};
use cfcc_core::{cfcc, Selection};
use cfcc_graph::Graph;
use cfcc_util::table::Table;

const KS: [usize; 5] = [4, 8, 12, 16, 20];

fn eval(g: &Graph, nodes: &[u32]) -> f64 {
    if g.num_nodes() <= 2_500 {
        cfcc::cfcc_group_exact(g, nodes)
    } else {
        cfcc::cfcc_group_cg(g, nodes, 1e-8).expect("CG evaluation")
    }
}

fn series(g: &Graph, sel: Option<&Selection>) -> Vec<String> {
    match sel {
        None => KS.iter().map(|_| "-".to_string()).collect(),
        Some(sel) => KS
            .iter()
            .map(|&k| format!("{:.4}", eval(g, sel.prefix(k))))
            .collect(),
    }
}

fn main() {
    let preset = Preset::from_env();
    banner(
        "fig2",
        "Fig. 2 (effectiveness vs k on small graphs)",
        preset,
    );
    let threads = harness_threads();
    let params = params_for(0.2, threads);
    let k_max = *KS.last().unwrap();

    let names: &[&str] = match preset {
        Preset::Smoke => &["hamsterster", "web-epa"],
        _ => &cfcc_datasets::suites::FIG2,
    };

    for name in names {
        let spec = cfcc_datasets::spec(name).expect("dataset");
        let (g, scale) = load(spec, preset, preset.effectiveness_cap());
        println!(
            "\n--- {name} (n={}, m={}, scale {scale:.3}) ---",
            g.num_nodes(),
            g.num_edges()
        );
        // Solver lineup per preset policy: the dense baselines drop out
        // above their node limits, and Top-CFCC switches from the exact to
        // the sampled ranking (both registry solvers).
        let dense_ok = g.num_nodes() <= preset.exact_limit();
        let rows: Vec<(&str, Option<&str>)> = vec![
            ("Exact", dense_ok.then_some("exact")),
            (
                "Top-CFCC",
                Some(if dense_ok {
                    "top-cfcc-exact"
                } else {
                    "top-cfcc"
                }),
            ),
            ("Degree", Some("degree")),
            (
                "Approx",
                (g.num_nodes() <= preset.approx_limit()).then_some("approx"),
            ),
            ("Forest", Some("forest")),
            ("Schur", Some("schur")),
        ];

        let mut table = Table::new(["algorithm", "k=4", "k=8", "k=12", "k=16", "k=20"]);
        for (label, solver) in rows {
            let sel = solver.map(|s| run_solver(s, &g, k_max, &params));
            let mut row = vec![label.to_string()];
            row.extend(series(&g, sel.as_ref()));
            table.row(row);
        }
        println!("{table}");
    }
    println!("Shape check vs paper: Schur tracks Exact closely at every k; Forest is strong");
    println!("early and slightly lags at larger k; Top-CFCC/Degree trail the greedy methods.");
}
