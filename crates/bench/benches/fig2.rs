//! Regenerates **Fig. 2**: CFCC `C(S)` versus `k ∈ {4, 8, 12, 16, 20}` on
//! six small graphs for Exact, Top-CFCC, Degree, Approx, Forest, Schur.
//!
//! Run: `CFCC_PRESET=paper cargo bench -p cfcc-bench --bench fig2`

use cfcc_bench::{banner, harness_threads, load, params_for, Preset};
use cfcc_core::{approx_greedy::approx_greedy, cfcc, exact::exact_greedy,
    forest_cfcm::forest_cfcm, heuristics, schur_cfcm::schur_cfcm, Selection};
use cfcc_graph::Graph;
use cfcc_util::table::Table;

const KS: [usize; 5] = [4, 8, 12, 16, 20];

fn eval(g: &Graph, nodes: &[u32]) -> f64 {
    if g.num_nodes() <= 2_500 {
        cfcc::cfcc_group_exact(g, nodes)
    } else {
        cfcc::cfcc_group_cg(g, nodes, 1e-8).expect("CG evaluation")
    }
}

fn series(g: &Graph, sel: Option<&Selection>) -> Vec<String> {
    match sel {
        None => KS.iter().map(|_| "-".to_string()).collect(),
        Some(sel) => KS
            .iter()
            .map(|&k| format!("{:.4}", eval(g, sel.prefix(k))))
            .collect(),
    }
}

fn main() {
    let preset = Preset::from_env();
    banner("fig2", "Fig. 2 (effectiveness vs k on small graphs)", preset);
    let threads = harness_threads();
    let params = params_for(0.2, threads);
    let k_max = *KS.last().unwrap();

    let names: &[&str] = match preset {
        Preset::Smoke => &["hamsterster", "web-epa"],
        _ => &cfcc_datasets::suites::FIG2,
    };

    for name in names {
        let spec = cfcc_datasets::spec(name).expect("dataset");
        let (g, scale) = load(spec, preset, preset.effectiveness_cap());
        println!(
            "\n--- {name} (n={}, m={}, scale {scale:.3}) ---",
            g.num_nodes(),
            g.num_edges()
        );
        let exact = (g.num_nodes() <= preset.exact_limit())
            .then(|| exact_greedy(&g, k_max).expect("exact"));
        let topc = if g.num_nodes() <= preset.exact_limit() {
            heuristics::top_cfcc_exact(&g, k_max).expect("top-cfcc")
        } else {
            heuristics::top_cfcc_sampled(&g, k_max, &params).expect("top-cfcc sampled")
        };
        let degree = heuristics::degree_baseline(&g, k_max).expect("degree");
        let approx = (g.num_nodes() <= preset.approx_limit())
            .then(|| approx_greedy(&g, k_max, &params).expect("approx"));
        let forest = forest_cfcm(&g, k_max, &params).expect("forest");
        let schur = schur_cfcm(&g, k_max, &params).expect("schur");

        let mut table =
            Table::new(["algorithm", "k=4", "k=8", "k=12", "k=16", "k=20"]);
        let rows: Vec<(&str, Vec<String>)> = vec![
            ("Exact", series(&g, exact.as_ref())),
            ("Top-CFCC", series(&g, Some(&topc))),
            ("Degree", series(&g, Some(&degree))),
            ("Approx", series(&g, approx.as_ref())),
            ("Forest", series(&g, Some(&forest))),
            ("Schur", series(&g, Some(&schur))),
        ];
        for (alg, vals) in rows {
            let mut row = vec![alg.to_string()];
            row.extend(vals);
            table.row(row);
        }
        println!("{table}");
    }
    println!("Shape check vs paper: Schur tracks Exact closely at every k; Forest is strong");
    println!("early and slightly lags at larger k; Top-CFCC/Degree trail the greedy methods.");
}
