//! Regenerates **Fig. 4**: running time of ForestCFCM and SchurCFCM as the
//! error parameter ε varies over [0.15, 0.4] (k = 20).
//!
//! Run: `CFCC_PRESET=paper cargo bench -p cfcc-bench --bench fig4`

use cfcc_bench::{banner, fmt_ratio, harness_threads, load, params_for, timed_solver, Preset};
use cfcc_util::table::Table;
use cfcc_util::timing::fmt_seconds;

const EPS_GRID: [f64; 6] = [0.40, 0.35, 0.30, 0.25, 0.20, 0.15];

fn main() {
    let preset = Preset::from_env();
    banner("fig4", "Fig. 4 (running time vs epsilon)", preset);
    let threads = harness_threads();
    let k = preset.k();

    let names: &[&str] = match preset {
        Preset::Smoke => &["euroroads"],
        Preset::Paper => &["euroroads", "soc-pagesgov", "email-enron"],
        Preset::Full => &cfcc_datasets::suites::FIG4,
    };

    for name in names {
        let spec = cfcc_datasets::spec(name).expect("dataset");
        let (g, scale) = load(spec, preset, preset.table2_cap());
        println!(
            "\n--- {name} (n={}, m={}, scale {scale:.4}) ---",
            g.num_nodes(),
            g.num_edges()
        );
        let mut table = Table::new(["epsilon", "Forest (s)", "Schur (s)", "Schur speedup"]);
        for &e in &EPS_GRID {
            let p = params_for(e, threads);
            let (_, tf) = timed_solver("forest", &g, k, &p);
            let (_, ts) = timed_solver("schur", &g, k, &p);
            table.row([
                format!("{e:.2}"),
                fmt_seconds(tf),
                fmt_seconds(ts),
                fmt_ratio(tf / ts),
            ]);
        }
        println!("{table}");
    }
    println!("Shape check vs paper: time grows as ε shrinks (ε^-2-style trend), and Schur's");
    println!("advantage widens at small ε (paper §V-C1, Fig. 4).");
}
