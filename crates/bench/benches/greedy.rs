//! Warm-vs-cold greedy ladder (BENCH_PR5): the persistent execution
//! engine's win, measured end to end.
//!
//! 1. **Warm-started vs cold-started ApproxGreedy**
//!    (`approx_greedy_warm_vs_cold_{ms,iters}`): the same k-step run
//!    through `sparse-cg`, once with every iteration's `2w` sketched
//!    solves cold-started and once seeded from the previous iteration's
//!    solutions (the engine's block warm start). Two report rows per
//!    size: wall clock and the total blocked-PCG iterations aggregated
//!    by `RunStats::solve` — baseline column = cold, compare column =
//!    warm. Selections are asserted identical.
//! 2. **Worker-pool GEMM reuse** (`gemm_512_pool_calls`): one hundred
//!    mid-size GEMMs at 4 threads through the persistent pool — the
//!    many-products-per-round shape (`schur_delta`) that per-call thread
//!    spawning used to tax. Baseline column = serial, compare = pooled.
//!
//! * `CFCC_PRESET=smoke` (default): tiny sizes — the CI regression gate.
//! * `CFCC_PRESET=paper`: the full ladder; emits `BENCH_PR5.json` at the
//!   workspace root (override with `CFCC_BENCH_OUT`; setting it also
//!   forces emission under `smoke`).

use cfcc_bench::report::BenchReport;
use cfcc_bench::{banner, fmt_ratio, Preset};
use cfcc_core::approx_greedy::approx_greedy;
use cfcc_core::CfcmParams;
use cfcc_graph::generators;
use cfcc_linalg::dense::DenseMatrix;
use cfcc_linalg::SddBackend;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let preset = Preset::from_env();
    banner(
        "greedy",
        "warm-started vs cold-started ApproxGreedy through the persistent engine (BENCH_PR5)",
        preset,
    );
    let sizes: &[usize] = match preset {
        Preset::Smoke => &[1_000],
        _ => &[2_048, 8_192, 20_000],
    };
    let k = 5;
    let mut report = BenchReport::new();

    println!(
        "{:<34} {:>6} {:>12} {:>12} {:>9}",
        "workload", "n", "cold", "warm", "ratio"
    );
    for &n in sizes {
        let mut rng = SmallRng::seed_from_u64(0x9E5 + n as u64);
        let g = generators::barabasi_albert(n, 3, &mut rng);
        let mut params = CfcmParams::with_epsilon(0.3)
            .seed(13)
            .backend(SddBackend::SparseCg);
        params.jl_width = Some(8);
        let mut times = Vec::new();
        let mut iters = Vec::new();
        let mut selections = Vec::new();
        for warm in [false, true] {
            let p = params.clone().warm_start(warm);
            let t = Instant::now();
            let sel = approx_greedy(&g, k, &p).expect("approx greedy");
            times.push(t.elapsed().as_secs_f64() * 1e3);
            iters.push(sel.stats.solve.iterations as f64);
            selections.push(sel.nodes);
        }
        assert_eq!(
            selections[0], selections[1],
            "cold and warm runs must select the same group"
        );
        report.push("approx_greedy_warm_vs_cold_ms", n, times[0], times[1]);
        report.push("approx_greedy_warm_vs_cold_iters", n, iters[0], iters[1]);
        println!(
            "{:<34} {:>6} {:>12.1} {:>12.1} {:>9}   (wall ms, cold vs warm)",
            "approx_greedy_warm_vs_cold_ms",
            n,
            times[0],
            times[1],
            fmt_ratio(times[0] / times[1])
        );
        println!(
            "{:<34} {:>6} {:>12.0} {:>12.0} {:>9}   (total PCG iterations, cold vs warm)",
            "approx_greedy_warm_vs_cold_iters",
            n,
            iters[0],
            iters[1],
            fmt_ratio(iters[0] / iters[1])
        );
    }

    // ---- worker-pool reuse on many mid-size GEMMs ----------------------
    // 100 products of the `schur_delta` round shape; the pool's parked
    // workers make the 4-thread path a straight win even at this size
    // (per-call thread spawns used to eat the speedup).
    let dim = match preset {
        Preset::Smoke => 256,
        _ => 512,
    };
    let reps = 100;
    let mut rng = SmallRng::seed_from_u64(0x6E33);
    let mut a = DenseMatrix::zeros(dim, dim);
    let mut b = DenseMatrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            a.set(i, j, rng.gen_range(-1.0..1.0));
            b.set(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    let mut out = DenseMatrix::zeros(dim, dim);
    let time_gemms = |threads: usize, out: &mut DenseMatrix| {
        let t = Instant::now();
        for _ in 0..reps {
            a.matmul_into(&b, out, threads);
        }
        std::hint::black_box(&out);
        t.elapsed().as_secs_f64() * 1e3
    };
    let serial_ms = time_gemms(1, &mut out);
    let pooled_ms = time_gemms(4, &mut out);
    let name = format!("gemm_{dim}_x{reps}_pool");
    report.push(&name, dim, serial_ms, pooled_ms);
    println!(
        "\n{:<34} {:>6} {:>12.1} {:>12.1} {:>9}   ({} GEMMs, serial vs pooled 4T)",
        name,
        dim,
        serial_ms,
        pooled_ms,
        fmt_ratio(serial_ms / pooled_ms),
        reps
    );

    let out = std::env::var("CFCC_BENCH_OUT").ok();
    let emit = out.is_some() || preset != Preset::Smoke;
    if emit {
        let path = out
            .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json").into());
        report
            .write(&path, "greedy", preset.name())
            .expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\nsmoke preset: report not written (set CFCC_BENCH_OUT to force)");
    }
}
