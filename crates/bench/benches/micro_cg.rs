//! Criterion microbenchmark: preconditioned-CG solve cost on a scale-free
//! vs a road-like Laplacian of equal size — the conditioning gap that
//! makes the ApproxGreedy baseline degrade on high-diameter graphs
//! (DESIGN.md §6 substitution note).

use cfcc_linalg::cg::{solve_grounded, CgConfig};
use cfcc_linalg::LaplacianSubmatrix;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_cg(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let n = 5_000;
    let scale_free = cfcc_graph::generators::scale_free_with_edges(n, 20_000, &mut rng);
    let road = cfcc_graph::generators::geometric_with_edges(n, 6_500, &mut rng);
    let mut group = c.benchmark_group("pcg_solve");
    group.sample_size(10);
    for (name, g) in [("scale_free", &scale_free), ("road", &road)] {
        let mut in_s = vec![false; g.num_nodes()];
        in_s[g.max_degree_node().unwrap() as usize] = true;
        let op = LaplacianSubmatrix::new(g, &in_s);
        let b: Vec<f64> = (0..op.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = CgConfig::with_tol(1e-8);
        group.bench_function(name, |bch| {
            let mut x = vec![0.0; op.dim()];
            bch.iter(|| {
                x.fill(0.0);
                solve_grounded(&op, &b, &mut x, &cfg).iterations
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cg);
criterion_main!(benches);
