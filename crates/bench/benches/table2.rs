//! Regenerates **Table II**: running time (seconds) of EXACT, APPROX
//! (ApproxGreedy), FORESTCFCM and SCHURCFCM with various ε on the dataset
//! ladder, plus the per-graph statistics columns (n, m, τ, |T*|).
//!
//! Paper reference: Xia & Zhang, ICDE 2025, Table II (k = |S| = 20).
//! Run: `CFCC_PRESET=paper cargo bench -p cfcc-bench --bench table2`

use cfcc_bench::{banner, harness_threads, load, params_for, Preset};
use cfcc_core::{approx_greedy::approx_greedy, exact::exact_greedy, forest_cfcm::forest_cfcm,
    params::t_star, schur_cfcm::schur_cfcm};
use cfcc_graph::diameter::diameter;
use cfcc_util::table::Table;
use cfcc_util::timing::fmt_seconds;
use cfcc_util::Stopwatch;

fn main() {
    let preset = Preset::from_env();
    banner("table2", "Table II (running times, k=20)", preset);
    let k = preset.k();
    let threads = harness_threads();
    let eps_grid = preset.epsilons();

    let names: Vec<&str> = match preset {
        Preset::Smoke => vec!["euroroads", "hamsterster", "gr-qc", "web-epa"],
        Preset::Paper => {
            let mut v = cfcc_datasets::suites::TABLE2_SMALL.to_vec();
            v.extend_from_slice(&cfcc_datasets::suites::TABLE2_MEDIUM);
            v
        }
        Preset::Full => {
            let mut v = cfcc_datasets::suites::TABLE2_SMALL.to_vec();
            v.extend_from_slice(&cfcc_datasets::suites::TABLE2_MEDIUM);
            v.extend_from_slice(&cfcc_datasets::suites::TABLE2_LARGE);
            v
        }
    };

    let mut header: Vec<String> = vec![
        "Network".into(),
        "Node".into(),
        "Edge".into(),
        "tau".into(),
        "|T*|".into(),
        "EXACT".into(),
        "APPROX".into(),
    ];
    for &e in eps_grid {
        header.push(format!("Forest(e={e})"));
    }
    for &e in eps_grid {
        header.push(format!("Schur(e={e})"));
    }
    header.push("paper n/m".into());
    let mut table = Table::new(header);

    for name in names {
        let spec = cfcc_datasets::spec(name).expect("known dataset");
        let (g, scale) = load(spec, preset, preset.table2_cap());
        let n = g.num_nodes();
        let m = g.num_edges();
        let tau = diameter(&g, 1200);
        let tstar = t_star(&g);
        eprintln!("[table2] {name}: n={n} m={m} tau={tau} |T*|={tstar} (scale {scale:.3})");

        let exact_time = if n <= preset.exact_limit() {
            let sw = Stopwatch::start();
            exact_greedy(&g, k).expect("exact greedy");
            sw.seconds()
        } else {
            f64::NAN
        };
        let approx_time = if n <= preset.approx_limit() {
            let p = params_for(0.2, threads);
            let sw = Stopwatch::start();
            approx_greedy(&g, k, &p).expect("approx greedy");
            sw.seconds()
        } else {
            f64::NAN
        };
        let mut forest_times = Vec::new();
        for &e in eps_grid {
            let p = params_for(e, threads);
            let sw = Stopwatch::start();
            forest_cfcm(&g, k, &p).expect("forest cfcm");
            forest_times.push(sw.seconds());
        }
        let mut schur_times = Vec::new();
        for &e in eps_grid {
            let p = params_for(e, threads);
            let sw = Stopwatch::start();
            schur_cfcm(&g, k, &p).expect("schur cfcm");
            schur_times.push(sw.seconds());
        }

        let mut row: Vec<String> = vec![
            name.to_string(),
            n.to_string(),
            m.to_string(),
            tau.to_string(),
            tstar.to_string(),
            fmt_seconds(exact_time),
            fmt_seconds(approx_time),
        ];
        for t in forest_times {
            row.push(fmt_seconds(t));
        }
        for t in schur_times {
            row.push(fmt_seconds(t));
        }
        row.push(format!("{}/{}", spec.paper_nodes, spec.paper_edges));
        // Stream the row immediately (long runs stay inspectable/killable),
        // then add it to the final aligned table.
        eprintln!("[table2] row: {}", row.join(" | "));
        table.row(row);
    }
    println!("{table}");
    println!(
        "Note: '-' marks baselines skipped at this preset (EXACT > {} nodes, APPROX > {} nodes),",
        preset.exact_limit(),
        preset.approx_limit()
    );
    println!("mirroring the paper's own '-' entries where a baseline became infeasible.");
}
