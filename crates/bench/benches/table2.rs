//! Regenerates **Table II**: running time (seconds) of EXACT, APPROX
//! (ApproxGreedy), FORESTCFCM and SCHURCFCM with various ε on the dataset
//! ladder, plus the per-graph statistics columns (n, m, τ, |T*|).
//!
//! Paper reference: Xia & Zhang, ICDE 2025, Table II (k = |S| = 20).
//! Run: `CFCC_PRESET=paper cargo bench -p cfcc-bench --bench table2`

use cfcc_bench::{banner, harness_threads, load, params_for, timed_solver, Preset};
use cfcc_core::params::t_star;
use cfcc_graph::diameter::diameter;
use cfcc_util::table::Table;
use cfcc_util::timing::fmt_seconds;

fn main() {
    let preset = Preset::from_env();
    banner("table2", "Table II (running times, k=20)", preset);
    let k = preset.k();
    let threads = harness_threads();
    let eps_grid = preset.epsilons();

    let names: Vec<&str> = match preset {
        Preset::Smoke => vec!["euroroads", "hamsterster", "gr-qc", "web-epa"],
        Preset::Paper => {
            let mut v = cfcc_datasets::suites::TABLE2_SMALL.to_vec();
            v.extend_from_slice(&cfcc_datasets::suites::TABLE2_MEDIUM);
            v
        }
        Preset::Full => {
            let mut v = cfcc_datasets::suites::TABLE2_SMALL.to_vec();
            v.extend_from_slice(&cfcc_datasets::suites::TABLE2_MEDIUM);
            v.extend_from_slice(&cfcc_datasets::suites::TABLE2_LARGE);
            v
        }
    };

    let mut header: Vec<String> = vec![
        "Network".into(),
        "Node".into(),
        "Edge".into(),
        "tau".into(),
        "|T*|".into(),
        "EXACT".into(),
        "APPROX".into(),
    ];
    for &e in eps_grid {
        header.push(format!("Forest(e={e})"));
    }
    for &e in eps_grid {
        header.push(format!("Schur(e={e})"));
    }
    header.push("paper n/m".into());
    let mut table = Table::new(header);

    for name in names {
        let spec = cfcc_datasets::spec(name).expect("known dataset");
        let (g, scale) = load(spec, preset, preset.table2_cap());
        let n = g.num_nodes();
        let m = g.num_edges();
        let tau = diameter(&g, 1200);
        let tstar = t_star(&g);
        eprintln!("[table2] {name}: n={n} m={m} tau={tau} |T*|={tstar} (scale {scale:.3})");

        // Preset policy gates the dense baselines by node count; timing
        // runs dispatch through the registry by solver name.
        let baseline_time = |solver: &str, limit: usize| -> f64 {
            if n <= limit {
                timed_solver(solver, &g, k, &params_for(0.2, threads)).1
            } else {
                f64::NAN
            }
        };
        let exact_time = baseline_time("exact", preset.exact_limit());
        let approx_time = baseline_time("approx", preset.approx_limit());
        let sweep = |solver: &str| -> Vec<f64> {
            eps_grid
                .iter()
                .map(|&e| timed_solver(solver, &g, k, &params_for(e, threads)).1)
                .collect()
        };
        let forest_times = sweep("forest");
        let schur_times = sweep("schur");

        let mut row: Vec<String> = vec![
            name.to_string(),
            n.to_string(),
            m.to_string(),
            tau.to_string(),
            tstar.to_string(),
            fmt_seconds(exact_time),
            fmt_seconds(approx_time),
        ];
        for t in forest_times {
            row.push(fmt_seconds(t));
        }
        for t in schur_times {
            row.push(fmt_seconds(t));
        }
        row.push(format!("{}/{}", spec.paper_nodes, spec.paper_edges));
        // Stream the row immediately (long runs stay inspectable/killable),
        // then add it to the final aligned table.
        eprintln!("[table2] row: {}", row.join(" | "));
        table.row(row);
    }
    println!("{table}");
    println!(
        "Note: '-' marks baselines skipped at this preset (EXACT > {} nodes, APPROX > {} nodes),",
        preset.exact_limit(),
        preset.approx_limit()
    );
    println!("mirroring the paper's own '-' entries where a baseline became infeasible.");
}
