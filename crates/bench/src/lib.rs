//! # cfcc-bench
//!
//! Shared harness utilities for the table/figure regeneration targets
//! (`benches/table2.rs`, `benches/fig1.rs` … `benches/ablation.rs`) and the
//! criterion microbenchmarks.
//!
//! ## Presets
//!
//! The environment variable `CFCC_PRESET` selects the workload ladder:
//!
//! * `smoke` (default) — minutes on a 2-core box; used by `cargo bench`.
//! * `paper` — the scale recorded in `EXPERIMENTS.md`.
//! * `full`  — largest ladder (hours); for completeness.
//!
//! All randomized algorithms run with fixed seeds, so outputs are
//! reproducible per preset.

#![forbid(unsafe_code)]

pub mod report;

use cfcc_core::{CfcmParams, Selection, SolveSession};
use cfcc_datasets::DatasetSpec;
use cfcc_graph::Graph;
use cfcc_util::Stopwatch;

/// Workload preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// CI-sized smoke ladder.
    Smoke,
    /// The ladder recorded in EXPERIMENTS.md.
    Paper,
    /// Largest ladder.
    Full,
}

impl Preset {
    /// Read from `CFCC_PRESET` (default `smoke`).
    pub fn from_env() -> Preset {
        match std::env::var("CFCC_PRESET")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "paper" => Preset::Paper,
            "full" => Preset::Full,
            _ => Preset::Smoke,
        }
    }

    /// Short name for banners.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Smoke => "smoke",
            Preset::Paper => "paper",
            Preset::Full => "full",
        }
    }

    /// Group size `k` used in Table II style timing runs.
    pub fn k(self) -> usize {
        match self {
            Preset::Smoke => 10,
            _ => 20,
        }
    }

    /// ε grid for Table II.
    pub fn epsilons(self) -> &'static [f64] {
        match self {
            Preset::Smoke => &[0.3],
            _ => &[0.3, 0.2, 0.15],
        }
    }

    /// Largest node count for which the dense EXACT baseline runs.
    pub fn exact_limit(self) -> usize {
        match self {
            Preset::Smoke => 1_100,
            Preset::Paper => 2_200,
            Preset::Full => 4_500,
        }
    }

    /// Largest node count for which the ApproxGreedy baseline runs.
    pub fn approx_limit(self) -> usize {
        match self {
            Preset::Smoke => 1_100,
            Preset::Paper => 4_500,
            Preset::Full => 40_000,
        }
    }

    /// Scale factor for a dataset so the harness fits the preset budget.
    /// `cap` is the target node ceiling for this experiment tier.
    pub fn scale_for(self, spec: &DatasetSpec, cap: usize) -> f64 {
        if spec.paper_nodes <= cap {
            1.0
        } else {
            (cap as f64 / spec.paper_nodes as f64).min(1.0)
        }
    }

    /// Node ceiling for Table II rows.
    pub fn table2_cap(self) -> usize {
        match self {
            Preset::Smoke => 2_100,
            Preset::Paper => 36_000,
            Preset::Full => 220_000,
        }
    }

    /// Node ceiling for the Fig. 2/3 effectiveness runs.
    pub fn effectiveness_cap(self) -> usize {
        match self {
            Preset::Smoke => 1_600,
            Preset::Paper => 22_000,
            Preset::Full => 110_000,
        }
    }
}

/// Load a dataset at the preset's scale for the given node cap, returning
/// the graph and the scale used.
pub fn load(spec: &DatasetSpec, preset: Preset, cap: usize) -> (Graph, f64) {
    let scale = preset.scale_for(spec, cap);
    (cfcc_datasets::generate(spec, scale), scale)
}

/// Run a registered solver by name on the harness path. All table/figure
/// targets dispatch through `cfcc_core::registry` via this helper — no
/// per-algorithm match anywhere in the harness.
pub fn run_solver(name: &str, g: &Graph, k: usize, params: &CfcmParams) -> Selection {
    SolveSession::new(g)
        .k(k)
        .solver(name)
        .params(params.clone())
        .run()
        .unwrap_or_else(|e| panic!("solver '{name}' failed: {e}"))
}

/// [`run_solver`] plus wall-clock seconds of the whole run.
pub fn timed_solver(name: &str, g: &Graph, k: usize, params: &CfcmParams) -> (Selection, f64) {
    let sw = Stopwatch::start();
    let sel = run_solver(name, g, k, params);
    (sel, sw.seconds())
}

/// Baseline CFCM parameters for harness runs at the given ε. The SDD
/// backend for grounded solves follows `CFCC_BACKEND`
/// (auto|dense-cholesky|cg-jacobi|sparse-cg, default auto), so every
/// table/figure target can be re-run per backend without code changes.
pub fn params_for(epsilon: f64, threads: usize) -> CfcmParams {
    let mut p = CfcmParams::with_epsilon(epsilon)
        .seed(0xBEEF)
        .threads(threads)
        .backend(backend_from_env());
    p.max_forests = 2048;
    p
}

/// SDD backend selection from `CFCC_BACKEND` (default `auto`). Unknown
/// names fail loudly — a bench silently falling back would record the
/// wrong experiment.
pub fn backend_from_env() -> cfcc_linalg::SddBackend {
    match std::env::var("CFCC_BACKEND") {
        Ok(name) => cfcc_linalg::SddBackend::parse(&name)
            .unwrap_or_else(|| panic!("CFCC_BACKEND='{name}' is not a registered SDD backend")),
        Err(_) => cfcc_linalg::SddBackend::Auto,
    }
}

/// Number of worker threads for sampling (leave one core for the OS).
pub fn harness_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get().saturating_sub(0).max(1))
}

/// Print the standard banner for a regeneration target.
pub fn banner(target: &str, paper_ref: &str, preset: Preset) {
    println!("==========================================================");
    println!("{target} — regenerates {paper_ref}");
    println!(
        "preset = {} (set CFCC_PRESET=smoke|paper|full); seeds fixed",
        preset.name()
    );
    println!("==========================================================");
}

/// Format a ratio like the paper's speed-up factors.
pub fn fmt_ratio(r: f64) -> String {
    if !r.is_finite() {
        "-".into()
    } else if r >= 100.0 {
        format!("{r:.0}x")
    } else {
        format!("{r:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parsing_defaults_to_smoke() {
        // Do not mutate the environment (tests run in parallel);
        // just check the default path and names.
        assert_eq!(Preset::Smoke.name(), "smoke");
        assert_eq!(Preset::Paper.k(), 20);
        assert_eq!(Preset::Smoke.k(), 10);
        assert_eq!(Preset::Smoke.epsilons(), &[0.3]);
        assert_eq!(Preset::Paper.epsilons().len(), 3);
    }

    #[test]
    fn scale_caps_nodes() {
        let spec = cfcc_datasets::spec("gowalla").unwrap();
        let s = Preset::Smoke.scale_for(spec, 2000);
        assert!(s < 0.02);
        let spec_small = cfcc_datasets::spec("euroroads").unwrap();
        assert_eq!(Preset::Smoke.scale_for(spec_small, 2000), 1.0);
    }

    #[test]
    fn load_respects_cap() {
        let spec = cfcc_datasets::spec("hamsterster").unwrap();
        let (g, scale) = load(spec, Preset::Smoke, 1000);
        assert!(g.num_nodes() <= 1001);
        assert!(scale <= 0.51);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(370.0), "370x");
        assert_eq!(fmt_ratio(2.53), "2.5x");
        assert_eq!(fmt_ratio(f64::NAN), "-");
    }

    #[test]
    fn run_solver_goes_through_the_registry() {
        let g = cfcc_datasets::karate();
        let p = params_for(0.3, 1);
        for name in ["schur", "exact", "degree"] {
            let sel = run_solver(name, &g, 2, &p);
            assert_eq!(sel.nodes.len(), 2, "{name}");
        }
        let (sel, secs) = timed_solver("forest", &g, 2, &p);
        assert_eq!(sel.nodes.len(), 2);
        assert!(secs >= 0.0);
    }
}
