//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! The perf trajectory of this repo is tracked by checked-in JSON files at
//! the workspace root — one per PR that claims a speedup. Emission is
//! hand-rolled over [`cfcc_util::json`] (no serde offline). The linalg
//! microbenchmark writes `BENCH_PR2.json` through this module; future
//! kernels should append their own `BenchReport` consumers rather than
//! inventing new formats.

use cfcc_util::json::{array, JsonObject};
use std::io::Write;

/// One before/after comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Kernel or pipeline under test (`gemm`, `cholesky`, `schur`, …).
    pub name: String,
    /// Problem size (matrix dimension).
    pub n: usize,
    /// Pre-rebuild (naive reference) wall-clock, milliseconds.
    pub baseline_ms: f64,
    /// Blocked-kernel wall-clock, milliseconds.
    pub blocked_ms: f64,
}

impl Comparison {
    /// Wall-clock improvement factor.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.blocked_ms
    }

    fn render(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .int("n", self.n as i128)
            .num("baseline_ms", self.baseline_ms)
            .num("blocked_ms", self.blocked_ms)
            .num("speedup", self.speedup())
            .render()
    }
}

/// A named collection of comparisons destined for a `BENCH_*.json` file.
#[derive(Debug, Default)]
pub struct BenchReport {
    entries: Vec<Comparison>,
}

impl BenchReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one comparison (also echoed to stdout by the caller).
    pub fn push(&mut self, name: &str, n: usize, baseline_ms: f64, blocked_ms: f64) {
        self.entries.push(Comparison {
            name: name.into(),
            n,
            baseline_ms,
            blocked_ms,
        });
    }

    /// Recorded comparisons.
    pub fn entries(&self) -> &[Comparison] {
        &self.entries
    }

    /// Render the full report document.
    pub fn render(&self, bench: &str, preset: &str) -> String {
        JsonObject::new()
            .str("bench", bench)
            .str("preset", preset)
            .str(
                "regenerate",
                &format!("CFCC_PRESET=paper cargo bench -p cfcc-bench --bench {bench}"),
            )
            .raw(
                "entries",
                array(self.entries.iter().map(Comparison::render)),
            )
            .render()
    }

    /// Write the report to `path` (pretty enough for diffs: one entry per
    /// line). Errors are surfaced, not swallowed — a bench that cannot
    /// record its result should fail loudly.
    pub fn write(&self, path: &str, bench: &str, preset: &str) -> std::io::Result<()> {
        let doc = self
            .render(bench, preset)
            .replace("},{", "},\n    {")
            .replace("\"entries\":[{", "\"entries\":[\n    {")
            .replace("}]}", "}\n]}");
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{doc}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_entries_and_speedup() {
        let mut r = BenchReport::new();
        r.push("gemm", 512, 40.0, 20.0);
        let doc = r.render("linalg", "smoke");
        assert!(doc.contains("\"name\":\"gemm\""));
        assert!(doc.contains("\"speedup\":2"));
        assert!(doc.contains("\"preset\":\"smoke\""));
        assert_eq!(r.entries()[0].speedup(), 2.0);
    }
}
