//! Backend-equivalence property tests for the unified `SddSolver` API:
//! `dense-cholesky`, `cg-jacobi`, the CSR/IC(0) `sparse-cg` backend, the
//! spanning-tree `tree-pcg` backend, and the low-stretch-tree
//! ultrasparsifier `lsst-pcg` backend must agree to ≤ 1e-8 *relative*
//! error on `solve_mat` (multi-column RHS — the iterative backends answer
//! it with blocked multi-RHS PCG), `diag_inverse`, and `trace_inverse`
//! over random connected graphs (seeded loops — the offline stand-in for
//! proptest). The loops iterate the live registry, so a future sixth
//! backend is covered the moment it is registered.

use cfcc_graph::{generators, Graph};
use cfcc_linalg::sdd::{backends, by_name, SddOptions};
use cfcc_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected test graph per trial (generators guarantee
/// connectivity for these families).
fn trial_graph(trial: u64, rng: &mut StdRng) -> Graph {
    match trial % 4 {
        0 => generators::barabasi_albert(60 + 9 * trial as usize, 3, rng),
        1 => generators::erdos_renyi_gnm(80, 320, rng),
        2 => generators::grid(9, 8),
        _ => generators::watts_strogatz(90, 6, 0.2, rng),
    }
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
}

#[test]
fn backends_agree_on_solve_mat_diag_and_trace() {
    // Guard against silently testing fewer backends than are registered.
    assert_eq!(backends().len(), 5, "registry grew: extend the doc above");
    let mut rng = StdRng::seed_from_u64(0x5DD0);
    let opts = SddOptions::with_tol(1e-12);
    for trial in 0..8u64 {
        let g = trial_graph(trial, &mut rng);
        let n = g.num_nodes();
        let mut in_s = vec![false; n];
        in_s[rng.gen_range(0..n as u32) as usize] = true;
        if trial % 2 == 0 {
            in_s[rng.gen_range(0..n as u32) as usize] = true;
        }
        let d = in_s.iter().filter(|&&s| !s).count();
        let mut rhs = DenseMatrix::zeros(d, 5);
        for i in 0..d {
            for j in 0..5 {
                rhs.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }

        // Reference: the direct dense factorization.
        let dense = backends()[0];
        assert_eq!(dense.name(), "dense-cholesky");
        let mut fd = dense.factor(&g, &in_s, &opts).unwrap();
        let x_ref = fd.solve_mat(&rhs).unwrap();
        let diag_ref = fd.diag_inverse().unwrap();
        let trace_ref = fd.trace_inverse().unwrap();

        for backend in &backends()[1..] {
            let mut f = backend.factor(&g, &in_s, &opts).unwrap();
            assert_eq!(f.dim(), d, "{}", backend.name());
            let x = f.solve_mat(&rhs).unwrap();
            let scale = x_ref
                .data()
                .iter()
                .fold(0.0f64, |m, &v| m.max(v.abs()))
                .max(f64::MIN_POSITIVE);
            for i in 0..d {
                for j in 0..5 {
                    assert!(
                        (x.get(i, j) - x_ref.get(i, j)).abs() / scale <= 1e-8,
                        "{} trial {trial}: solve_mat[{i}][{j}] {} vs {}",
                        backend.name(),
                        x.get(i, j),
                        x_ref.get(i, j)
                    );
                }
            }
            let diag = f.diag_inverse().unwrap();
            for i in 0..d {
                assert!(
                    rel_err(diag[i], diag_ref[i]) <= 1e-8,
                    "{} trial {trial}: diag_inverse[{i}] {} vs {}",
                    backend.name(),
                    diag[i],
                    diag_ref[i]
                );
            }
            let trace = f.trace_inverse().unwrap();
            assert!(
                rel_err(trace, trace_ref) <= 1e-8,
                "{} trial {trial}: trace {trace} vs {trace_ref}",
                backend.name()
            );
        }
    }
}

#[test]
fn backends_agree_after_regrounding_a_larger_set() {
    // Greedy-style usage: refactor with a grown S and re-check agreement
    // (the compact index space shifts under the callers' feet — the
    // factors must present the same kept-node ordering).
    let mut rng = StdRng::seed_from_u64(0x5DD1);
    let g = generators::barabasi_albert(70, 2, &mut rng);
    let opts = SddOptions::with_tol(1e-12);
    let mut in_s = vec![false; 70];
    for step in 0..3 {
        in_s[7 * (step + 1)] = true;
        let mut traces = Vec::new();
        let mut kepts = Vec::new();
        for backend in backends() {
            let mut f = backend.factor(&g, &in_s, &opts).unwrap();
            kepts.push(f.kept_nodes().to_vec());
            traces.push(f.trace_inverse().unwrap());
        }
        assert_eq!(kepts[0], kepts[1]);
        assert_eq!(kepts[0], kepts[2]);
        for t in &traces[1..] {
            assert!(rel_err(*t, traces[0]) <= 1e-8, "step {step}: {traces:?}");
        }
    }
}

#[test]
fn sparse_backend_handles_a_path_graph_ill_conditioning() {
    // Path graphs are the CG-hostile case (condition number ~ n²); the
    // IC(0) preconditioner must still reach the tolerance quickly.
    let g = generators::path(600);
    let mut in_s = vec![false; 600];
    in_s[0] = true;
    let sparse = backends()[2];
    assert_eq!(sparse.name(), "sparse-cg");
    let mut f = sparse
        .factor(&g, &in_s, &SddOptions::with_tol(1e-10))
        .unwrap();
    let b = vec![1.0; 599];
    let x = f.solve_vec(&b).unwrap();
    // Grounded path solution against e.g. the known closed form of the
    // all-ones RHS: x_i = sum over j of min(i,j) relation; just check the
    // residual directly instead.
    let dense_backend = backends()[0];
    let mut fd = dense_backend
        .factor(&g, &in_s, &SddOptions::default())
        .unwrap();
    let x_ref = fd.solve_vec(&b).unwrap();
    let scale = x_ref.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    for i in 0..599 {
        assert!((x[i] - x_ref[i]).abs() / scale <= 1e-8, "i={i}");
    }
    // IC(0) is exact on a path, so PCG needs only a handful of iterations
    // where Jacobi-CG needs O(n).
    assert!(
        f.stats().iterations <= 5,
        "IC(0) on a tree should converge immediately, took {}",
        f.stats().iterations
    );
}

#[test]
fn tree_pcg_cuts_iterations_on_a_mesh() {
    // The combinatorial preconditioner's reason to exist: on a
    // large-diameter grid the spanning tree carries long-range
    // connectivity that the Jacobi diagonal cannot, so PCG converges in
    // decisively fewer iterations (BENCH_PR4 records the same at 8k+
    // nodes in release mode).
    let g = generators::grid(40, 40);
    let mut in_s = vec![false; 1600];
    in_s[0] = true;
    let opts = SddOptions::with_tol(1e-8);
    let mut rng = StdRng::seed_from_u64(0x9D1D);
    let b: Vec<f64> = (0..1599).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut iters = Vec::new();
    let mut solutions = Vec::new();
    for name in ["cg-jacobi", "tree-pcg"] {
        let mut f = by_name(name).unwrap().factor(&g, &in_s, &opts).unwrap();
        solutions.push(f.solve_vec(&b).unwrap());
        iters.push(f.stats().iterations);
    }
    assert!(
        iters[1] < iters[0],
        "tree-pcg {} vs cg-jacobi {} iterations",
        iters[1],
        iters[0]
    );
    let scale = solutions[0].iter().fold(1e-30f64, |m, &v| m.max(v.abs()));
    for (a, c) in solutions[0].iter().zip(&solutions[1]) {
        assert!((a - c).abs() / scale <= 1e-7, "{a} vs {c}");
    }
}
