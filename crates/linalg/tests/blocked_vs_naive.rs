//! Property tests for the blocked kernel engine: seeded random matrices
//! across sizes straddling every block boundary (`MR`/`NR` tiles, `NB`
//! panels, `MC`/`KC`/`NC` cache blocks), compared against the retained
//! naive reference kernels to ≤ 1e-9 *relative* error, plus bit-level
//! determinism across thread counts.

use cfcc_linalg::dense::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizes chosen to hit remainder tiles and cross the panel width `NB = 64`
/// and the `MC = 128` row block.
const SIZES: &[usize] = &[1, 2, 3, 5, 17, 31, 64, 65, 97, 130, 150];

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m.set(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    m
}

/// Random SPD matrix: `AᵀA + n·I` for a random square `A`.
fn random_spd(rng: &mut StdRng, n: usize) -> DenseMatrix {
    let a = random_matrix(rng, n, n);
    let mut spd = a.gram();
    spd.add_ridge(n as f64);
    spd
}

fn rel_diff(got: &DenseMatrix, want: &DenseMatrix) -> f64 {
    let scale = want.data().iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
    got.max_abs_diff(want) / scale
}

#[test]
fn blocked_gemm_matches_naive_reference() {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for &n in SIZES {
        // Rectangular shapes around n exercise non-square panels too.
        let (m, k) = (n + 3, (2 * n).max(1));
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let want = a.matmul_naive(&b);
        for threads in [1, 4] {
            let got = a.matmul_threaded(&b, threads);
            assert!(
                rel_diff(&got, &want) < 1e-9,
                "gemm m={m} n={n} k={k} threads={threads}"
            );
        }
    }
}

#[test]
fn blocked_syrk_matches_naive_gram() {
    let mut rng = StdRng::seed_from_u64(0x57AC);
    for &n in SIZES {
        let a = random_matrix(&mut rng, n + 7, n);
        let want = a.transpose().matmul_naive(&a);
        let got = a.gram();
        assert!(rel_diff(&got, &want) < 1e-9, "syrk/gram n={n}");
    }
}

#[test]
fn blocked_cholesky_matches_naive_on_random_spd() {
    let mut rng = StdRng::seed_from_u64(0xC401);
    for &n in SIZES {
        let spd = random_spd(&mut rng, n);
        let blocked = spd.cholesky().expect("blocked SPD factor");
        let naive = spd.cholesky_naive().expect("naive SPD factor");
        for i in 0..n {
            for j in 0..=i {
                let (b, v) = (blocked.factor_get(i, j), naive.factor_get(i, j));
                assert!(
                    (b - v).abs() <= 1e-9 * v.abs().max(1.0),
                    "L[{i},{j}] blocked {b} vs naive {v} (n={n})"
                );
            }
        }
        // And the factor actually reconstructs A.
        let l = DenseMatrix::from_vec(
            n,
            n,
            (0..n * n)
                .map(|ix| blocked.factor_get(ix / n, ix % n))
                .collect(),
        );
        let rec = l.matmul(&l.transpose());
        assert!(rel_diff(&rec, &spd) < 1e-9, "reconstruction n={n}");
    }
}

#[test]
fn blocked_solve_mat_matches_naive_inverse_product() {
    let mut rng = StdRng::seed_from_u64(0x501E);
    for &n in SIZES {
        let spd = random_spd(&mut rng, n);
        let b = random_matrix(&mut rng, n, (n / 2).max(1));
        let ch = spd.cholesky().unwrap();
        let x = ch.solve_mat(&b);
        // Oracle: naive inverse times B with the naive product.
        let want = spd
            .cholesky_naive()
            .unwrap()
            .inverse_naive()
            .matmul_naive(&b);
        assert!(rel_diff(&x, &want) < 1e-9, "solve_mat n={n}");
        // Residual check independent of the oracle.
        let ax = spd.matmul(&x);
        assert!(rel_diff(&ax, &b) < 1e-9, "residual n={n}");
    }
}

#[test]
fn blocked_inverse_matches_naive_inverse() {
    let mut rng = StdRng::seed_from_u64(0x1EF5);
    for &n in SIZES {
        let spd = random_spd(&mut rng, n);
        let got = spd.cholesky().unwrap().inverse();
        let want = spd.cholesky_naive().unwrap().inverse_naive();
        assert!(rel_diff(&got, &want) < 1e-9, "inverse n={n}");
    }
}

#[test]
fn lu_solve_mat_matches_inverse_product() {
    let mut rng = StdRng::seed_from_u64(0x10F5);
    for &n in SIZES {
        let a = {
            let mut m = random_matrix(&mut rng, n, n);
            m.add_ridge(2.0 * n as f64); // diagonally dominant ⇒ invertible
            m
        };
        let b = random_matrix(&mut rng, n, (n / 3).max(1));
        let lu = a.lu().unwrap();
        let x = lu.solve_mat(&b);
        let ax = a.matmul(&x);
        assert!(rel_diff(&ax, &b) < 1e-9, "lu solve_mat residual n={n}");
    }
}

#[test]
fn kernels_are_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0xDE7E);
    let n = 140;
    let a = random_matrix(&mut rng, n, n);
    let b = random_matrix(&mut rng, n, n);
    let spd = random_spd(&mut rng, n);
    let serial_mm = a.matmul_threaded(&b, 1);
    let serial_ch = spd.cholesky_threaded(1).unwrap();
    let serial_inv = serial_ch.inverse_threaded(1);
    for threads in [2, 4] {
        assert_eq!(
            a.matmul_threaded(&b, threads).data(),
            serial_mm.data(),
            "matmul threads={threads}"
        );
        let ch = spd.cholesky_threaded(threads).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    ch.factor_get(i, j),
                    serial_ch.factor_get(i, j),
                    "cholesky factor threads={threads} at ({i},{j})"
                );
            }
        }
        assert_eq!(
            ch.inverse_threaded(threads).data(),
            serial_inv.data(),
            "inverse threads={threads}"
        );
    }
}

#[test]
fn lu_solve_mat_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let n = 150;
    let a = {
        let mut m = random_matrix(&mut rng, n, n);
        m.add_ridge(2.0 * n as f64);
        m
    };
    let b = random_matrix(&mut rng, n, 40);
    let lu = a.lu().unwrap();
    let serial = lu.solve_mat_threaded(&b, 1);
    for threads in [2, 4] {
        assert_eq!(
            lu.solve_mat_threaded(&b, threads).data(),
            serial.data(),
            "lu solve_mat threads={threads}"
        );
    }
}
