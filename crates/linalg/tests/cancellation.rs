//! Breakdown-path tests for mid-solve cancellation across all three
//! iterative backends (`cg-jacobi`, `sparse-cg`, `tree-pcg`):
//!
//! * a hook that fires on the very first poll interrupts at iteration 0
//!   with a typed error, not a poisoned result;
//! * hooks firing at arbitrary points across the convergence range —
//!   including mid-deflation, while the blocked PCG is retiring converged
//!   columns — leave the partial iterate warm-start consistent: clearing
//!   the hook and re-solving the same buffers converges to the dense
//!   reference, in no more (and near convergence strictly fewer)
//!   iterations than a cold solve;
//! * both installation seams behave identically: `SddOptions::stop` at
//!   factor time and `SddFactor::set_stop` on a live factor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cfcc_graph::generators;
use cfcc_linalg::sdd::{by_name, SddOptions};
use cfcc_linalg::{DenseMatrix, LinalgError, StopCause, StopHook};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERATIVE: [&str; 3] = ["cg-jacobi", "sparse-cg", "tree-pcg"];

/// A hook that fires `cause` on the `nth` poll (1-based) and counts.
fn nth_poll_hook(nth: u64, cause: StopCause) -> (StopHook, Arc<AtomicU64>) {
    let count = Arc::new(AtomicU64::new(0));
    let probe = Arc::clone(&count);
    let hook = StopHook::new(move || {
        if probe.fetch_add(1, Ordering::Relaxed) + 1 >= nth {
            Some(cause)
        } else {
            None
        }
    });
    (hook, count)
}

#[test]
fn immediate_cancel_interrupts_at_iteration_zero() {
    let mut rng = StdRng::seed_from_u64(0xCA0);
    let g = generators::barabasi_albert(120, 3, &mut rng);
    let mut in_s = vec![false; 120];
    in_s[7] = true;
    let b = vec![1.0; 119];
    for name in ITERATIVE {
        // Seam 1: the hook rides in at factor time through SddOptions.
        let opts = SddOptions {
            stop: StopHook::new(|| Some(StopCause::Cancelled)),
            ..SddOptions::with_tol(1e-10)
        };
        let mut f = by_name(name).unwrap().factor(&g, &in_s, &opts).unwrap();
        let err = f.solve_vec(&b).unwrap_err();
        assert!(
            matches!(err, LinalgError::Cancelled { iterations: 0 }),
            "{name}: {err:?}"
        );
        assert!(err.is_interruption(), "{name}");
        // The aborted solve still folded its (zero) partial work into the
        // cumulative stats instead of losing the accounting.
        assert_eq!(f.stats().solves, 1, "{name}");
        assert_eq!(f.stats().iterations, 0, "{name}");

        // Seam 2: same behavior when installed on a live factor, and a
        // deadline cause keeps its identity.
        let mut f = by_name(name)
            .unwrap()
            .factor(&g, &in_s, &SddOptions::with_tol(1e-10))
            .unwrap();
        f.set_stop(StopHook::new(|| Some(StopCause::DeadlineExceeded)));
        let err = f.solve_vec(&b).unwrap_err();
        assert!(
            matches!(err, LinalgError::DeadlineExceeded { iterations: 0 }),
            "{name}: {err:?}"
        );
        // Clearing the hook restores the factor for reuse.
        f.set_stop(StopHook::none());
        f.solve_vec(&b).unwrap();
    }
}

#[test]
fn aborted_block_solve_resumes_from_the_partial_iterate() {
    let mut rng = StdRng::seed_from_u64(0xCA1);
    let g = generators::grid(18, 17);
    let n = 18 * 17;
    let mut in_s = vec![false; n];
    in_s[0] = true;
    in_s[151] = true;
    let d = n - 2;
    // Columns of very different scales so they converge (and deflate) at
    // different iterations — abort points then land mid-compaction.
    let w = 8;
    let mut rhs = DenseMatrix::zeros(d, w);
    for j in 0..w {
        let scale = 10f64.powi(j as i32 - 4);
        for i in 0..d {
            rhs.set(i, j, scale * rng.gen_range(-1.0..1.0f64));
        }
    }
    let opts = SddOptions::with_tol(1e-10);
    let mut x_ref = DenseMatrix::zeros(d, w);
    by_name("dense-cholesky")
        .unwrap()
        .factor(&g, &in_s, &SddOptions::default())
        .unwrap()
        .solve_mat_into(&rhs, &mut x_ref)
        .unwrap();
    let ref_scale = x_ref
        .data()
        .iter()
        .fold(f64::MIN_POSITIVE, |m, &v| m.max(v.abs()));

    for name in ITERATIVE {
        let backend = by_name(name).unwrap();
        // Cold run with a counting, never-firing hook: `cold_iters` is the
        // stats yardstick, `total_polls` the number of block sweeps (the
        // hook fires once per sweep, not once per column-iteration).
        let mut f = backend.factor(&g, &in_s, &opts).unwrap();
        let (hook, polls) = nth_poll_hook(u64::MAX, StopCause::Cancelled);
        f.set_stop(hook);
        let mut x = DenseMatrix::zeros(d, w);
        f.solve_mat_into(&rhs, &mut x).unwrap();
        let cold_iters = f.stats().iterations;
        let total_polls = polls.load(Ordering::Relaxed) as usize;
        assert!(
            total_polls > 4,
            "{name}: trivial convergence ({total_polls})"
        );

        // Abort at poll counts spanning start, middle (deflation
        // territory), and near-convergence.
        let aborts = [1, 2, total_polls / 4, total_polls / 2, total_polls - 1];
        for &nth in aborts.iter().filter(|&&k| k >= 1) {
            let mut f = backend.factor(&g, &in_s, &opts).unwrap();
            let (hook, polls) = nth_poll_hook(nth as u64, StopCause::DeadlineExceeded);
            f.set_stop(hook);
            let mut x = DenseMatrix::zeros(d, w);
            let err = f.solve_mat_into(&rhs, &mut x).unwrap_err();
            assert!(
                matches!(err, LinalgError::DeadlineExceeded { .. }),
                "{name} abort@{nth}: {err:?}"
            );
            assert!(polls.load(Ordering::Relaxed) >= nth as u64, "{name}");
            let aborted_iters = f.stats().iterations;

            // Resume: clear the hook and re-solve the same buffers. The
            // partial iterate is the warm start; the result must match the
            // dense reference and never redo the completed sweeps.
            f.set_stop(StopHook::none());
            f.solve_mat_into(&rhs, &mut x).unwrap();
            let resumed_iters = f.stats().iterations - aborted_iters;
            for i in 0..d {
                for j in 0..w {
                    assert!(
                        (x.get(i, j) - x_ref.get(i, j)).abs() / ref_scale <= 1e-7,
                        "{name} abort@{nth}: x[{i}][{j}] {} vs {}",
                        x.get(i, j),
                        x_ref.get(i, j)
                    );
                }
            }
            assert!(
                resumed_iters <= cold_iters + 2,
                "{name} abort@{nth}: resume took {resumed_iters} vs cold {cold_iters}"
            );
            if nth >= total_polls - 1 {
                // Aborted on the brink of convergence: the resume must be
                // decisively cheaper than starting over.
                assert!(
                    resumed_iters < cold_iters / 2,
                    "{name} abort@{nth}: near-converged resume took {resumed_iters} \
                     vs cold {cold_iters} — warm start not honored"
                );
            }
        }
    }
}

#[test]
fn direct_backend_ignores_stop_hooks() {
    // dense-cholesky has no iterations to interrupt; a firing hook must
    // not break it (set_stop is a documented no-op there).
    let g = generators::cycle(40);
    let mut in_s = vec![false; 40];
    in_s[3] = true;
    let opts = SddOptions {
        stop: StopHook::new(|| Some(StopCause::Cancelled)),
        ..SddOptions::default()
    };
    let mut f = by_name("dense-cholesky")
        .unwrap()
        .factor(&g, &in_s, &opts)
        .unwrap();
    f.set_stop(StopHook::new(|| Some(StopCause::Cancelled)));
    f.solve_vec(&vec![1.0; 39]).unwrap();
}
