//! Row-major dense matrices with blocked Cholesky and LU factorizations.
//!
//! # DESIGN — the dense layer after the blocked-kernel rebuild
//!
//! All `O(n³)` work routes through the packed kernels in [`crate::kernel`]
//! (tiled GEMM, SYRK, blocked triangular solves); see that module for block
//! sizes and packing layout. The seed's scalar loops survive only as the
//! `*_naive` reference kernels that the property tests and the
//! `benches/linalg.rs` before/after microbenchmarks compare against.
//!
//! **Factor vs inverse.** Callers should *factor once and solve many*:
//!
//! * `A⁻¹ B` → [`Cholesky::solve_mat`] / [`Lu::solve_mat`] (two blocked
//!   triangular solves; never forms `A⁻¹`);
//! * `A⁻¹ b` → [`Cholesky::solve_vec`] / [`Lu::solve`];
//! * `diag(A⁻¹)` → [`Cholesky::diag_inverse`] (`n³/2` via the triangular
//!   factor only); `Tr(A⁻¹)` → [`Cholesky::trace_inverse`].
//!
//! Form an explicit [`Cholesky::inverse`] only when the algorithm truly
//! consumes arbitrary inverse *entries* — the greedy baselines' rank-one
//! maintained `M = L_{-S}^{-1}` (`remove_index`, Sherman–Morrison edge
//! updates) and the `Σ̃^{-1}` whose entries SchurDelta's quadratic forms
//! read. Even then the inverse is built from blocked kernels
//! (`L⁻¹` by a blocked forward solve of `I`, then `L⁻ᵀL⁻¹` by SYRK).

use crate::error::LinalgError;
use crate::kernel::{self, View, NB};
use crate::vector;

/// Row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for DenseMatrix {
    /// The empty `0 × 0` matrix — the natural seed for workspace buffers
    /// that [`DenseMatrix::reshape`] to their first real size on use.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a slice of rows (each `cols` long).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Add to an element.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major data, mutable (workspace reuse in hot loops).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reset every entry to zero (reusable output buffers).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape in place (contents unspecified afterwards); shrinking never
    /// reallocates, so workspace buffers can follow a shrinking problem —
    /// e.g. the greedy loops' rank-one removal ping-pong.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vector::dot(self.row(i), x);
        }
    }

    /// Matrix product `A · B` via the blocked packed kernels.
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        self.matmul_threaded(b, 1)
    }

    /// [`DenseMatrix::matmul`] with `threads` scoped row panels.
    /// Bit-identical to the serial product for every thread count.
    pub fn matmul_threaded(&self, b: &DenseMatrix, threads: usize) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        self.matmul_into(b, &mut out, threads);
        out
    }

    /// `out = A · B` into a caller-owned buffer (workspace reuse); `out`
    /// must already have shape `self.rows × b.cols`.
    pub fn matmul_into(&self, b: &DenseMatrix, out: &mut DenseMatrix, threads: usize) {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        assert_eq!(out.rows, self.rows);
        assert_eq!(out.cols, b.cols);
        out.fill_zero();
        kernel::gemm_acc(
            &mut out.data,
            0,
            out.cols,
            View::new(&self.data, 0, self.cols),
            View::new(&b.data, 0, b.cols),
            self.rows,
            b.cols,
            self.cols,
            1.0,
            threads,
        );
    }

    /// `self += alpha · A · B` (accumulating GEMM on an existing matrix).
    pub fn gemm_acc(&mut self, a: &DenseMatrix, b: &DenseMatrix, alpha: f64, threads: usize) {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        assert_eq!(self.rows, a.rows);
        assert_eq!(self.cols, b.cols);
        kernel::gemm_acc(
            &mut self.data,
            0,
            self.cols,
            View::new(&a.data, 0, a.cols),
            View::new(&b.data, 0, b.cols),
            a.rows,
            b.cols,
            a.cols,
            alpha,
            threads,
        );
    }

    /// Pre-rebuild reference product (`ikj` scalar loops with the zero
    /// branch) — retained as the property-test and benchmark baseline.
    pub fn matmul_naive(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                for j in 0..b.cols {
                    orow[j] += aik * brow[j];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// `AᵀA` via a SYRK on the transposed view (lower triangle computed,
    /// then mirrored).
    pub fn gram(&self) -> DenseMatrix {
        let n = self.cols;
        let mut out = DenseMatrix::zeros(n, n);
        kernel::syrk_lower_acc(
            &mut out.data,
            0,
            n,
            View::new(&self.data, 0, self.cols).t(),
            n,
            self.rows,
            1.0,
            1,
        );
        kernel::mirror_lower(&mut out.data, 0, n, n);
        out
    }

    /// Max absolute entry difference with `other` (test helper).
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Symmetrize in place: `A ← (A + Aᵀ)/2` (square matrices only).
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = 0.5 * (self.data[i * n + j] + self.data[j * n + i]);
                self.data[i * n + j] = v;
                self.data[j * n + i] = v;
            }
        }
    }

    /// Add `lambda` to the diagonal.
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += lambda;
        }
    }

    /// Blocked right-looking Cholesky factorization `A = L Lᵀ` of a
    /// symmetric positive-definite matrix (lower triangle referenced).
    ///
    /// Panels of [`NB`] columns: scalar factorization of the diagonal
    /// block, a vectorized triangular solve of the panel below it, and a
    /// SYRK trailing update carrying all the `O(n³)` flops.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        self.cholesky_threaded(1)
    }

    /// [`DenseMatrix::cholesky`] with the trailing SYRK updates split
    /// across `threads` scoped row panels (bit-identical results).
    pub fn cholesky_threaded(&self, threads: usize) -> Result<Cholesky, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        // Copy the lower triangle; the strict upper stays zero.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            l[i * n..i * n + i + 1].copy_from_slice(&self.data[i * n..i * n + i + 1]);
        }
        let mut panel = Vec::new();
        for k0 in (0..n).step_by(NB) {
            let k1 = (k0 + NB).min(n);
            // Diagonal block: scalar Cholesky on rows/cols k0..k1 (all
            // contributions from columns < k0 were subtracted by earlier
            // trailing updates).
            for i in k0..k1 {
                for j in k0..=i {
                    let mut sum = l[i * n + j];
                    sum -= vector::dot(&l[i * n + k0..i * n + j], &l[j * n + k0..j * n + j]);
                    if i == j {
                        if sum <= 0.0 || !sum.is_finite() {
                            return Err(LinalgError::NotPositiveDefinite { row: i, pivot: sum });
                        }
                        l[i * n + i] = sum.sqrt();
                    } else {
                        l[i * n + j] = sum / l[j * n + j];
                    }
                }
            }
            if k1 == n {
                break;
            }
            // Panel solve: L21 · L11ᵀ = A21, row-wise forward substitution
            // over contiguous row segments.
            for i in k1..n {
                for j in k0..k1 {
                    let s = vector::dot(&l[i * n + k0..i * n + j], &l[j * n + k0..j * n + j]);
                    l[i * n + j] = (l[i * n + j] - s) / l[j * n + j];
                }
            }
            // Trailing update: A22.lower −= L21 · L21ᵀ. L21 is copied to a
            // scratch panel (the kernels may not read and write `l` at
            // once), which doubles as its packing.
            let m2 = n - k1;
            let nb = k1 - k0;
            panel.clear();
            panel.reserve(m2 * nb);
            for i in k1..n {
                panel.extend_from_slice(&l[i * n + k0..i * n + k1]);
            }
            kernel::syrk_lower_acc(
                &mut l,
                k1 * n + k1,
                n,
                View::new(&panel, 0, nb),
                m2,
                nb,
                -1.0,
                threads,
            );
        }
        Ok(Cholesky { n, l })
    }

    /// Pre-rebuild scalar Cholesky — retained as the property-test and
    /// benchmark baseline.
    pub fn cholesky_naive(&self) -> Result<Cholesky, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.data[i * n + j];
                sum -= vector::dot(&l[i * n..i * n + j], &l[j * n..j * n + j]);
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { row: i, pivot: sum });
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// LU factorization with partial pivoting (for possibly-indefinite
    /// matrices such as estimated Schur complements before regularization).
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        assert_eq!(self.rows, self.cols, "lu requires a square matrix");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // pivot search
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(LinalgError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor;
                if factor != 0.0 {
                    // Split the borrow: copy row k's tail is avoided by raw indexing.
                    for j in (k + 1)..n {
                        a[i * n + j] -= factor * a[k * n + j];
                    }
                }
            }
        }
        Ok(Lu { n, lu: a, piv })
    }
}

/// Blocked forward substitution `L Y = B` on a row-major multi-RHS buffer
/// (`b` is `n × r`). `l` holds the lower-triangular factor row-major;
/// `unit` treats the diagonal as ones (LU's L factor).
fn forward_solve_mat(l: &[f64], n: usize, unit: bool, b: &mut [f64], r: usize, threads: usize) {
    let mut block = Vec::new();
    for k0 in (0..n).step_by(NB) {
        let k1 = (k0 + NB).min(n);
        // Diagonal block: row-wise substitution with contiguous axpys.
        for i in k0..k1 {
            let (head, tail) = b.split_at_mut(i * r);
            let bi = &mut tail[..r];
            for t in k0..i {
                let c = l[i * n + t];
                if c != 0.0 {
                    for (x, &y) in bi.iter_mut().zip(&head[t * r..t * r + r]) {
                        *x -= c * y;
                    }
                }
            }
            if !unit {
                let inv = 1.0 / l[i * n + i];
                for x in bi.iter_mut() {
                    *x *= inv;
                }
            }
        }
        if k1 == n {
            break;
        }
        // Trailing update: B[k1.., :] −= L[k1.., k0..k1] · Y[k0..k1, :].
        // The solved block is copied out so the kernel's B operand does not
        // alias its output rows.
        block.clear();
        block.extend_from_slice(&b[k0 * r..k1 * r]);
        kernel::gemm_acc(
            b,
            k1 * r,
            r,
            View::new(l, k1 * n + k0, n),
            View::new(&block, 0, r),
            n - k1,
            r,
            k1 - k0,
            -1.0,
            threads,
        );
    }
}

/// Blocked forward solve `L T = I` specialized to the identity RHS:
/// `T = L^{-1}` is itself lower triangular, so every block step only
/// touches columns `0..k1` — half the flops of the general multi-RHS
/// solve. `b` must hold the identity on entry.
fn forward_solve_identity(l: &[f64], n: usize, b: &mut [f64], threads: usize) {
    let mut block = Vec::new();
    for k0 in (0..n).step_by(NB) {
        let k1 = (k0 + NB).min(n);
        // Diagonal block rows, restricted to the live columns 0..k1.
        for i in k0..k1 {
            let (head, tail) = b.split_at_mut(i * n);
            let bi = &mut tail[..k1];
            for t in k0..i {
                let c = l[i * n + t];
                if c != 0.0 {
                    for (x, &y) in bi.iter_mut().zip(&head[t * n..t * n + k1]) {
                        *x -= c * y;
                    }
                }
            }
            let inv = 1.0 / l[i * n + i];
            for x in bi.iter_mut() {
                *x *= inv;
            }
        }
        if k1 == n {
            break;
        }
        // Trailing update on columns 0..k1 only: rows ≥ k1 of T are zero
        // there until their own block solves them.
        let nb = k1 - k0;
        block.clear();
        block.reserve(nb * k1);
        for i in k0..k1 {
            block.extend_from_slice(&b[i * n..i * n + k1]);
        }
        kernel::gemm_acc(
            b,
            k1 * n,
            n,
            View::new(l, k1 * n + k0, n),
            View::new(&block, 0, k1),
            n - k1,
            k1,
            nb,
            -1.0,
            threads,
        );
    }
}

/// Blocked backward substitution `Lᵀ X = Y` on a row-major multi-RHS
/// buffer (`b` is `n × r`), `l` as in [`forward_solve_mat`].
fn backward_solve_lt_mat(l: &[f64], n: usize, b: &mut [f64], r: usize, threads: usize) {
    let mut block = Vec::new();
    let nblocks = n.div_ceil(NB);
    for bi in (0..nblocks).rev() {
        let k0 = bi * NB;
        let k1 = (k0 + NB).min(n);
        // Diagonal block, bottom-up.
        for i in (k0..k1).rev() {
            let (head, tail) = b.split_at_mut((i + 1) * r);
            let bi_row = &mut head[i * r..];
            for t in (i + 1)..k1 {
                let c = l[t * n + i];
                if c != 0.0 {
                    let yt = &tail[(t - i - 1) * r..(t - i) * r];
                    for (x, &y) in bi_row.iter_mut().zip(yt) {
                        *x -= c * y;
                    }
                }
            }
            let inv = 1.0 / l[i * n + i];
            for x in bi_row.iter_mut() {
                *x *= inv;
            }
        }
        if k0 == 0 {
            break;
        }
        // Propagate up: B[..k0, :] −= L[k0..k1, ..k0]ᵀ · X[k0..k1, :].
        block.clear();
        block.extend_from_slice(&b[k0 * r..k1 * r]);
        kernel::gemm_acc(
            b,
            0,
            r,
            View::new(l, k0 * n, n).t(),
            View::new(&block, 0, r),
            k0,
            r,
            k1 - k0,
            -1.0,
            threads,
        );
    }
}

/// Blocked backward substitution `U X = Y` for a full (non-unit) upper
/// factor stored row-major in `lu` (the LU path).
fn backward_solve_u_mat(lu: &[f64], n: usize, b: &mut [f64], r: usize, threads: usize) {
    let mut block = Vec::new();
    let nblocks = n.div_ceil(NB);
    for bi in (0..nblocks).rev() {
        let k0 = bi * NB;
        let k1 = (k0 + NB).min(n);
        for i in (k0..k1).rev() {
            let (head, tail) = b.split_at_mut((i + 1) * r);
            let bi_row = &mut head[i * r..];
            for t in (i + 1)..k1 {
                let c = lu[i * n + t];
                if c != 0.0 {
                    let yt = &tail[(t - i - 1) * r..(t - i) * r];
                    for (x, &y) in bi_row.iter_mut().zip(yt) {
                        *x -= c * y;
                    }
                }
            }
            let inv = 1.0 / lu[i * n + i];
            for x in bi_row.iter_mut() {
                *x *= inv;
            }
        }
        if k0 == 0 {
            break;
        }
        // B[..k0, :] −= U[..k0, k0..k1] · X[k0..k1, :].
        block.clear();
        block.extend_from_slice(&b[k0 * r..k1 * r]);
        kernel::gemm_acc(
            b,
            0,
            r,
            View::new(lu, k0, n),
            View::new(&block, 0, r),
            k0,
            r,
            k1 - k0,
            -1.0,
            threads,
        );
    }
}

/// Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Lower-triangular factor, row-major, upper part zero.
    l: Vec<f64>,
}

impl Cholesky {
    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry of the factor.
    pub fn factor_get(&self, i: usize, j: usize) -> f64 {
        self.l[i * self.n + j]
    }

    /// Solve `A x = b` in place (`b` becomes `x`).
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let l = &self.l;
        // forward: L y = b
        for i in 0..n {
            let s = vector::dot(&l[i * n..i * n + i], &b[..i]);
            b[i] = (b[i] - s) / l[i * n + i];
        }
        // backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * b[k];
            }
            b[i] = s / l[i * n + i];
        }
    }

    /// Alias of [`Cholesky::solve_in_place`] matching the `solve_mat` /
    /// `solve_vec` naming of the factor-once/solve-many surface.
    pub fn solve_vec(&self, b: &mut [f64]) {
        self.solve_in_place(b);
    }

    /// Solve returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Multi-RHS solve `A X = B` in place (`b` becomes `X`), via blocked
    /// forward + backward triangular substitution — factor once, solve
    /// many, never forming `A⁻¹`.
    pub fn solve_mat_in_place(&self, b: &mut DenseMatrix, threads: usize) {
        assert_eq!(b.rows, self.n, "RHS row count must match the factor");
        forward_solve_mat(&self.l, self.n, false, &mut b.data, b.cols, threads);
        backward_solve_lt_mat(&self.l, self.n, &mut b.data, b.cols, threads);
    }

    /// Multi-RHS solve returning a fresh matrix.
    pub fn solve_mat(&self, b: &DenseMatrix) -> DenseMatrix {
        let mut x = b.clone();
        self.solve_mat_in_place(&mut x, 1);
        x
    }

    /// `log det A = 2 Σ log L_ii` (used by matrix-forest-theorem tests).
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// `Tr(A^{-1}) = ‖L^{-1}‖_F²` via triangular inversion only — roughly
    /// 3× cheaper than forming the full inverse. This is the kernel behind
    /// exact CFCC evaluation (`C(S) = n / Tr(L_{-S}^{-1})`).
    pub fn trace_inverse(&self) -> f64 {
        self.diag_inverse().iter().sum()
    }

    /// `diag(A^{-1})` without forming `A^{-1}`: with `T = L^{-1}`,
    /// `(A^{-1})_{jj} = ‖T e_j‖²` — one discarded triangular column per
    /// index. Backs every "diagonal-only" consumer (first greedy pick,
    /// single-node CFCC, absorption costs).
    pub fn diag_inverse(&self) -> Vec<f64> {
        let n = self.n;
        let mut diag = vec![0.0f64; n];
        // Column j of T = L^{-1}, discarded after accumulation.
        let mut col = vec![0.0f64; n];
        for j in 0..n {
            col[j] = 1.0 / self.l[j * n + j];
            diag[j] += col[j] * col[j];
            for i in (j + 1)..n {
                let s = vector::dot(&self.l[i * n + j..i * n + i], &col[j..i]);
                col[i] = -s / self.l[i * n + i];
                diag[j] += col[i] * col[i];
            }
        }
        diag
    }

    /// Full inverse `A^{-1} = L^{-ᵀ} L^{-1}` from the blocked kernels:
    /// `T = L^{-1}` by a blocked forward solve of the identity, then
    /// `TᵀT` by SYRK. Reach for this **only** when inverse entries are
    /// consumed directly (rank-one maintenance, Σ̃⁻¹ quadratic forms) —
    /// otherwise use [`Cholesky::solve_mat`].
    pub fn inverse(&self) -> DenseMatrix {
        self.inverse_threaded(1)
    }

    /// [`Cholesky::inverse`] with `threads` pool-backed row panels.
    pub fn inverse_threaded(&self, threads: usize) -> DenseMatrix {
        let n = self.n;
        let mut t = DenseMatrix::identity(n);
        forward_solve_identity(&self.l, n, &mut t.data, threads);
        let mut inv = DenseMatrix::zeros(n, n);
        // T = L⁻¹ is lower triangular, so the TᵀT SYRK runs through the
        // depth-clipped kernel: panels entirely inside T's known-zero
        // upper region are skipped (~half the SYRK flops on the
        // maintained-inverse setup), with bit-identical results.
        kernel::syrk_lower_tri_acc(
            &mut inv.data,
            0,
            n,
            View::new(&t.data, 0, n).t(),
            n,
            n,
            1.0,
            threads,
        );
        kernel::mirror_lower(&mut inv.data, 0, n, n);
        inv
    }

    /// Pre-rebuild scalar inverse — retained as the property-test and
    /// benchmark baseline.
    pub fn inverse_naive(&self) -> DenseMatrix {
        let n = self.n;
        // T = L^{-1} (lower triangular), column by column.
        let mut t = vec![0.0f64; n * n];
        for j in 0..n {
            t[j * n + j] = 1.0 / self.l[j * n + j];
            for i in (j + 1)..n {
                let mut s = 0.0;
                for k in j..i {
                    s += self.l[i * n + k] * t[k * n + j];
                }
                t[i * n + j] = -s / self.l[i * n + i];
            }
        }
        // inv = Tᵀ T, exploiting that T is lower triangular:
        // inv_{ij} = Σ_{k ≥ max(i,j)} T_{ki} T_{kj}
        let mut inv = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut s = 0.0;
                for k in j..n {
                    s += t[k * n + i] * t[k * n + j];
                }
                inv.set(i, j, s);
                inv.set(j, i, s);
            }
        }
        inv
    }
}

/// LU factorization with partial pivoting; `P A = L U`.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl Lu {
    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // forward: L y = Pb (unit diagonal)
        for i in 0..n {
            let s = vector::dot(&self.lu[i * n..i * n + i], &x[..i]);
            x[i] -= s;
        }
        // backward: U x = y
        for i in (0..n).rev() {
            let s = x[i] - vector::dot(&self.lu[i * n + i + 1..(i + 1) * n], &x[i + 1..n]);
            x[i] = s / self.lu[i * n + i];
        }
        x
    }

    /// Multi-RHS solve `A X = B` via blocked unit-lower and upper
    /// triangular substitution (factor once, solve many).
    pub fn solve_mat(&self, b: &DenseMatrix) -> DenseMatrix {
        self.solve_mat_threaded(b, 1)
    }

    /// [`Lu::solve_mat`] with `threads` scoped row panels in the blocked
    /// updates.
    pub fn solve_mat_threaded(&self, b: &DenseMatrix, threads: usize) -> DenseMatrix {
        assert_eq!(b.rows, self.n, "RHS row count must match the factor");
        let r = b.cols;
        // Apply the row permutation while copying.
        let mut x = DenseMatrix::zeros(self.n, r);
        for (i, &p) in self.piv.iter().enumerate() {
            x.row_mut(i).copy_from_slice(b.row(p));
        }
        forward_solve_mat(&self.lu, self.n, true, &mut x.data, r, threads);
        backward_solve_u_mat(&self.lu, self.n, &mut x.data, r, threads);
        x
    }

    /// Full inverse (kept for the estimated-Schur path's test oracles and
    /// the pre-rebuild benchmark baseline; hot paths use
    /// [`Lu::solve_mat`]).
    pub fn inverse(&self) -> DenseMatrix {
        self.solve_mat(&DenseMatrix::identity(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.5], &[0.5, -0.5, 2.0]])
    }

    #[test]
    fn matvec_and_matmul() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0; 2];
        a.matvec(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
    }

    #[test]
    fn transpose_and_gram() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        let g = a.gram();
        let expect = t.matmul(&t.transpose());
        assert!(g.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let n = 3;
        let mut rec = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += ch.factor_get(i, k) * ch.factor_get(j, k);
                }
                rec.set(i, j, s);
            }
        }
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn cholesky_solve_and_inverse() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
        let inv = ch.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)) < 1e-10);
    }

    #[test]
    fn solve_mat_matches_per_column_solves() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[3.0, 0.25]]);
        let x = ch.solve_mat(&b);
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| b.get(i, j)).collect();
            let want = ch.solve(&col);
            for (i, &w) in want.iter().enumerate() {
                assert!((x.get(i, j) - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            a.cholesky_naive(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn lu_solves_unsymmetric() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.0], &[3.0, 0.0, 4.0]]);
        let lu = a.lu().unwrap();
        let b = [5.0, -1.0, 7.0];
        let x = lu.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
        let inv = lu.inverse();
        assert!(a.matmul(&inv).max_abs_diff(&DenseMatrix::identity(3)) < 1e-10);
    }

    #[test]
    fn lu_solve_mat_matches_vector_solves() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.0], &[3.0, 0.0, 4.0]]);
        let lu = a.lu().unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 1.0], &[-1.0, 2.0], &[7.0, 0.0]]);
        let x = lu.solve_mat(&b);
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| b.get(i, j)).collect();
            let want = lu.solve(&col);
            for (i, &w) in want.iter().enumerate() {
                assert!((x.get(i, j) - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn log_det_matches_known() {
        // det(diag(4,9)) = 36
        let a = DenseMatrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ch = a.cholesky().unwrap();
        assert!((ch.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn symmetrize_and_ridge() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        a.symmetrize();
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 3.0);
        a.add_ridge(0.5);
        assert_eq!(a.get(0, 0), 1.5);
    }

    #[test]
    fn trace_and_diag_inverse_match_full_inverse() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let inv = ch.inverse();
        assert!((ch.trace_inverse() - inv.trace()).abs() < 1e-12);
        for (i, d) in ch.diag_inverse().iter().enumerate() {
            assert!((d - inv.get(i, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd() {
        let a = spd3();
        let i1 = a.cholesky().unwrap().inverse();
        let i2 = a.lu().unwrap().inverse();
        assert!(i1.max_abs_diff(&i2) < 1e-10);
    }
}
