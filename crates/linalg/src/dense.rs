//! Row-major dense matrices with Cholesky and LU factorizations.
//!
//! These kernels back the `Exact` baseline (one `n × n` inverse plus `O(n²)`
//! rank-one updates per greedy step), the brute-force optimum, the inversion
//! of estimated Schur complements, and all estimator test oracles. They are
//! plain, allocation-conscious loops in `ikj` order — no BLAS available in
//! this environment (DESIGN.md §4).

use crate::error::LinalgError;
use crate::vector;

/// Row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a slice of rows (each `cols` long).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Add to an element.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vector::dot(self.row(i), x);
        }
    }

    /// Matrix product `A · B` using ikj loop order (streams B's rows).
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            // Split borrow: write into out.data directly.
            let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                for j in 0..b.cols {
                    orow[j] += aik * brow[j];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// `AᵀA` exploiting symmetry of the result.
    pub fn gram(&self) -> DenseMatrix {
        let t = self.transpose();
        // (Aᵀ A)_{ij} = column_i · column_j = rows of t
        let n = self.cols;
        let mut out = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = vector::dot(t.row(i), t.row(j));
                out.data[i * n + j] = v;
                out.data[j * n + i] = v;
            }
        }
        out
    }

    /// Max absolute entry difference with `other` (test helper).
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Symmetrize in place: `A ← (A + Aᵀ)/2` (square matrices only).
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = 0.5 * (self.data[i * n + j] + self.data[j * n + i]);
                self.data[i * n + j] = v;
                self.data[j * n + i] = v;
            }
        }
    }

    /// Add `lambda` to the diagonal.
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += lambda;
        }
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix (lower triangle referenced).
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.data[i * n + j];
                // dot of the already-computed prefixes of rows i and j
                sum -= vector::dot(&l[i * n..i * n + j], &l[j * n..j * n + j]);
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { row: i, pivot: sum });
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// LU factorization with partial pivoting (for possibly-indefinite
    /// matrices such as estimated Schur complements before regularization).
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        assert_eq!(self.rows, self.cols, "lu requires a square matrix");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // pivot search
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(LinalgError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor;
                if factor != 0.0 {
                    // Split the borrow: copy row k's tail is avoided by raw indexing.
                    for j in (k + 1)..n {
                        a[i * n + j] -= factor * a[k * n + j];
                    }
                }
            }
        }
        Ok(Lu { n, lu: a, piv })
    }
}

/// Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Lower-triangular factor, row-major, upper part zero.
    l: Vec<f64>,
}

impl Cholesky {
    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry of the factor.
    pub fn factor_get(&self, i: usize, j: usize) -> f64 {
        self.l[i * self.n + j]
    }

    /// Solve `A x = b` in place (`b` becomes `x`).
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let l = &self.l;
        // forward: L y = b
        for i in 0..n {
            let s = vector::dot(&l[i * n..i * n + i], &b[..i]);
            b[i] = (b[i] - s) / l[i * n + i];
        }
        // backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * b[k];
            }
            b[i] = s / l[i * n + i];
        }
    }

    /// Solve returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// `log det A = 2 Σ log L_ii` (used by matrix-forest-theorem tests).
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// `Tr(A^{-1}) = ‖L^{-1}‖_F²` via triangular inversion only — roughly
    /// 3× cheaper than forming the full inverse. This is the kernel behind
    /// exact CFCC evaluation (`C(S) = n / Tr(L_{-S}^{-1})`).
    pub fn trace_inverse(&self) -> f64 {
        let n = self.n;
        let mut acc = 0.0f64;
        // Column j of T = L^{-1}, discarded after accumulation.
        let mut col = vec![0.0f64; n];
        for j in 0..n {
            col[j] = 1.0 / self.l[j * n + j];
            acc += col[j] * col[j];
            for i in (j + 1)..n {
                let s = vector::dot(&self.l[i * n + j..i * n + i], &col[j..i]);
                col[i] = -s / self.l[i * n + i];
                acc += col[i] * col[i];
            }
        }
        acc
    }

    /// Full inverse `A^{-1} = L^{-ᵀ} L^{-1}` via triangular inversion.
    pub fn inverse(&self) -> DenseMatrix {
        let n = self.n;
        // T = L^{-1} (lower triangular), column by column.
        let mut t = vec![0.0f64; n * n];
        for j in 0..n {
            t[j * n + j] = 1.0 / self.l[j * n + j];
            for i in (j + 1)..n {
                let mut s = 0.0;
                for k in j..i {
                    s += self.l[i * n + k] * t[k * n + j];
                }
                t[i * n + j] = -s / self.l[i * n + i];
            }
        }
        // inv = Tᵀ T, exploiting that T is lower triangular:
        // inv_{ij} = Σ_{k ≥ max(i,j)} T_{ki} T_{kj}
        let mut inv = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut s = 0.0;
                for k in j..n {
                    s += t[k * n + i] * t[k * n + j];
                }
                inv.set(i, j, s);
                inv.set(j, i, s);
            }
        }
        inv
    }
}

/// LU factorization with partial pivoting; `P A = L U`.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl Lu {
    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // forward: L y = Pb (unit diagonal)
        for i in 0..n {
            let s = vector::dot(&self.lu[i * n..i * n + i], &x[..i]);
            x[i] -= s;
        }
        // backward: U x = y
        for i in (0..n).rev() {
            let s = x[i] - vector::dot(&self.lu[i * n + i + 1..(i + 1) * n], &x[i + 1..n]);
            x[i] = s / self.lu[i * n + i];
        }
        x
    }

    /// Full inverse.
    pub fn inverse(&self) -> DenseMatrix {
        let n = self.n;
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0f64; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let col = self.solve(&e);
            for (i, &v) in col.iter().enumerate() {
                inv.set(i, j, v);
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.5], &[0.5, -0.5, 2.0]])
    }

    #[test]
    fn matvec_and_matmul() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0; 2];
        a.matvec(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
    }

    #[test]
    fn transpose_and_gram() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        let g = a.gram();
        let expect = t.matmul(&t.transpose());
        assert!(g.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let n = 3;
        let mut rec = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += ch.factor_get(i, k) * ch.factor_get(j, k);
                }
                rec.set(i, j, s);
            }
        }
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn cholesky_solve_and_inverse() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
        let inv = ch.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn lu_solves_unsymmetric() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.0], &[3.0, 0.0, 4.0]]);
        let lu = a.lu().unwrap();
        let b = [5.0, -1.0, 7.0];
        let x = lu.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec(&x, &mut ax);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
        let inv = lu.inverse();
        assert!(a.matmul(&inv).max_abs_diff(&DenseMatrix::identity(3)) < 1e-10);
    }

    #[test]
    fn lu_detects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn log_det_matches_known() {
        // det(diag(4,9)) = 36
        let a = DenseMatrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ch = a.cholesky().unwrap();
        assert!((ch.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn symmetrize_and_ridge() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        a.symmetrize();
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 3.0);
        a.add_ridge(0.5);
        assert_eq!(a.get(0, 0), 1.5);
    }

    #[test]
    fn trace_inverse_matches_full_inverse() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let expect = ch.inverse().trace();
        assert!((ch.trace_inverse() - expect).abs() < 1e-12);
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd() {
        let a = spd3();
        let i1 = a.cholesky().unwrap().inverse();
        let i2 = a.lu().unwrap().inverse();
        assert!(i1.max_abs_diff(&i2) < 1e-10);
    }
}
