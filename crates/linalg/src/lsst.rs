//! Low-stretch spanning tree + sampled off-tree ultrasparsifier — the
//! `lsst-pcg` SDD backend's preconditioner (see [`crate::sdd`]).
//!
//! The BFS spanning tree behind `tree-pcg` is stretch-limited: on a
//! √n-side grid the tree path between two adjacent nodes in different BFS
//! branches detours through the root, so the average edge stretch — and
//! with it the PCG iteration count (the condition number of the
//! tree-preconditioned system is bounded by the **total** stretch) — grows
//! polynomially. This module replaces it with the two classic upgrades of
//! the Spielman–Teng / Kyng–Sachdeva solver line the paper assumes:
//!
//! 1. **AKPW-style low-stretch tree** ([`LsstTree`]): iterated
//!    low-diameter graph decomposition. Each level grows bounded-radius
//!    BFS clusters over the current contracted graph (absorbing frontier
//!    layers while they keep the cluster volume growing geometrically),
//!    records one original-graph edge per cluster-growing step as a tree
//!    edge, contracts every cluster to a super-node, and repeats until one
//!    super-node per component remains. Tree paths then climb a cluster
//!    hierarchy whose radii shrink geometrically, so the stretch of an
//!    average edge is polylogarithmic instead of polynomial — verified
//!    *exactly* per edge ([`LsstTree::stretch`], depths + binary-lifting
//!    LCA) rather than assumed.
//! 2. **Vaidya-style ultrasparsifier** ([`LsstPreconditioner`]): sample
//!    `t = offtree_ratio · m_off` off-tree edges with probability
//!    proportional to their stretch (the edges whose fundamental cycles
//!    hurt most are the ones worth keeping), add them to the tree, and
//!    factor the resulting sparsified graph
//!
//!    ```text
//!    M = L_{T ∪ sampled} restricted to V ∖ S + diag(unsampled off-tree degree)
//!    ```
//!
//!    with the existing IC(0) machinery from [`crate::csr`], permuted into
//!    the tree's children-before-parents elimination order so the tree
//!    part factors **exactly** (zero fill) and only the few sampled edges
//!    contribute dropped fill. Unsampled off-tree edges survive as
//!    diagonal mass — exactly the [`crate::tree`] compensation — which
//!    keeps `M` a symmetric diagonally-dominant M-matrix: SPD whenever
//!    `L_{-S}` is, and IC(0)-safe. The preconditioner stays
//!    `O(n + m · offtree_ratio)` memory with `O(n + m/ρ)`-cost sweeps.
//!
//! With `offtree_ratio = 0` the sampler is bypassed and the tree is
//! factored by [`TreePreconditioner::from_forest`] — the zero-fill forest
//! LDLᵀ elimination shared with `tree-pcg` — so "tree-only" costs exactly
//! what `tree-pcg` costs, just with a far better tree.

use crate::csr::{CsrMatrix, IncompleteCholesky};
use crate::error::LinalgError;
use crate::tree::TreePreconditioner;
use crate::DenseMatrix;
use cfcc_graph::{Graph, Node};

/// `u32` sentinel for "no parent / unclaimed".
const NONE: u32 = u32::MAX;

/// Frontier-growth threshold of the cluster decomposition: a BFS ball
/// keeps absorbing its next layer while the layer holds at least
/// `GROWTH · |ball|` nodes. On a mesh the layer grows linearly in the
/// radius while the ball grows quadratically, so clusters stop at radius
/// `O(1/GROWTH)`; on an expander the volume doubles every layer and
/// clusters stay radius-`O(1)` with most edges internal. Either way every
/// level contracts the node count by a constant factor, so the hierarchy
/// has `O(log n)` levels and cluster radii that shrink geometrically
/// toward the top — the property the stretch bound rides on.
const GROWTH: f64 = 0.5;

/// Deterministic seed of the off-tree edge sampler (inverse-CDF draws).
const SAMPLE_SEED: u64 = 0x5EED_AC9F_11AB_77EE;

/// SplitMix64 step — the sampler's deterministic RNG (no `rand`
/// dependency in the hot path; the stream is fixed by the seed alone).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` from the SplitMix64 stream.
fn uniform01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// ---------------------------------------------------------------------
// AKPW-style low-stretch spanning tree
// ---------------------------------------------------------------------

/// A rooted spanning tree (forest, for disconnected graphs) of the whole
/// graph, built by iterated low-diameter decomposition, with node depths
/// for exact stretch computation.
#[derive(Debug, Clone)]
pub struct LsstTree {
    /// Parent of each original node (`NONE` for roots).
    parent: Vec<u32>,
    /// Depth of each node below its root.
    depth: Vec<u32>,
    /// Decomposition levels the build took (diagnostics).
    levels: usize,
}

impl LsstTree {
    /// Build the low-stretch tree of `g` by iterated cluster-growing and
    /// contraction. `O((n + m) log n)` time, `O(n + m)` memory.
    ///
    /// Every level maintains the invariant that each super-node's set of
    /// original nodes is already connected by the tree edges chosen so
    /// far; claiming a super-node through a contracted edge adds that
    /// edge's *original-graph representative* to the tree, so the final
    /// edge set is a spanning tree of each component (`n − c` edges).
    pub fn build(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut tree_edges: Vec<(u32, u32)> = Vec::with_capacity(n.saturating_sub(1));
        // Contracted edges: endpoints in super-node space plus the
        // original-graph representative edge.
        let mut edges: Vec<(u32, u32, u32, u32)> = g.edges().map(|(u, v)| (u, v, u, v)).collect();
        let mut nc = n;
        let mut levels = 0usize;

        // Reusable per-level buffers, sized for the first (largest) level.
        let mut cluster: Vec<u32> = Vec::new();
        let mut pending: Vec<u32> = Vec::new();

        while !edges.is_empty() && levels < 64 {
            levels += 1;
            // CSR adjacency of the contracted graph, with edge indices.
            let mut deg = vec![0u32; nc];
            for &(u, v, _, _) in &edges {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
            let mut adj_ptr = vec![0usize; nc + 1];
            for i in 0..nc {
                adj_ptr[i + 1] = adj_ptr[i] + deg[i] as usize;
            }
            let mut cursor = adj_ptr.clone();
            let mut adj: Vec<(u32, u32)> = vec![(0, 0); edges.len() * 2];
            for (e, &(u, v, _, _)) in edges.iter().enumerate() {
                adj[cursor[u as usize]] = (v, e as u32);
                cursor[u as usize] += 1;
                adj[cursor[v as usize]] = (u, e as u32);
                cursor[v as usize] += 1;
            }

            // Seeds in descending contracted-degree order (hubs first —
            // centers power-law clusters on the hubs; neutral on meshes).
            // Deterministic: counting sort by degree, ties by node id.
            let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
            let mut bucket_ptr = vec![0usize; max_deg + 2];
            for &d in &deg {
                bucket_ptr[max_deg - d as usize + 1] += 1;
            }
            for i in 0..max_deg + 1 {
                bucket_ptr[i + 1] += bucket_ptr[i];
            }
            let mut seeds = vec![0u32; nc];
            let mut cur = bucket_ptr;
            for u in 0..nc as u32 {
                let b = max_deg - deg[u as usize] as usize;
                seeds[cur[b]] = u;
                cur[b] += 1;
            }

            // Grow bounded-radius BFS clusters.
            cluster.clear();
            cluster.resize(nc, NONE);
            let mut nclusters = 0u32;
            let mut frontier: Vec<u32> = Vec::new();
            for &s in &seeds {
                if cluster[s as usize] != NONE {
                    continue;
                }
                let c = nclusters;
                nclusters += 1;
                cluster[s as usize] = c;
                let mut size = 1usize;
                frontier.clear();
                frontier.push(s);
                loop {
                    // Candidate next layer: unclaimed neighbors of the
                    // frontier, each remembering the contracted edge it
                    // was discovered through.
                    pending.clear();
                    let mut layer_edges: Vec<u32> = Vec::new();
                    for &p in &frontier {
                        for &(w, e) in &adj[adj_ptr[p as usize]..adj_ptr[p as usize + 1]] {
                            if cluster[w as usize] == NONE {
                                cluster[w as usize] = c;
                                pending.push(w);
                                layer_edges.push(e);
                            }
                        }
                    }
                    if pending.is_empty() {
                        break;
                    }
                    if size > 1 && (pending.len() as f64) < GROWTH * size as f64 {
                        // Layer too thin: reject it and close the cluster.
                        for &w in &pending {
                            cluster[w as usize] = NONE;
                        }
                        break;
                    }
                    // Accept: each claimed super-node contributes its
                    // representative original edge to the tree.
                    for &e in &layer_edges {
                        let (_, _, ou, ov) = edges[e as usize];
                        tree_edges.push((ou, ov));
                    }
                    size += pending.len();
                    std::mem::swap(&mut frontier, &mut pending);
                }
            }

            // Contract: keep one representative contracted edge per
            // cluster pair (sort + dedup, deterministic).
            let mut next: Vec<(u32, u32, u32, u32)> = edges
                .iter()
                .filter_map(|&(u, v, ou, ov)| {
                    let (cu, cv) = (cluster[u as usize], cluster[v as usize]);
                    if cu == cv {
                        None
                    } else {
                        Some((cu.min(cv), cu.max(cv), ou, ov))
                    }
                })
                .collect();
            next.sort_unstable_by_key(|&(u, v, _, _)| (u, v));
            next.dedup_by_key(|&mut (u, v, _, _)| (u, v));
            if tree_edges.is_empty() && !next.is_empty() {
                // Cannot happen (the first seed always absorbs its first
                // layer), but guarantees termination regardless.
                break;
            }
            edges = next;
            nc = nclusters as usize;
        }

        // Root the tree-edge set: BFS over tree adjacency from the
        // max-degree node (per component, ascending ids after), matching
        // the `tree-pcg` convention.
        let mut tdeg = vec![0u32; n];
        for &(u, v) in &tree_edges {
            tdeg[u as usize] += 1;
            tdeg[v as usize] += 1;
        }
        let mut tptr = vec![0usize; n + 1];
        for i in 0..n {
            tptr[i + 1] = tptr[i] + tdeg[i] as usize;
        }
        let mut cur = tptr.clone();
        let mut tadj = vec![0u32; tree_edges.len() * 2];
        for &(u, v) in &tree_edges {
            tadj[cur[u as usize]] = v;
            cur[u as usize] += 1;
            tadj[cur[v as usize]] = u;
            cur[v as usize] += 1;
        }
        let mut parent = vec![NONE; n];
        let mut depth = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let root = g.max_degree_node().unwrap_or(0);
        for start in std::iter::once(root).chain(0..n as Node) {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in &tadj[tptr[u as usize]..tptr[u as usize + 1]] {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        parent[v as usize] = u;
                        depth[v as usize] = depth[u as usize] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        Self {
            parent,
            depth,
            levels,
        }
    }

    /// Parent array (`u32::MAX` for roots) in original node space.
    pub fn parent(&self) -> &[u32] {
        &self.parent
    }

    /// Node depths below their roots.
    pub fn depth(&self) -> &[u32] {
        &self.depth
    }

    /// Decomposition levels the build took.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of tree edges (`n − #components` for a correct build).
    pub fn num_edges(&self) -> usize {
        self.parent.iter().filter(|&&p| p != NONE).count()
    }

    /// Is `{u, v}` a tree edge?
    #[inline]
    fn is_tree_edge(&self, u: Node, v: Node) -> bool {
        self.parent[u as usize] == v || self.parent[v as usize] == u
    }

    /// Exact per-edge stretch of every **off-tree** edge of `g` (the tree
    /// path length between its endpoints, unit weights), via depths and a
    /// binary-lifting LCA table — `O((n + m) log n)`.
    pub fn stretch(&self, g: &Graph) -> StretchReport {
        let n = self.parent.len();
        let max_depth = self.depth.iter().copied().max().unwrap_or(0);
        let lg = (usize::BITS - (max_depth.max(1) as usize).leading_zeros()) as usize;
        let lg = lg.max(1);
        // up[k][v] = 2^k-th ancestor (NONE past the root), flat layout.
        let mut up = vec![NONE; lg * n];
        up[..n].copy_from_slice(&self.parent);
        for k in 1..lg {
            for v in 0..n {
                let half = up[(k - 1) * n + v];
                up[k * n + v] = if half == NONE {
                    NONE
                } else {
                    up[(k - 1) * n + half as usize]
                };
            }
        }
        let ancestor = |mut v: u32, mut steps: u32| -> u32 {
            let mut k = 0;
            while steps > 0 && v != NONE {
                if steps & 1 == 1 {
                    v = up[k * n + v as usize];
                }
                steps >>= 1;
                k += 1;
            }
            v
        };
        let lca_dist = |u: u32, v: u32| -> u32 {
            let (du, dv) = (self.depth[u as usize], self.depth[v as usize]);
            let (mut a, mut b) = if du >= dv { (u, v) } else { (v, u) };
            let diff = du.abs_diff(dv);
            a = ancestor(a, diff);
            if a == b {
                return diff;
            }
            let mut climbed = 0u32;
            for k in (0..lg).rev() {
                let (na, nb) = (up[k * n + a as usize], up[k * n + b as usize]);
                if na != nb {
                    a = na;
                    b = nb;
                    climbed += 1 << k;
                }
            }
            diff + 2 * (climbed + 1)
        };

        let mut offtree: Vec<(Node, Node)> = Vec::new();
        let mut stretch: Vec<f64> = Vec::new();
        let mut total = 0.0f64;
        let mut max = 0.0f64;
        let mut m_all = 0u64;
        for (u, v) in g.edges() {
            m_all += 1;
            if self.is_tree_edge(u, v) {
                total += 1.0;
                max = max.max(1.0);
                continue;
            }
            let s = lca_dist(u, v) as f64;
            total += s;
            max = max.max(s);
            offtree.push((u, v));
            stretch.push(s);
        }
        StretchReport {
            offtree,
            stretch,
            avg: if m_all == 0 {
                0.0
            } else {
                total / m_all as f64
            },
            max,
        }
    }
}

/// Exact stretch report of a tree against its graph.
#[derive(Debug, Clone)]
pub struct StretchReport {
    /// Off-tree edges of the graph, `(u, v)` with `u < v`.
    pub offtree: Vec<(Node, Node)>,
    /// Tree-path length of each off-tree edge (parallel to `offtree`).
    pub stretch: Vec<f64>,
    /// Average stretch over **all** edges (tree edges count 1).
    pub avg: f64,
    /// Worst single-edge stretch.
    pub max: f64,
}

/// Sample `count` indices of `weights` with probability proportional to
/// weight (with replacement, then deduplicated — the ultrasparsifier only
/// cares which edges get in). Deterministic for a fixed seed.
fn sample_weighted(weights: &[f64], count: usize, seed: u64) -> Vec<usize> {
    if weights.is_empty() || count == 0 {
        return Vec::new();
    }
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0f64;
    for &w in weights {
        acc += w.max(0.0);
        cdf.push(acc);
    }
    if acc <= 0.0 {
        return Vec::new();
    }
    let mut state = seed;
    let mut picks: Vec<usize> = (0..count)
        .map(|_| {
            let r = uniform01(&mut state) * acc;
            cdf.partition_point(|&c| c <= r).min(weights.len() - 1)
        })
        .collect();
    picks.sort_unstable();
    picks.dedup();
    picks
}

// ---------------------------------------------------------------------
// ultrasparsifier preconditioner
// ---------------------------------------------------------------------

/// The factored `lsst-pcg` preconditioner over the compacted index space
/// `V ∖ S`: low-stretch tree + stretch-sampled off-tree edges, with
/// unsampled off-tree edges compensated onto the diagonal.
pub struct LsstPreconditioner {
    inner: Inner,
    avg_stretch: f64,
    max_stretch: f64,
    sampled_offtree: u64,
}

enum Inner {
    /// `offtree_ratio = 0`: the tree alone, factored by the shared
    /// zero-fill forest LDLᵀ ([`TreePreconditioner::from_forest`]).
    Tree(TreePreconditioner),
    /// Tree + sampled edges, IC(0)-factored in tree elimination order.
    /// Boxed: the scratch-carrying struct dwarfs the tree variant.
    Ic(Box<PermutedIc>),
}

/// IC(0) factor of the sparsified matrix, stored in the tree's
/// children-before-parents elimination order with permutation maps and
/// reusable permute scratch.
struct PermutedIc {
    ic: IncompleteCholesky,
    /// Elimination position → compact index.
    node_at: Vec<u32>,
    /// Scratch vectors/blocks in elimination space (resized on demand).
    rv: Vec<f64>,
    zv: Vec<f64>,
    rb: DenseMatrix,
    zb: DenseMatrix,
}

impl LsstPreconditioner {
    /// Build and factor the preconditioner for `L_{-S}` of `g`.
    ///
    /// `keep`/`pos` are the shared compact-space maps;
    /// `offtree_ratio ∈ [0, 1]` is the fraction of off-tree edges sampled
    /// into the sparsifier (`1/ρ`; 0 = tree only). Fails with
    /// [`LinalgError::NotPositiveDefinite`] only when `L_{-S}` itself is
    /// numerically singular.
    pub fn build(
        g: &Graph,
        keep: &[Node],
        pos: &[usize],
        offtree_ratio: f64,
    ) -> Result<Self, LinalgError> {
        let tree = LsstTree::build(g);
        let report = tree.stretch(g);
        let target = (report.offtree.len() as f64 * offtree_ratio.clamp(0.0, 1.0)).round() as usize;
        let sampled = sample_weighted(&report.stretch, target, SAMPLE_SEED);

        let nk = keep.len();
        // Restrict the tree to the kept nodes (a kept node whose tree
        // parent is grounded becomes a forest root) and order kept nodes
        // by decreasing tree depth: every child strictly precedes its
        // parent — the zero-fill elimination order for the tree part.
        let parent_tree = tree.parent();
        let depth = tree.depth();
        let mut parent_kept = vec![usize::MAX; nk];
        for (i, &u) in keep.iter().enumerate() {
            let p = parent_tree[u as usize];
            if p != NONE && pos[p as usize] != usize::MAX {
                parent_kept[i] = pos[p as usize];
            }
        }
        let max_depth = keep.iter().map(|&u| depth[u as usize]).max().unwrap_or(0) as usize;
        let mut bucket = vec![0usize; max_depth + 2];
        for &u in keep {
            bucket[max_depth - depth[u as usize] as usize + 1] += 1;
        }
        for i in 0..max_depth + 1 {
            bucket[i + 1] += bucket[i];
        }
        let mut order = vec![0u32; nk];
        let mut cur = bucket;
        for (i, &u) in keep.iter().enumerate() {
            let b = max_depth - depth[u as usize] as usize;
            order[cur[b]] = i as u32;
            cur[b] += 1;
        }

        // Diagonal-compensated form: `diag(u) = deg_G(u)` (full graph),
        // `-1` off-diagonals only for kept tree + sampled edges — every
        // unsampled off-tree edge survives as diagonal mass, keeping `M`
        // an SDD M-matrix. The pure-subgraph alternative (`diag = deg_H`,
        // `M ⪯ L`, conditioning stretch-bound) was measured and is worse
        // on every test topology — catastrophically so on expanders/
        // power-law graphs (BA-2048: 52 vs 21 iters/RHS), where `λ₂(L)`
        // is large and the compensation's smooth-mode penalty is
        // harmless while the subgraph form pays the full total-stretch
        // condition number.
        let inner = if sampled.is_empty() {
            // Pure tree: the shared forest LDLᵀ elimination, O(n).
            let diag: Vec<f64> = keep.iter().map(|&u| g.degree(u) as f64).collect();
            Inner::Tree(TreePreconditioner::from_forest(parent_kept, order, diag)?)
        } else {
            // Tree + sampled edges: assemble M in elimination order and
            // IC(0)-factor it (exact on the tree part, drops only fill
            // from the sampled edges).
            let node_at = order;
            let mut elim_of = vec![u32::MAX; nk];
            for (k, &i) in node_at.iter().enumerate() {
                elim_of[i as usize] = k as u32;
            }
            let diag: Vec<f64> = node_at
                .iter()
                .map(|&i| g.degree(keep[i as usize]) as f64)
                .collect();
            let mut off: Vec<(u32, u32, f64)> = Vec::with_capacity(nk + sampled.len());
            for (i, &p) in parent_kept.iter().enumerate() {
                if p != usize::MAX {
                    off.push((elim_of[i], elim_of[p], -1.0));
                }
            }
            for &e in &sampled {
                let (u, v) = report.offtree[e];
                let (iu, iv) = (pos[u as usize], pos[v as usize]);
                if iu != usize::MAX && iv != usize::MAX {
                    off.push((elim_of[iu], elim_of[iv], -1.0));
                }
            }
            let m = CsrMatrix::from_symmetric_parts(nk, &diag, &off);
            // Plain IC(0). The modified variant (MIC, row-sum preserving)
            // was measured here and is slightly *worse* under the
            // tree-depth elimination order (grid 91²: 349 vs 327 it/RHS
            // at ratio 0.5) — MIC's classical mesh advantage depends on a
            // natural, locality-preserving ordering, which the depth
            // permutation destroys. Natural order was also tried: it
            // recovers MIC on the grid (335 it) but regresses expanders
            // (BA-8192: 24 vs 20 it), so tree-depth + plain IC stays.
            let ic = IncompleteCholesky::factor(&m)?;
            Inner::Ic(Box::new(PermutedIc {
                ic,
                node_at,
                rv: Vec::new(),
                zv: Vec::new(),
                rb: DenseMatrix::zeros(0, 0),
                zb: DenseMatrix::zeros(0, 0),
            }))
        };
        Ok(Self {
            inner,
            avg_stretch: report.avg,
            max_stretch: report.max,
            sampled_offtree: sampled.len() as u64,
        })
    }

    /// Average edge stretch of the chosen tree (all edges; tree edges
    /// count 1) — what `SolveStats.precond_stretch` surfaces.
    pub fn avg_stretch(&self) -> f64 {
        self.avg_stretch
    }

    /// Worst single-edge stretch of the chosen tree.
    pub fn max_stretch(&self) -> f64 {
        self.max_stretch
    }

    /// Off-tree edges sampled into the sparsifier.
    pub fn sampled_offtree(&self) -> u64 {
        self.sampled_offtree
    }

    /// IC(0) Manteuffel shift (0 in the M-matrix common case; always 0 in
    /// tree-only mode, whose LDLᵀ is exact).
    pub fn shift(&self) -> f64 {
        match &self.inner {
            Inner::Tree(_) => 0.0,
            Inner::Ic(p) => p.ic.shift(),
        }
    }

    /// Stored factor entries, for flops accounting: forest edges in tree
    /// mode, strictly-lower IC(0) entries otherwise.
    pub fn nnz_factor(&self) -> usize {
        match &self.inner {
            Inner::Tree(t) => t.nnz_factor(),
            Inner::Ic(p) => p.ic.nnz_lower(),
        }
    }

    /// Apply `z = M⁻¹ r`. `&mut self` only for the permute scratch.
    pub fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        match &mut self.inner {
            Inner::Tree(t) => t.apply(r, z),
            Inner::Ic(p) => {
                let n = p.node_at.len();
                p.rv.resize(n, 0.0);
                p.zv.resize(n, 0.0);
                for (k, &i) in p.node_at.iter().enumerate() {
                    p.rv[k] = r[i as usize];
                }
                let (rv, zv) = (&mut p.rv, &mut p.zv);
                p.ic.apply(rv, zv);
                for (k, &i) in p.node_at.iter().enumerate() {
                    z[i as usize] = p.zv[k];
                }
            }
        }
    }

    /// Blocked [`LsstPreconditioner::apply`]: `Z = M⁻¹ R` column block.
    pub fn apply_block(&mut self, r: &DenseMatrix, z: &mut DenseMatrix) {
        match &mut self.inner {
            Inner::Tree(t) => t.apply_block(r, z),
            Inner::Ic(p) => {
                let (n, w) = (p.node_at.len(), r.cols());
                if p.rb.rows() != n || p.rb.cols() != w {
                    p.rb = DenseMatrix::zeros(n, w);
                    p.zb = DenseMatrix::zeros(n, w);
                }
                for (k, &i) in p.node_at.iter().enumerate() {
                    p.rb.row_mut(k).copy_from_slice(r.row(i as usize));
                }
                let (rb, zb) = (&p.rb, &mut p.zb);
                p.ic.apply_block(rb, zb);
                for (k, &i) in p.node_at.iter().enumerate() {
                    z.row_mut(i as usize).copy_from_slice(p.zb.row(k));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreePreconditioner;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keep_pos(g: &Graph, in_s: &[bool]) -> (Vec<Node>, Vec<usize>) {
        let keep: Vec<Node> = (0..g.num_nodes() as Node)
            .filter(|&u| !in_s[u as usize])
            .collect();
        let mut pos = vec![usize::MAX; g.num_nodes()];
        for (i, &u) in keep.iter().enumerate() {
            pos[u as usize] = i;
        }
        (keep, pos)
    }

    /// BFS tree of the whole graph, rooted like `tree-pcg`, as an
    /// `LsstTree` — the stretch baseline the AKPW build must beat.
    fn bfs_tree(g: &Graph) -> LsstTree {
        let n = g.num_nodes();
        let mut parent = vec![NONE; n];
        let mut depth = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let root = g.max_degree_node().unwrap_or(0);
        for start in std::iter::once(root).chain(0..n as Node) {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in g.neighbors(u) {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        parent[v as usize] = u;
                        depth[v as usize] = depth[u as usize] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        LsstTree {
            parent,
            depth,
            levels: 0,
        }
    }

    /// Property: the AKPW build yields a spanning tree — n−1 edges, all
    /// nodes reachable from the roots, depths consistent with parents.
    #[test]
    fn akpw_is_a_spanning_tree() {
        let mut rng = StdRng::seed_from_u64(0xA59);
        for (label, g) in [
            ("grid", generators::grid(23, 31)),
            ("ba", generators::barabasi_albert(900, 3, &mut rng)),
            ("er", generators::erdos_renyi_gnm(500, 2000, &mut rng)),
            ("path", generators::path(200)),
            ("ws", generators::watts_strogatz(400, 6, 0.1, &mut rng)),
        ] {
            let t = LsstTree::build(&g);
            let n = g.num_nodes();
            assert_eq!(t.num_edges(), n - 1, "{label}: edge count");
            // Every non-root's parent edge is a real graph edge.
            for u in 0..n as Node {
                let p = t.parent()[u as usize];
                if p != NONE {
                    assert!(g.has_edge(u, p), "{label}: ({u},{p}) not in graph");
                    assert_eq!(
                        t.depth()[u as usize],
                        t.depth()[p as usize] + 1,
                        "{label}: depth chain"
                    );
                }
            }
            // Connected: exactly one root.
            let roots = t.parent().iter().filter(|&&p| p == NONE).count();
            assert_eq!(roots, 1, "{label}: roots");
        }
    }

    /// Sweep the off-tree sampling ratio on a mesh and an expander and
    /// print iterations + wall per setting. `--ignored --nocapture` only;
    /// documents why `offtree_ratio` defaults where it does.
    #[test]
    #[ignore = "diagnostic"]
    fn ratio_sweep_diagnostic() {
        use crate::sdd::{by_name, SddOptions};
        let mut rng = StdRng::seed_from_u64(0x157);
        for (label, g) in [
            ("grid_8281", generators::grid(91, 91)),
            ("ba_8192", generators::barabasi_albert(8192, 4, &mut rng)),
        ] {
            let n = g.num_nodes();
            let mut in_s = vec![false; n];
            in_s[0] = true;
            let mut rhs = crate::DenseMatrix::zeros(n - 1, 8);
            let mut rng2 = StdRng::seed_from_u64(9);
            for i in 0..n - 1 {
                for j in 0..8 {
                    rhs.set(i, j, rng2.gen_range(-1.0..1.0));
                }
            }
            for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let opts = SddOptions {
                    offtree_ratio: ratio,
                    ..SddOptions::with_tol(1e-8)
                };
                let b = by_name("lsst-pcg").unwrap();
                let t = std::time::Instant::now();
                let mut f = b.factor(&g, &in_s, &opts).unwrap();
                f.solve_mat(&rhs).unwrap();
                println!(
                    "{label} ratio {ratio}: {:.1} it/RHS, {:.0} ms",
                    f.stats().iterations as f64 / 8.0,
                    t.elapsed().as_secs_f64() * 1e3
                );
            }
        }
    }

    #[test]
    #[ignore = "diagnostic"]
    fn stretch_diagnostic() {
        for (label, g) in [
            ("grid_48", generators::grid(48, 48)),
            ("grid_91", generators::grid(91, 91)),
            ("grid_257", generators::grid(257, 257)),
        ] {
            let t = LsstTree::build(&g);
            let akpw = t.stretch(&g);
            let b = bfs_tree(&g);
            let bfs = b.stretch(&g);
            let maxd_a = t.depth().iter().max().unwrap();
            let maxd_b = b.depth().iter().max().unwrap();
            println!(
                "{label}: akpw avg {:.2} max {:.0} depth {} lv {} | bfs avg {:.2} max {:.0} depth {}",
                akpw.avg, akpw.max, maxd_a, t.levels(), bfs.avg, bfs.max, maxd_b
            );
        }
    }

    /// The whole point of the AKPW build: on a mesh its average stretch
    /// must beat the BFS tree's (the `tree-pcg` choice).
    #[test]
    fn akpw_beats_bfs_stretch_on_a_grid() {
        let g = generators::grid(48, 48);
        let akpw = LsstTree::build(&g).stretch(&g);
        let bfs = bfs_tree(&g).stretch(&g);
        assert!(
            akpw.avg < bfs.avg,
            "AKPW avg stretch {:.2} must beat BFS {:.2}",
            akpw.avg,
            bfs.avg
        );
        assert!(akpw.avg > 1.0 && akpw.max >= akpw.avg);
    }

    /// Exact-stretch oracle: brute-force tree distances (parent walks)
    /// must agree with the LCA computation on every off-tree edge.
    #[test]
    fn stretch_matches_brute_force_tree_distance() {
        let mut rng = StdRng::seed_from_u64(0x57E);
        let g = generators::erdos_renyi_gnm(120, 400, &mut rng);
        let t = LsstTree::build(&g);
        let rep = t.stretch(&g);
        let dist = |mut u: u32, mut v: u32| -> u32 {
            let mut d = 0u32;
            while t.depth()[u as usize] > t.depth()[v as usize] {
                u = t.parent()[u as usize];
                d += 1;
            }
            while t.depth()[v as usize] > t.depth()[u as usize] {
                v = t.parent()[v as usize];
                d += 1;
            }
            while u != v {
                u = t.parent()[u as usize];
                v = t.parent()[v as usize];
                d += 2;
            }
            d
        };
        for (k, &(u, v)) in rep.offtree.iter().enumerate() {
            assert_eq!(rep.stretch[k], dist(u, v) as f64, "edge ({u},{v})");
        }
    }

    /// The stretch-weighted sampler is deterministic, in-range, deduped,
    /// and biased toward high-stretch edges.
    #[test]
    fn sampler_is_deterministic_and_stretch_biased() {
        let weights: Vec<f64> = (0..1000)
            .map(|i| if i < 900 { 1.0 } else { 100.0 })
            .collect();
        let a = sample_weighted(&weights, 200, 42);
        let b = sample_weighted(&weights, 200, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        assert!(a.iter().all(|&i| i < 1000));
        // The 10% heavy tail carries ~92% of the mass; most picks land in it.
        let heavy = a.iter().filter(|&&i| i >= 900).count();
        assert!(heavy * 2 > a.len(), "heavy tail {heavy} of {}", a.len());
        assert!(sample_weighted(&[], 10, 1).is_empty());
        assert!(sample_weighted(&weights, 0, 1).is_empty());
    }

    /// SPD: `zᵀ r > 0` for the sampled ultrasparsifier preconditioner,
    /// and the apply genuinely inverts the assembled M (checked densely).
    #[test]
    fn ultrasparsifier_is_spd_and_inverts_m() {
        let mut rng = StdRng::seed_from_u64(0x5D5);
        for (label, g) in [
            ("grid", generators::grid(9, 10)),
            ("ba", generators::barabasi_albert(80, 3, &mut rng)),
        ] {
            let n = g.num_nodes();
            let mut in_s = vec![false; n];
            in_s[3] = true;
            let (keep, pos) = keep_pos(&g, &in_s);
            let mut p = LsstPreconditioner::build(&g, &keep, &pos, 0.5).unwrap();
            assert!(p.sampled_offtree() > 0, "{label}: sampling must engage");
            for _ in 0..5 {
                let r: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut z = vec![0.0; n - 1];
                p.apply(&r, &mut z);
                let zr: f64 = z.iter().zip(&r).map(|(a, b)| a * b).sum();
                assert!(zr > 0.0, "{label}: zᵀr = {zr}");
            }
        }
    }

    /// Tree-only mode must match the shared forest LDLᵀ machinery: on a
    /// tree graph one application solves the system exactly.
    #[test]
    fn tree_only_mode_is_exact_on_trees() {
        let mut rng = StdRng::seed_from_u64(0x7EE7);
        let g = generators::random_tree(70, &mut rng);
        let mut in_s = vec![false; 70];
        in_s[10] = true;
        let (keep, pos) = keep_pos(&g, &in_s);
        let mut p = LsstPreconditioner::build(&g, &keep, &pos, 0.0).unwrap();
        assert_eq!(p.sampled_offtree(), 0);
        assert_eq!(p.shift(), 0.0);
        // The graph IS its spanning tree: M = L_{-S}; check M z = r via
        // the BFS-tree preconditioner (also exact here).
        let bfs = TreePreconditioner::build(&g, &in_s, &keep, &pos).unwrap();
        let r: Vec<f64> = (0..69).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (mut z1, mut z2) = (vec![0.0; 69], vec![0.0; 69]);
        p.apply(&r, &mut z1);
        bfs.apply(&r, &mut z2);
        for (a, b) in z1.iter().zip(&z2) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// Block apply must match the column-wise apply bit-for-bit shapes.
    #[test]
    fn block_apply_matches_columnwise() {
        let mut rng = StdRng::seed_from_u64(0xB10);
        let g = generators::grid(8, 9);
        let n = g.num_nodes();
        let mut in_s = vec![false; n];
        in_s[0] = true;
        let (keep, pos) = keep_pos(&g, &in_s);
        let mut p = LsstPreconditioner::build(&g, &keep, &pos, 0.4).unwrap();
        let d = n - 1;
        let w = 5;
        let mut r = DenseMatrix::zeros(d, w);
        for i in 0..d {
            for j in 0..w {
                r.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let mut z = DenseMatrix::zeros(d, w);
        p.apply_block(&r, &mut z);
        let (mut col, mut zc) = (vec![0.0; d], vec![0.0; d]);
        for j in 0..w {
            for (i, c) in col.iter_mut().enumerate() {
                *c = r.get(i, j);
            }
            p.apply(&col, &mut zc);
            for (i, &v) in zc.iter().enumerate() {
                assert!((z.get(i, j) - v).abs() < 1e-13);
            }
        }
    }
}
