//! # cfcc-linalg
//!
//! Linear-algebra substrate for the CFCM reproduction, written from scratch
//! because the target environment has no BLAS/LAPACK binding and no mature
//! sparse SDD solver crate (see DESIGN.md §4/§6):
//!
//! * [`kernel`] — the blocked dense kernel engine: packed tiled GEMM, SYRK
//!   symmetric updates, and scoped-thread row-panel parallelism (block
//!   sizes and packing layout documented there).
//! * [`dense`] — row-major dense matrices with *blocked* Cholesky and
//!   partially-pivoted LU factorizations, multi-RHS triangular solves
//!   (`solve_mat`/`solve_vec`: factor once, solve many), diagonal-only
//!   inverse extraction, and — where an algorithm genuinely consumes
//!   inverse entries — blocked inverses. Used by the `Exact` baseline, the
//!   brute-force optimum, the Schur-complement inversion (`|T| × |T|`
//!   blocks), and as the oracle in estimator tests.
//! * [`laplacian`] — Laplacian operators for a [`cfcc_graph::Graph`]: the full
//!   `L`, and the grounded submatrix `L_{-S}` as a matrix-free operator on
//!   compacted index space.
//! * [`cg`] — Jacobi-preconditioned conjugate gradients for `L_{-S} x = b`
//!   and a nullspace-projected CG for pseudoinverse solves `L† b`. This is
//!   the substitute for the Julia Kyng–Sachdeva solver used by the paper's
//!   ApproxGreedy baseline.
//! * [`jl`] — Johnson–Lindenstrauss Rademacher sketches (Lemma 3.4).
//! * [`trace`] — Hutchinson stochastic trace estimation of `Tr(L_{-S}^{-1})`,
//!   which the paper uses (via CG) to evaluate CFCC on large graphs.
//! * [`pinv`] — dense pseudoinverse `L†` via `(L + J/n)^{-1} − J/n`, plus
//!   the diagonal-only variant the greedy first pick consumes.

pub mod cg;
pub mod dense;
pub mod error;
pub mod jl;
pub mod kernel;
pub mod laplacian;
pub mod pinv;
pub mod trace;
pub mod vector;

pub use cg::{CgConfig, CgStats};
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use laplacian::LaplacianSubmatrix;
