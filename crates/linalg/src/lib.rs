//! # cfcc-linalg
//!
//! Linear-algebra substrate for the CFCM reproduction, written from scratch
//! because the target environment has no BLAS/LAPACK binding and no mature
//! sparse SDD solver crate (see DESIGN.md §4/§6).
//!
//! ## The `SddSolver` backend API
//!
//! Every grounded Laplacian system `L_{-S} x = b` the algorithms solve
//! goes through **one factor-once/solve-many surface**: [`sdd::SddSolver`]
//! produces an [`sdd::SddFactor`] exposing `solve_vec`, `solve_mat`
//! (multi-RHS), `diag_inverse`, and `trace_inverse`, plus a cumulative
//! [`sdd::SolveStats`] report (iterations, worst residual, flops).
//! Backends are registered by name ([`sdd::backends`]) and selected via
//! [`sdd::SddBackend`] (`auto` picks dense below ~1.5k unknowns and the
//! low-stretch-tree ultrasparsifier `lsst-pcg` above — no topology
//! sniffing; its iteration bound holds on every graph):
//!
//! | backend          | kind      | storage       | operations |
//! |------------------|-----------|---------------|------------|
//! | `dense-cholesky` | direct    | dense + blocked Cholesky | all, exact; `O(n³)` factor amortized over RHS |
//! | `cg-jacobi`      | iterative | matrix-free   | all, to `rel_tol`; zero setup |
//! | `sparse-cg`      | iterative | CSR + IC(0)   | all, to `rel_tol`; `O(n + m)` memory, never densifies |
//! | `tree-pcg`       | iterative | CSR + BFS spanning tree | all, to `rel_tol`; `O(n)` preconditioner sweeps |
//! | `lsst-pcg`       | iterative | CSR + low-stretch tree + sampled off-tree edges | all, to `rel_tol`; `O(n + m/ρ)` preconditioner, low iterations on every topology |
//!
//! Both iterative families answer `solve_mat` through **blocked
//! multi-RHS PCG** ([`cg::pcg_operator_block`]): all active right-hand
//! sides advance in lockstep, so each SpMV and each preconditioner sweep
//! is shared across the block, and converged columns deflate out.
//!
//! Consumers in `cfcc-core` (ApproxGreedy, the CFCC evaluators, Schur
//! utilities) dispatch through this seam, so swapping a solver — a future
//! combinatorial preconditioner, a sketched solver — touches no greedy
//! loop.
//!
//! ## Modules
//!
//! * [`sdd`] — the backend trait, registry, and the five backends above.
//! * [`pool`] — the persistent worker pool every parallel kernel runs on:
//!   spawn once, park between jobs, task-index dispatch with
//!   caller-computed partitioning (bit-identical results per thread
//!   count).
//! * [`kernel`] — the blocked dense kernel engine: packed tiled GEMM, SYRK
//!   symmetric updates (including the triangular depth-clipped variant
//!   behind `Cholesky::inverse`), and pool-backed row-panel parallelism
//!   (block sizes and packing layout documented there).
//! * [`dense`] — row-major dense matrices with *blocked* Cholesky and
//!   partially-pivoted LU factorizations, multi-RHS triangular solves
//!   (`solve_mat`/`solve_vec`: factor once, solve many), diagonal-only
//!   inverse extraction, and — where an algorithm genuinely consumes
//!   inverse entries — blocked inverses. Used by the `Exact` baseline, the
//!   brute-force optimum, the Schur-complement inversion (`|T| × |T|`
//!   blocks), and as the oracle in estimator tests.
//! * [`csr`] — compressed-sparse-row grounded Laplacians and the IC(0)
//!   incomplete-Cholesky preconditioner behind the `sparse-cg` backend.
//! * [`tree`] — the diagonal-compensated spanning-tree (combinatorial)
//!   preconditioner behind the `tree-pcg` backend: zero-fill `O(n)`
//!   factorization and sweeps over a BFS spanning forest.
//! * [`lsst`] — the AKPW-style low-stretch spanning tree (with exact
//!   per-edge stretch verification) and the stretch-sampled off-tree
//!   ultrasparsifier behind the `lsst-pcg` backend.
//! * [`laplacian`] — Laplacian operators for a [`cfcc_graph::Graph`]: the full
//!   `L`, and the grounded submatrix `L_{-S}` as a matrix-free operator on
//!   compacted index space.
//! * [`cg`] — the shared preconditioned-CG loop ([`cg::pcg_operator`]),
//!   the Jacobi grounded solver, and a nullspace-projected CG for
//!   pseudoinverse solves `L† b`. This is the substitute for the Julia
//!   Kyng–Sachdeva solver used by the paper's ApproxGreedy baseline.
//! * [`jl`] — Johnson–Lindenstrauss Rademacher sketches (Lemma 3.4).
//! * [`trace`] — Hutchinson stochastic trace estimation of `Tr(L_{-S}^{-1})`
//!   through any [`sdd::SddFactor`], which the paper uses to evaluate CFCC
//!   on large graphs.
//! * [`pinv`] — dense pseudoinverse `L†` via `(L + J/n)^{-1} − J/n`, plus
//!   the diagonal-only variant the greedy first pick consumes.

pub mod cg;
pub mod csr;
pub mod dense;
pub mod error;
pub mod jl;
pub mod kernel;
pub mod laplacian;
pub mod lsst;
pub mod pinv;
pub mod pool;
pub mod sdd;
pub mod trace;
pub mod tree;
pub mod vector;

pub use cg::{CgConfig, CgStats, StopCause, StopHook};
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use laplacian::LaplacianSubmatrix;
pub use sdd::{OwnedFactor, SddBackend, SddFactor, SddOptions, SddSolver, SolveStats};
