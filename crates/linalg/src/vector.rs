//! Dense `f64` vector kernels shared by the solvers.

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-lane accumulation helps LLVM vectorize without -ffast-math.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = 4 * i;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in 4 * chunks..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (used by CG's direction update).
#[inline]
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi + beta * *yi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Subtract the mean from `a` (projection onto the complement of span{1}).
#[inline]
pub fn project_out_ones(a: &mut [f64]) {
    if a.is_empty() {
        return;
    }
    let mean = a.iter().sum::<f64>() / a.len() as f64;
    for v in a.iter_mut() {
        *v -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..17).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..17).map(|i| (i as f64).cos()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_xpby() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0, 21.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert!((norm2_sq(&[3.0, 4.0]) - 25.0).abs() < 1e-15);
    }

    #[test]
    fn projection_zeroes_mean() {
        let mut a = [1.0, 2.0, 3.0, 6.0];
        project_out_ones(&mut a);
        assert!(a.iter().sum::<f64>().abs() < 1e-12);
        project_out_ones(&mut []);
    }
}
