//! Stochastic trace estimation of `Tr(L_{-S}^{-1})`.
//!
//! `C(S) = n / Tr(L_{-S}^{-1})` (Eq. 3). On graphs too large for a dense
//! inverse the paper evaluates solution quality "employing the conjugate
//! gradient method" (§V-B2); this module implements that evaluation as a
//! Hutchinson estimator — `Tr(M^{-1}) ≈ (1/p) Σ_i z_iᵀ M^{-1} z_i` with
//! Rademacher probes `z_i` — where each application of `M^{-1}` is a PCG
//! solve on the grounded Laplacian.

use crate::cg::{solve_grounded, CgConfig};
use crate::laplacian::LaplacianSubmatrix;
use cfcc_graph::Graph;
use rand::Rng;

/// Result of a stochastic trace estimate.
#[derive(Debug, Clone, Copy)]
pub struct TraceEstimate {
    /// Estimated trace.
    pub trace: f64,
    /// Number of probes used.
    pub probes: usize,
    /// Standard error of the probe mean (0 when `probes == 1`).
    pub std_error: f64,
    /// Whether all CG solves converged.
    pub all_converged: bool,
}

/// Hutchinson trace of `L_{-S}^{-1}` with `probes` Rademacher probes.
pub fn trace_inverse_hutchinson<R: Rng>(
    g: &Graph,
    in_s: &[bool],
    probes: usize,
    cfg: &CgConfig,
    rng: &mut R,
) -> TraceEstimate {
    assert!(probes >= 1);
    let op = LaplacianSubmatrix::new(g, in_s);
    let n = op.dim();
    let mut z = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut acc = cfcc_util::Welford::new();
    let mut all_converged = true;
    for _ in 0..probes {
        for zi in z.iter_mut() {
            *zi = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        }
        x.fill(0.0);
        let stats = solve_grounded(&op, &z, &mut x, cfg);
        all_converged &= stats.converged;
        let quad: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        acc.push(quad);
    }
    let se = if acc.count() > 1 {
        (acc.variance() / acc.count() as f64).sqrt()
    } else {
        0.0
    };
    TraceEstimate {
        trace: acc.mean(),
        probes,
        std_error: se,
        all_converged,
    }
}

/// Exact trace of `L_{-S}^{-1}` by `|V∖S|` CG solves against basis vectors.
/// `O(n)` solves — exact up to CG tolerance, used for modest `n` where dense
/// `O(n³)` inversion is already too slow but `O(n · m)` solving is fine.
pub fn trace_inverse_exact_cg(g: &Graph, in_s: &[bool], cfg: &CgConfig) -> (f64, bool) {
    let op = LaplacianSubmatrix::new(g, in_s);
    let n = op.dim();
    let mut b = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut trace = 0.0;
    let mut all_converged = true;
    for i in 0..n {
        b.fill(0.0);
        b[i] = 1.0;
        x.fill(0.0);
        let stats = solve_grounded(&op, &b, &mut x, cfg);
        all_converged &= stats.converged;
        trace += x[i];
    }
    (trace, all_converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_submatrix_dense;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_trace(g: &Graph, in_s: &[bool]) -> f64 {
        let (m, _) = laplacian_submatrix_dense(g, in_s);
        m.cholesky().unwrap().inverse().trace()
    }

    #[test]
    fn exact_cg_trace_matches_dense() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let mut in_s = vec![false; 40];
        in_s[0] = true;
        in_s[13] = true;
        let expect = dense_trace(&g, &in_s);
        let (got, ok) = trace_inverse_exact_cg(&g, &in_s, &CgConfig::with_tol(1e-12));
        assert!(ok);
        assert!((got - expect).abs() / expect < 1e-8, "{got} vs {expect}");
    }

    #[test]
    fn hutchinson_is_statistically_consistent() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let mut in_s = vec![false; 60];
        in_s[5] = true;
        let expect = dense_trace(&g, &in_s);
        let est = trace_inverse_hutchinson(&g, &in_s, 400, &CgConfig::with_tol(1e-10), &mut rng);
        assert!(est.all_converged);
        // 5 standard errors (plus slack for the tiny bias of finite tol).
        let tol = 5.0 * est.std_error + 1e-6;
        assert!(
            (est.trace - expect).abs() < tol,
            "estimate {} vs dense {} (tol {tol})",
            est.trace,
            expect
        );
    }

    #[test]
    fn hutchinson_single_probe_has_zero_se() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::cycle(12);
        let mut in_s = vec![false; 12];
        in_s[4] = true;
        let est = trace_inverse_hutchinson(&g, &in_s, 1, &CgConfig::default(), &mut rng);
        assert_eq!(est.probes, 1);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn grounding_more_nodes_decreases_trace() {
        // Monotonicity of Tr(L_{-S}^{-1}) — the quantity greedy minimizes.
        let mut rng = StdRng::seed_from_u64(37);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let mut in_s = vec![false; 30];
        in_s[2] = true;
        let (t1, _) = trace_inverse_exact_cg(&g, &in_s, &CgConfig::with_tol(1e-10));
        in_s[9] = true;
        let (t2, _) = trace_inverse_exact_cg(&g, &in_s, &CgConfig::with_tol(1e-10));
        assert!(t2 < t1);
    }
}
