//! Stochastic trace estimation of `Tr(L_{-S}^{-1})`.
//!
//! `C(S) = n / Tr(L_{-S}^{-1})` (Eq. 3). On graphs too large for a dense
//! inverse the paper evaluates solution quality "employing the conjugate
//! gradient method" (§V-B2); this module implements that evaluation as a
//! Hutchinson estimator — `Tr(M^{-1}) ≈ (1/p) Σ_i z_iᵀ M^{-1} z_i` with
//! Rademacher probes `z_i` — where each application of `M^{-1}` is a
//! solve through an [`SddFactor`], so any registered backend (Jacobi CG,
//! the CSR/IC(0) sparse solver, even dense Cholesky) can carry it.
//!
//! Non-convergence of the underlying solves surfaces as
//! [`LinalgError::DidNotConverge`] — historically it was a silent `bool`
//! a caller could forget to check.

use crate::cg::{CgConfig, CgStats};
use crate::error::LinalgError;
use crate::sdd::{self, SddBackend, SddFactor, SddOptions};
use cfcc_graph::Graph;
use rand::Rng;

/// Result of a trace estimate, with the aggregated solver work:
/// `cg.iterations` sums over all solves, `cg.rel_residual` is the worst
/// one, and `cg.converged` means *every* solve met its tolerance
/// (trivially true on direct backends).
#[derive(Debug, Clone, Copy)]
pub struct TraceEstimate {
    /// Estimated trace.
    pub trace: f64,
    /// Number of probes used (for the exact variant: basis columns).
    pub probes: usize,
    /// Standard error of the probe mean (0 when `probes <= 1`).
    pub std_error: f64,
    /// Aggregated solver statistics across all probes.
    pub cg: CgStats,
}

fn aggregate(total: &mut CgStats, solve: &sdd::SolveStats, before: sdd::SolveStats) {
    total.iterations += (solve.iterations - before.iterations) as usize;
    // Residual of this call's window: exact when the window is a single
    // solve or the factor was fresh; on a reused factor with a multi-solve
    // window, fall back to the factor-lifetime maximum (conservative —
    // over-reporting a residual never hides non-convergence).
    let window = if solve.solves == before.solves + 1 {
        solve.last_rel_residual
    } else {
        solve.max_rel_residual
    };
    total.rel_residual = total.rel_residual.max(window);
}

/// Hutchinson trace of `L_{-S}^{-1}` with `probes` Rademacher probes,
/// each applied through `factor`.
pub fn trace_inverse_hutchinson_factor<R: Rng>(
    factor: &mut dyn SddFactor,
    probes: usize,
    rng: &mut R,
) -> Result<TraceEstimate, LinalgError> {
    assert!(probes >= 1);
    let n = factor.dim();
    let mut z = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    let mut acc = cfcc_util::Welford::new();
    let mut cg = CgStats {
        iterations: 0,
        rel_residual: 0.0,
        converged: true,
        stopped: None,
    };
    for _ in 0..probes {
        for zi in z.iter_mut() {
            *zi = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        }
        let before = factor.stats();
        // Cold start each probe: iterative solve_vec_into honors `x` as a
        // warm start, and the previous probe's solution is unrelated to
        // this probe's random RHS.
        x.fill(0.0);
        factor.solve_vec_into(&z, &mut x)?;
        aggregate(&mut cg, &factor.stats(), before);
        let quad: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        acc.push(quad);
    }
    let se = if acc.count() > 1 {
        (acc.variance() / acc.count() as f64).sqrt()
    } else {
        0.0
    };
    Ok(TraceEstimate {
        trace: acc.mean(),
        probes,
        std_error: se,
        cg,
    })
}

/// Hutchinson trace on a graph through the Jacobi-CG path (the historical
/// entry point; backend-pluggable callers should factor once through
/// [`crate::sdd`] and use [`trace_inverse_hutchinson_factor`]).
pub fn trace_inverse_hutchinson<R: Rng>(
    g: &Graph,
    in_s: &[bool],
    probes: usize,
    cfg: &CgConfig,
    rng: &mut R,
) -> Result<TraceEstimate, LinalgError> {
    let opts = SddOptions {
        rel_tol: cfg.rel_tol,
        max_iter: cfg.max_iter,
        threads: 1,
        stop: cfg.stop.clone(),
        ..SddOptions::default()
    };
    let mut factor = sdd::factor(g, in_s, SddBackend::CgJacobi, &opts)?;
    trace_inverse_hutchinson_factor(factor.as_mut(), probes, rng)
}

/// Exact trace of `L_{-S}^{-1}` by `|V∖S|` solves against basis vectors.
/// `O(n)` solves — exact up to the solver tolerance, used for modest `n`
/// where dense `O(n³)` inversion is already too slow but `O(n · m)`
/// solving is fine. A solve that fails to converge aborts with
/// [`LinalgError::DidNotConverge`].
pub fn trace_inverse_exact_cg(
    g: &Graph,
    in_s: &[bool],
    cfg: &CgConfig,
) -> Result<TraceEstimate, LinalgError> {
    let opts = SddOptions {
        rel_tol: cfg.rel_tol,
        max_iter: cfg.max_iter,
        threads: 1,
        stop: cfg.stop.clone(),
        ..SddOptions::default()
    };
    let mut factor = sdd::factor(g, in_s, SddBackend::CgJacobi, &opts)?;
    trace_inverse_exact_factor(factor.as_mut())
}

/// Exact trace through an already-built factor: direct backends read it
/// off the factorization; iterative backends pay one solve per column.
pub fn trace_inverse_exact_factor(
    factor: &mut dyn SddFactor,
) -> Result<TraceEstimate, LinalgError> {
    let n = factor.dim();
    let before = factor.stats();
    let trace = factor.trace_inverse()?;
    let mut cg = CgStats {
        iterations: 0,
        rel_residual: 0.0,
        converged: true,
        stopped: None,
    };
    aggregate(&mut cg, &factor.stats(), before);
    Ok(TraceEstimate {
        trace,
        probes: n,
        std_error: 0.0,
        cg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_submatrix_dense;
    use crate::sdd::SddSolver;
    use crate::sdd::SparseCgBackend;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_trace(g: &Graph, in_s: &[bool]) -> f64 {
        let (m, _) = laplacian_submatrix_dense(g, in_s);
        m.cholesky().unwrap().inverse().trace()
    }

    #[test]
    fn exact_cg_trace_matches_dense() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::barabasi_albert(40, 2, &mut rng);
        let mut in_s = vec![false; 40];
        in_s[0] = true;
        in_s[13] = true;
        let expect = dense_trace(&g, &in_s);
        let est = trace_inverse_exact_cg(&g, &in_s, &CgConfig::with_tol(1e-12)).unwrap();
        assert!(est.cg.converged);
        assert!(est.cg.iterations > 0, "aggregated CG work must be reported");
        assert!(
            (est.trace - expect).abs() / expect < 1e-8,
            "{} vs {expect}",
            est.trace
        );
    }

    #[test]
    fn nonconvergence_surfaces_as_error_not_flag() {
        let g = generators::path(500);
        let mut in_s = vec![false; 500];
        in_s[0] = true;
        let cfg = CgConfig {
            rel_tol: 1e-14,
            max_iter: 3,
            ..CgConfig::default()
        };
        assert!(matches!(
            trace_inverse_exact_cg(&g, &in_s, &cfg),
            Err(LinalgError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn hutchinson_is_statistically_consistent() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let mut in_s = vec![false; 60];
        in_s[5] = true;
        let expect = dense_trace(&g, &in_s);
        let est =
            trace_inverse_hutchinson(&g, &in_s, 400, &CgConfig::with_tol(1e-10), &mut rng).unwrap();
        assert!(est.cg.converged);
        // 5 standard errors (plus slack for the tiny bias of finite tol).
        let tol = 5.0 * est.std_error + 1e-6;
        assert!(
            (est.trace - expect).abs() < tol,
            "estimate {} vs dense {} (tol {tol})",
            est.trace,
            expect
        );
    }

    #[test]
    fn hutchinson_through_the_sparse_backend_agrees() {
        // Same probes (same RNG stream) through cg-jacobi and sparse-cg
        // give near-identical estimates: the backends answer the same
        // solves to the same tolerance.
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::barabasi_albert(80, 3, &mut rng);
        let mut in_s = vec![false; 80];
        in_s[7] = true;
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let a = trace_inverse_hutchinson(&g, &in_s, 50, &CgConfig::with_tol(1e-11), &mut rng_a)
            .unwrap();
        let mut f = SparseCgBackend
            .factor(&g, &in_s, &SddOptions::with_tol(1e-11))
            .unwrap();
        let b = trace_inverse_hutchinson_factor(f.as_mut(), 50, &mut rng_b).unwrap();
        assert!(
            (a.trace - b.trace).abs() / a.trace < 1e-7,
            "{} vs {}",
            a.trace,
            b.trace
        );
    }

    #[test]
    fn hutchinson_single_probe_has_zero_se() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::cycle(12);
        let mut in_s = vec![false; 12];
        in_s[4] = true;
        let est = trace_inverse_hutchinson(&g, &in_s, 1, &CgConfig::default(), &mut rng).unwrap();
        assert_eq!(est.probes, 1);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn grounding_more_nodes_decreases_trace() {
        // Monotonicity of Tr(L_{-S}^{-1}) — the quantity greedy minimizes.
        let mut rng = StdRng::seed_from_u64(37);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let mut in_s = vec![false; 30];
        in_s[2] = true;
        let t1 = trace_inverse_exact_cg(&g, &in_s, &CgConfig::with_tol(1e-10))
            .unwrap()
            .trace;
        in_s[9] = true;
        let t2 = trace_inverse_exact_cg(&g, &in_s, &CgConfig::with_tol(1e-10))
            .unwrap()
            .trace;
        assert!(t2 < t1);
    }
}
