//! Johnson–Lindenstrauss Rademacher sketches (paper Lemma 3.4).
//!
//! A sketch is a `w × d` matrix with i.i.d. entries `±1/√w`. Both the
//! forest-based estimators and the ApproxGreedy baseline use it to compress
//! the columns of `L_{-S}^{-1}` before taking squared norms.
//!
//! Storage is *node-major* (`d` rows of `w` sketch coordinates): the forest
//! estimators walk nodes in forest order and need all `w` coordinates of a
//! node at once, so this layout keeps the inner loop contiguous.

use rand::Rng;

/// Practical sketch width: `max(floor, ceil(alpha · log2 d))`, capped.
///
/// The theoretical bound `w ≥ 24 (ε/7)^{-2} ln d` exceeds 10⁴ for any
/// realistic ε and is never used by practical implementations; the paper's
/// running times are only achievable with `O(log n)` widths (DESIGN.md §5).
pub fn practical_width(d: usize, epsilon: f64) -> usize {
    let alpha = (2.0 / epsilon).max(2.0); // width grows as ε shrinks
    let w = (alpha * (d.max(2) as f64).log2()).ceil() as usize;
    w.clamp(8, 64)
}

/// Theoretical width from Lemma 3.4 with the paper's `ε/7` split.
pub fn theoretical_width(d: usize, epsilon: f64) -> usize {
    (24.0 * (epsilon / 7.0).powi(-2) * (d.max(2) as f64).ln()).ceil() as usize
}

/// A `w × d` Rademacher JL sketch, stored node-major.
#[derive(Debug, Clone)]
pub struct JlSketch {
    w: usize,
    d: usize,
    /// `data[u*w..(u+1)*w]` = sketch column for coordinate `u`, scaled by `1/√w`.
    data: Vec<f64>,
}

impl JlSketch {
    /// Sample a sketch with the given width `w` over `d` coordinates.
    pub fn sample<R: Rng>(w: usize, d: usize, rng: &mut R) -> Self {
        assert!(w > 0);
        let scale = 1.0 / (w as f64).sqrt();
        let mut data = Vec::with_capacity(w * d);
        for _ in 0..d {
            for _ in 0..w {
                let sign = if rng.gen::<bool>() { scale } else { -scale };
                data.push(sign);
            }
        }
        Self { w, d, data }
    }

    /// Sketch width `w`.
    #[inline]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Number of coordinates `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The `w` sketch values of coordinate `u` (a column of the `w × d`
    /// matrix, contiguous in this layout).
    #[inline]
    pub fn column(&self, u: usize) -> &[f64] {
        &self.data[u * self.w..(u + 1) * self.w]
    }

    /// Row `j` of the sketch as a dense vector (strided gather; used by
    /// ApproxGreedy which needs rows as CG right-hand sides).
    pub fn row(&self, j: usize) -> Vec<f64> {
        assert!(j < self.w);
        (0..self.d).map(|u| self.data[u * self.w + j]).collect()
    }

    /// Apply to a vector: `y = Q x` with `y ∈ R^w`.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.d);
        assert_eq!(y.len(), self.w);
        y.fill(0.0);
        for (u, &xu) in x.iter().enumerate() {
            if xu == 0.0 {
                continue;
            }
            let col = self.column(u);
            for j in 0..self.w {
                y[j] += xu * col[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn widths_are_sane() {
        assert!(practical_width(1000, 0.2) >= 8);
        assert!(practical_width(1000, 0.2) <= 64);
        assert!(practical_width(1000, 0.1) >= practical_width(1000, 0.3));
        // Theoretical width is enormous — the reason practical mode exists.
        assert!(theoretical_width(1000, 0.2) > 10_000);
    }

    #[test]
    fn entries_are_pm_inv_sqrt_w() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = JlSketch::sample(16, 10, &mut rng);
        let s = 1.0 / 4.0;
        for u in 0..10 {
            for &v in q.column(u) {
                assert!((v - s).abs() < 1e-15 || (v + s).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn row_column_consistent_with_apply() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = JlSketch::sample(8, 20, &mut rng);
        let x: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; 8];
        q.apply(&x, &mut y);
        for (j, &yj) in y.iter().enumerate() {
            let row = q.row(j);
            let naive: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((yj - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn norm_preservation_statistical() {
        // E‖Qx‖² = ‖x‖²; with w = 64 the relative error over a few vectors
        // should be modest. Fixed seed keeps this deterministic.
        let mut rng = StdRng::seed_from_u64(3);
        let q = JlSketch::sample(64, 500, &mut rng);
        let mut worst: f64 = 0.0;
        for t in 0..5 {
            let x: Vec<f64> = (0..500).map(|i| ((i * (t + 1)) as f64).cos()).collect();
            let norm_x: f64 = x.iter().map(|v| v * v).sum();
            let mut y = vec![0.0; 64];
            q.apply(&x, &mut y);
            let norm_y: f64 = y.iter().map(|v| v * v).sum();
            worst = worst.max(((norm_y - norm_x) / norm_x).abs());
        }
        assert!(worst < 0.5, "JL distortion too large: {worst}");
    }
}
