//! Error type for factorizations and iterative solvers.

use std::fmt;

/// Errors from dense factorizations and iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Cholesky hit a non-positive pivot: the matrix is not positive
    /// definite (within `pivot` of zero at row `row`).
    NotPositiveDefinite {
        /// Row where factorization failed.
        row: usize,
        /// Offending pivot value.
        pivot: f64,
    },
    /// LU found no usable pivot: matrix is singular to working precision.
    Singular {
        /// Column where elimination failed.
        column: usize,
    },
    /// Iterative solver did not reach the requested tolerance.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// The grounded system `L_{-S}` is singular: `node` has no path to the
    /// grounded set `S` (an isolated vertex, or a whole connected component
    /// disjoint from `S`). Detected at factor time so iterative backends
    /// fail cleanly instead of building an `inf`/NaN preconditioner.
    SingularGrounding {
        /// A kept node with no path to the grounded set.
        node: usize,
    },
    /// Dimension mismatch between operands.
    DimensionMismatch(String),
    /// An in-flight solve was cancelled through the
    /// [`StopHook`](crate::StopHook) (client disconnect, shutdown, …).
    /// The iterate completed so far is left behind for a warm-started
    /// retry; cumulative [`SolveStats`](crate::SolveStats) include the
    /// partial work.
    Cancelled {
        /// Iterations completed before the cancel fired.
        iterations: usize,
    },
    /// An in-flight solve ran past its deadline and was interrupted
    /// mid-sweep through the [`StopHook`](crate::StopHook). Like
    /// [`Cancelled`](Self::Cancelled), the partial iterate is preserved.
    DeadlineExceeded {
        /// Iterations completed before the deadline fired.
        iterations: usize,
    },
}

impl LinalgError {
    /// Whether this error is an interruption (cancel/deadline) rather
    /// than a numerical failure — interruptions leave solver state
    /// warm-startable and are usually mapped to partial results upstream.
    pub fn is_interruption(&self) -> bool {
        matches!(
            self,
            LinalgError::Cancelled { .. } | LinalgError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { row, pivot } => {
                write!(
                    f,
                    "matrix not positive definite at row {row} (pivot {pivot:e})"
                )
            }
            LinalgError::Singular { column } => {
                write!(f, "matrix singular at column {column}")
            }
            LinalgError::DidNotConverge {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "solver did not converge after {iterations} iterations (residual {residual:e})"
                )
            }
            LinalgError::SingularGrounding { node } => {
                write!(
                    f,
                    "grounded Laplacian is singular: node {node} has no path to the grounded set"
                )
            }
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::Cancelled { iterations } => {
                write!(f, "solve cancelled after {iterations} iterations")
            }
            LinalgError::DeadlineExceeded { iterations } => {
                write!(f, "solve deadline exceeded after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = LinalgError::NotPositiveDefinite {
            row: 3,
            pivot: -1e-9,
        };
        assert!(e.to_string().contains("row 3"));
        assert!(LinalgError::Singular { column: 2 }
            .to_string()
            .contains("column 2"));
        let c = LinalgError::DidNotConverge {
            iterations: 100,
            residual: 0.5,
        };
        assert!(c.to_string().contains("100"));
    }
}
