//! Persistent worker pool behind every parallel kernel in this crate.
//!
//! # DESIGN
//!
//! The blocked kernels historically spawned fresh OS threads through
//! `std::thread::scope` on every GEMM/SYRK call. That is correct but pays
//! a full thread spawn + join (~10–50 µs each) per call — ruinous for the
//! many mid-size products a `schur_delta` round or a blocked triangular
//! solve issues. This module replaces those per-call spawns with one
//! process-wide pool:
//!
//! * **Spawn once, park between jobs.** Workers are created lazily the
//!   first time a job wants them (never more than
//!   [`max_workers`]), then block on a condvar until the next job
//!   arrives. An idle pool costs nothing but a few parked threads.
//! * **Task-index dispatch.** A job is `tasks` independent closures
//!   `f(0), …, f(tasks−1)`; executors claim indices from a shared atomic
//!   counter. The *partitioning* of work into tasks is always computed by
//!   the caller from its `threads` parameter alone, so results are
//!   **bit-identical for every thread count and every pool size**: which
//!   worker runs a task never affects what the task computes.
//! * **Caller participates.** The calling thread executes tasks alongside
//!   the workers and returns only when every task has finished, so
//!   borrowed data in `f` stays valid for the whole job — the same
//!   lifetime discipline `std::thread::scope` enforced, now without the
//!   spawns.
//! * **Nested jobs run inline.** A task that itself calls [`run`] executes
//!   its sub-tasks serially on the current thread — no deadlock, no
//!   worker-count explosion, still deterministic.
//!
//! Callers that need to hand each task a disjoint `&mut` region of one
//! buffer (the row-panel kernels) go through [`SendPtr`]; the safety
//! argument lives at each call site.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// A bounds-carrying raw `*mut f64` that may cross thread boundaries. The
/// pool itself guarantees nothing about aliasing — every call site must
/// partition the underlying buffer into disjoint per-task regions and
/// document why.
#[derive(Clone, Copy)]
pub struct SendPtr {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: SendPtr is a plain pointer+length pair; possessing one confers
// no access. Every dereference goes through the `unsafe` [`SendPtr::slice`]
// whose caller contract (in-bounds range, buffer outlives the job, ranges
// disjoint across tasks) is what actually makes cross-thread use sound —
// the full argument lives at each call site and in SAFETY.md.
unsafe impl Send for SendPtr {}
// SAFETY: as for Send — sharing the pair grants nothing until a call site
// invokes `slice` under its documented contract.
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Capture `buf`'s pointer and length for fan-out to pool tasks.
    #[inline]
    pub fn new(buf: &mut [f64]) -> Self {
        Self {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
        }
    }

    /// Reconstruct the mutable sub-slice `[offset, offset + len)`.
    ///
    /// Debug builds bounds-check the range against the captured buffer
    /// length, so a bad partition fails loudly in every test run instead
    /// of corrupting a neighbor's panel; release builds trust the caller.
    ///
    /// # Safety
    /// The caller must ensure the range lies inside the original buffer,
    /// that the buffer outlives every use of the returned slice, and that
    /// no other task (nor the owner) touches the range concurrently.
    #[inline]
    pub unsafe fn slice(self, offset: usize, len: usize) -> &'static mut [f64] {
        debug_assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "SendPtr::slice out of bounds: [{offset}, {offset}+{len}) vs captured len {}",
            self.len
        );
        // SAFETY: in-bounds (checked above in debug), non-overlapping and
        // live per this function's caller contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) }
    }
}

/// One in-flight job: a lifetime-erased task closure plus claim/completion
/// counters. Workers that pop a stale handle (all tasks already claimed)
/// drop it without ever touching `f`, so the erased borrow is never
/// dereferenced after [`WorkerPool::run`] has returned.
struct Job {
    /// The task body, lifetime-erased. Only dereferenced by an executor
    /// that successfully claimed an index `< tasks`, which the completion
    /// protocol confines to the window in which `run`'s caller is blocked
    /// (the borrow is live for that whole window).
    f: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    tasks: usize,
    done: Mutex<usize>,
    finished: Condvar,
    /// Debug guard for the claim protocol: set false by `run` the moment
    /// `wait` returns (the erased borrow's last valid instant). A task
    /// claim observing `false` means the lifetime-erasure invariant was
    /// broken — caught by `debug_assert` in every test run.
    live: AtomicBool,
    /// First panic payload raised by any task — re-thrown to the
    /// submitting caller after the job drains, mirroring what
    /// `std::thread::scope` did on join. Without this a panicking task
    /// would leave `done < tasks` forever and deadlock the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `f` is the only field that is not automatically Send (a raw wide
// pointer). It is only ever dereferenced under the claim protocol
// documented on the field — by an executor holding a task index
// `< tasks`, within the window in which the submitting `run` call is
// still blocked — and the pointee is required to be `Sync` at the
// submission boundary, so moving the handle to a worker thread is sound.
unsafe impl Send for Job {}
// SAFETY: as for Send — all mutable state in Job is behind atomics or
// locks, and `f` is a `Sync` closure dereferenced read-only.
unsafe impl Sync for Job {}

impl Job {
    /// Claim and execute tasks until none remain. Task panics are caught
    /// (the task still counts as done, so the caller never deadlocks) and
    /// stashed for [`WorkerPool::run`] to re-raise; they also keep the
    /// executing worker alive for future jobs.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::AcqRel);
            if i >= self.tasks {
                return;
            }
            debug_assert!(
                self.live.load(Ordering::Acquire),
                "pool claim protocol violated: task {i} claimed after run() returned"
            );
            // SAFETY: `i < tasks` proves the job is still live — the
            // submitting `run` call cannot have returned, because it waits
            // for `done == tasks` and task `i` has not completed yet.
            let f = unsafe { &*self.f };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                // Poison recovery throughout this module: both counters are
                // plain integers/options, valid after any panic, and a
                // panicking executor must still be able to finish the
                // count-up or the submitting caller deadlocks.
                let mut slot = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
                slot.get_or_insert(payload);
            }
            let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
            *done += 1;
            if *done == self.tasks {
                self.finished.notify_all();
            }
        }
    }

    /// Block until every task has completed.
    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while *done < self.tasks {
            done = self
                .finished
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    ready: Condvar,
}

/// The process-wide worker pool. Obtain it through [`WorkerPool::global`];
/// per-call thread *counts* are a parameter of [`WorkerPool::run`], not of
/// the pool — one pool serves every caller.
pub struct WorkerPool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

thread_local! {
    /// Set inside pool workers (and inside tasks running on the caller
    /// thread) so nested `run` calls degrade to inline serial execution.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Hard ceiling on pool size: oversubscribing cores only adds scheduler
/// noise, and the row-panel partitioning already caps useful parallelism
/// at the caller's `threads` argument.
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 64)
}

fn worker_loop(shared: Arc<Shared>) {
    IN_TASK.with(|t| t.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job.work();
    }
}

impl WorkerPool {
    /// The process-wide pool (created empty; workers spawn on demand).
    pub fn global() -> &'static WorkerPool {
        POOL.get_or_init(|| WorkerPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        })
    }

    /// Workers spawned so far (monotone, capped at [`max_workers`]) —
    /// exposed so tests can assert the pool is reused rather than regrown.
    pub fn spawned(&self) -> usize {
        *self.spawned.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn ensure_workers(&self, want: usize) {
        let want = want.min(max_workers());
        let mut spawned = self.spawned.lock().unwrap_or_else(PoisonError::into_inner);
        while *spawned < want {
            let shared = Arc::clone(&self.shared);
            let res = std::thread::Builder::new()
                .name(format!("cfcc-pool-{spawned}"))
                .spawn(move || worker_loop(shared));
            if res.is_err() {
                // Out of OS threads: degrade to however many helpers exist.
                // `run` stays correct at any pool size (the caller is always
                // an executor), so fewer workers only costs parallelism.
                break;
            }
            *spawned += 1;
        }
    }

    /// Execute `f(0), …, f(tasks − 1)` using up to `threads` executors
    /// (the calling thread included), returning once **all** tasks have
    /// completed. With `threads ≤ 1`, a single task, or when called from
    /// inside a pool task, everything runs inline on the current thread.
    ///
    /// Task partitioning is the caller's job; this function only promises
    /// that every index runs exactly once and that which thread runs it
    /// cannot be observed through the result (tasks must not communicate).
    pub fn run(&self, threads: usize, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        let helpers = threads.min(tasks).saturating_sub(1);
        if helpers == 0 || IN_TASK.with(Cell::get) {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        self.ensure_workers(helpers);
        // The reference-to-raw cast is safe; only the type-level lifetime
        // bound on the trait object still needs erasing to `'static` below.
        let f_short = f as *const (dyn Fn(usize) + Sync);
        // SAFETY: pure lifetime erasure between two identically laid out
        // raw wide pointers. The erased borrow stays valid for every
        // dereference because this function does not return until
        // `done == tasks`, and no executor touches `f` without having
        // claimed a task index `< tasks` first; the `live` flag
        // debug-checks that protocol on every claim.
        let f_static = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f_short)
        };
        let job = Arc::new(Job {
            f: f_static,
            next: AtomicUsize::new(0),
            tasks,
            done: Mutex::new(0),
            finished: Condvar::new(),
            live: AtomicBool::new(true),
            panic: Mutex::new(None),
        });
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for _ in 0..helpers {
                queue.push_back(Arc::clone(&job));
            }
        }
        if helpers == 1 {
            self.shared.ready.notify_one();
        } else {
            self.shared.ready.notify_all();
        }
        // The caller is an executor too; mark it so nested `run` calls
        // from inside its tasks serialize instead of re-entering the pool.
        // The flag is restored through an RAII guard so a caught task
        // panic cannot leave this thread permanently flagged (which would
        // silently serialize every later `run` from it).
        struct InTaskGuard;
        impl Drop for InTaskGuard {
            fn drop(&mut self) {
                IN_TASK.with(|t| t.set(false));
            }
        }
        IN_TASK.with(|t| t.set(true));
        {
            let _guard = InTaskGuard;
            job.work();
        }
        job.wait();
        // The erased borrow dies when this function returns: flip the
        // debug guard so any later claim (a protocol bug) asserts.
        job.live.store(false, Ordering::Release);
        // Every task has run; re-raise the first task panic to the
        // caller, matching `std::thread::scope`'s join behavior.
        let payload = job
            .panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// [`WorkerPool::run`] on the global pool — the form the kernels use.
pub fn run(threads: usize, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    WorkerPool::global().run(threads, tasks, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_task_runs_exactly_once() {
        for threads in [1, 2, 4, 7] {
            for tasks in [0, 1, 3, 16, 61] {
                let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
                run(threads, tasks, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn results_match_serial_for_every_thread_count() {
        // Each task owns a disjoint slot; the aggregate must be identical
        // however the tasks are scheduled.
        let n = 40;
        let serial: Vec<u64> = (0..n as u64).map(|i| i * i + 7).collect();
        for threads in [2, 3, 8] {
            let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            run(threads, n, &|i| {
                out[i].store((i as u64) * (i as u64) + 7, Ordering::Relaxed);
            });
            let got: Vec<u64> = out.iter().map(|v| v.load(Ordering::Relaxed)).collect();
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn nested_runs_serialize_without_deadlock() {
        let count = AtomicUsize::new(0);
        run(4, 4, &|_| {
            run(4, 8, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn pool_is_reused_not_regrown() {
        // Many consecutive jobs must not spawn more than max_workers
        // threads in total — reuse is the whole point of the pool.
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            run(4, 4, &|i| {
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
        }
        assert!(WorkerPool::global().spawned() <= max_workers());
    }

    #[test]
    fn task_panic_propagates_and_pool_stays_usable() {
        // A panicking task must neither deadlock the caller nor kill the
        // pool: the panic re-raises from `run`, and later jobs still
        // complete (workers survive via the internal catch).
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(4, 8, &|i| {
                if i == 3 {
                    panic!("boom in task 3");
                }
            });
        }));
        assert!(caught.is_err(), "task panic must reach the caller");
        let hits: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        run(4, 16, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        // The caller thread's in-task flag was restored: this run still
        // uses the pool (indirectly checked — it completes and spawned()
        // stays within the cap).
        assert!(WorkerPool::global().spawned() <= max_workers());
    }

    #[test]
    fn borrowed_mutable_buffer_via_sendptr() {
        let mut buf = vec![0.0f64; 64];
        let ptr = SendPtr::new(&mut buf);
        let tasks = 8;
        run(4, tasks, &|t| {
            // SAFETY: task t owns the disjoint range [8t, 8t + 8).
            let chunk = unsafe { ptr.slice(8 * t, 8) };
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (8 * t + j) as f64;
            }
        });
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, i as f64);
        }
    }
}
