//! Spanning-tree (combinatorial) preconditioner for grounded Laplacians —
//! the `tree-pcg` SDD backend's `M⁻¹`.
//!
//! The preconditioner is the classic diagonal-compensated spanning-tree
//! support graph (Vaidya's construction, the first rung of the
//! Spielman–Teng / Kyng–Sachdeva solver line the paper assumes): take a
//! BFS spanning forest `T` of `G` rooted at the highest-degree node of
//! each component, and precondition `L_{-S}` with
//!
//! ```text
//! M = L_T restricted to V ∖ S  +  diag(deg_G − deg_T)
//! ```
//!
//! i.e. the grounded Laplacian of the tree, keeping the **full** graph
//! degrees on the diagonal. Off-tree edges therefore survive as diagonal
//! mass, which keeps `M` symmetric positive definite whenever `L_{-S}`
//! itself is nonsingular (every kept component either has a tree edge
//! into `S` or a node with off-tree surplus degree — for a connected `G`
//! with nonempty `S`, always).
//!
//! Because `M`'s graph is a forest, its Cholesky factorization has **zero
//! fill** under a children-before-parents elimination order: each node
//! contributes a single off-diagonal entry toward its parent. Both the
//! factorization and each application (forward sweep, diagonal scale,
//! backward sweep) are `O(n)` — cheaper per iteration than IC(0) — and
//! unlike Jacobi the tree carries long-range connectivity, so PCG needs
//! far fewer iterations on meshes, road networks, and other
//! large-diameter graphs where the diagonal alone stalls.

use crate::error::LinalgError;
use crate::DenseMatrix;
use cfcc_graph::{Graph, Node};

/// Exactly-factored diagonal-compensated spanning-tree preconditioner
/// over the compacted index space `V ∖ S`.
#[derive(Debug, Clone)]
pub struct TreePreconditioner {
    /// Forest parent in compact space (`usize::MAX` for roots: nodes
    /// whose BFS parent is grounded, or BFS roots themselves).
    parent: Vec<usize>,
    /// Elimination order over compact indices: children strictly before
    /// parents (reverse BFS visit order).
    order: Vec<u32>,
    /// Unit-lower LDLᵀ entry toward the parent: `L[parent(i)][i]`.
    e: Vec<f64>,
    /// LDLᵀ pivots `D[i]` (all positive for a valid grounding).
    d: Vec<f64>,
}

impl TreePreconditioner {
    /// Build and factor the preconditioner for `L_{-S}` of `g`.
    ///
    /// `keep`/`pos` are the compact-space maps shared by every backend
    /// (kept nodes ascending; original node → compact index or
    /// `usize::MAX`). Fails with [`LinalgError::NotPositiveDefinite`] if a
    /// pivot collapses, which only happens when `L_{-S}` itself is
    /// (numerically) singular — callers should run the grounding
    /// connectivity check first for a structured error.
    pub fn build(
        g: &Graph,
        in_s: &[bool],
        keep: &[Node],
        pos: &[usize],
    ) -> Result<Self, LinalgError> {
        assert_eq!(in_s.len(), g.num_nodes());
        let n = g.num_nodes();
        let nk = keep.len();
        // BFS spanning forest over the WHOLE graph (S included — a tree
        // edge into S becomes pure diagonal mass in M). Rooting at the
        // highest-degree node keeps hub-and-spoke stretch low; remaining
        // components (rare — the CLI reduces to the LCC) get ascending
        // roots.
        let mut parent_orig = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut visit_order: Vec<u32> = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        let root = (0..n as Node).max_by_key(|&u| g.degree(u)).unwrap_or(0);
        for start in std::iter::once(root).chain(0..n as Node) {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                visit_order.push(u);
                for &v in g.neighbors(u) {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        parent_orig[v as usize] = u as usize;
                        queue.push_back(v);
                    }
                }
            }
        }

        // Restrict to the kept nodes: the forest parent survives only when
        // it is kept too; reverse BFS order puts children before parents.
        let mut parent = vec![usize::MAX; nk];
        let mut order: Vec<u32> = Vec::with_capacity(nk);
        for &u in visit_order.iter().rev() {
            let i = pos[u as usize];
            if i == usize::MAX {
                continue;
            }
            order.push(i as u32);
            let q = parent_orig[u as usize];
            if q != usize::MAX && pos[q] != usize::MAX {
                parent[i] = pos[q];
            }
        }

        let diag: Vec<f64> = keep.iter().map(|&u| g.degree(u) as f64).collect();
        Self::from_forest(parent, order, diag)
    }

    /// Factor an arbitrary diagonal-compensated forest matrix given its
    /// compact-space `parent` array (`usize::MAX` for roots), an
    /// elimination `order` with children strictly before parents, and the
    /// matrix `diag`onal (unit off-diagonals toward parents are implied).
    ///
    /// This is the zero-fill LDLᵀ seam shared with the `lsst-pcg`
    /// backend's tree-only mode ([`crate::lsst`]): eliminating child `i`
    /// writes the single factor entry `e[i] = −1/D[i]` toward its parent
    /// and downdates the parent's pivot by `1/D[i]`. `O(n)`.
    pub fn from_forest(
        parent: Vec<usize>,
        order: Vec<u32>,
        diag: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        assert_eq!(parent.len(), diag.len());
        assert_eq!(order.len(), diag.len());
        let mut d = diag;
        let mut e = vec![0.0f64; d.len()];
        for &i in &order {
            let i = i as usize;
            if d[i] <= f64::MIN_POSITIVE || !d[i].is_finite() {
                return Err(LinalgError::NotPositiveDefinite {
                    row: i,
                    pivot: d[i],
                });
            }
            let q = parent[i];
            if q != usize::MAX {
                e[i] = -1.0 / d[i];
                d[q] -= 1.0 / d[i];
            }
        }
        for (i, &di) in d.iter().enumerate() {
            if di <= f64::MIN_POSITIVE || !di.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { row: i, pivot: di });
            }
        }
        Ok(Self {
            parent,
            order,
            e,
            d,
        })
    }

    /// Dimension of the compacted system.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Stored off-diagonal factor entries (= kept forest edges).
    pub fn nnz_factor(&self) -> usize {
        self.parent.iter().filter(|&&q| q != usize::MAX).count()
    }

    /// Apply `z = M⁻¹ r`: forward sweep (L y = r, children push into
    /// parents), diagonal scale, backward sweep (Lᵀ z = y, parents feed
    /// children). Three O(n) passes, no allocation.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.dim());
        debug_assert_eq!(z.len(), self.dim());
        z.copy_from_slice(r);
        for &i in &self.order {
            let i = i as usize;
            let q = self.parent[i];
            if q != usize::MAX {
                z[q] -= self.e[i] * z[i];
            }
        }
        for (zi, di) in z.iter_mut().zip(&self.d) {
            *zi /= di;
        }
        for &i in self.order.iter().rev() {
            let i = i as usize;
            let q = self.parent[i];
            if q != usize::MAX {
                z[i] -= self.e[i] * z[q];
            }
        }
    }

    /// Blocked [`TreePreconditioner::apply`]: `Z = M⁻¹ R` for a block of
    /// columns, sweeping the forest once for all columns.
    pub fn apply_block(&self, r: &DenseMatrix, z: &mut DenseMatrix) {
        debug_assert_eq!(r.rows(), self.dim());
        debug_assert_eq!(z.rows(), self.dim());
        debug_assert_eq!(r.cols(), z.cols());
        let w = r.cols();
        let zd = z.data_mut();
        zd.copy_from_slice(r.data());
        for &i in &self.order {
            let i = i as usize;
            let q = self.parent[i];
            if q != usize::MAX {
                let (ib, qb) = (i * w, q * w);
                for s in 0..w {
                    zd[qb + s] -= self.e[i] * zd[ib + s];
                }
            }
        }
        for (i, &di) in self.d.iter().enumerate() {
            let inv = 1.0 / di;
            for s in 0..w {
                zd[i * w + s] *= inv;
            }
        }
        for &i in self.order.iter().rev() {
            let i = i as usize;
            let q = self.parent[i];
            if q != usize::MAX {
                let (ib, qb) = (i * w, q * w);
                for s in 0..w {
                    zd[ib + s] -= self.e[i] * zd[qb + s];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_submatrix_dense;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keep_pos(g: &Graph, in_s: &[bool]) -> (Vec<Node>, Vec<usize>) {
        let keep: Vec<Node> = (0..g.num_nodes() as Node)
            .filter(|&u| !in_s[u as usize])
            .collect();
        let mut pos = vec![usize::MAX; g.num_nodes()];
        for (i, &u) in keep.iter().enumerate() {
            pos[u as usize] = i;
        }
        (keep, pos)
    }

    /// Dense reconstruction of M = L_T|ker + diag(deg_G − deg_T): verify
    /// apply() inverts it, via M · (M⁻¹ r) = r.
    #[test]
    fn apply_inverts_the_compensated_tree_matrix() {
        let mut rng = StdRng::seed_from_u64(0x7EE);
        for trial in 0..4u64 {
            let g = match trial {
                0 => generators::grid(8, 9),
                1 => generators::barabasi_albert(70, 3, &mut rng),
                2 => generators::path(50),
                _ => generators::erdos_renyi_gnm(60, 180, &mut rng),
            };
            let n = g.num_nodes();
            let mut in_s = vec![false; n];
            in_s[trial as usize % n] = true;
            let (keep, pos) = keep_pos(&g, &in_s);
            let tp = TreePreconditioner::build(&g, &in_s, &keep, &pos).unwrap();
            assert_eq!(tp.dim(), n - 1);
            // The kept forest has at most n−2 edges (n−1 kept nodes).
            assert!(tp.nnz_factor() < n - 1);
            let r: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut z = vec![0.0; n - 1];
            tp.apply(&r, &mut z);
            // Rebuild M densely from the factor's own parent structure:
            // diag = full degrees, off-diag −1 on kept forest edges.
            let mut m = crate::DenseMatrix::zeros(n - 1, n - 1);
            for (i, &u) in keep.iter().enumerate() {
                m.set(i, i, g.degree(u) as f64);
            }
            for i in 0..n - 1 {
                let q = tp.parent[i];
                if q != usize::MAX {
                    m.set(i, q, -1.0);
                    m.set(q, i, -1.0);
                }
            }
            let mut mz = vec![0.0; n - 1];
            m.matvec(&z, &mut mz);
            for (a, b) in mz.iter().zip(&r) {
                assert!((a - b).abs() < 1e-9, "trial {trial}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exact_on_trees() {
        // When G is itself a tree the preconditioner IS L_{-S}: one
        // application solves the system.
        let mut rng = StdRng::seed_from_u64(0x7E1);
        let g = generators::random_tree(60, &mut rng);
        let mut in_s = vec![false; 60];
        in_s[11] = true;
        let (keep, pos) = keep_pos(&g, &in_s);
        let tp = TreePreconditioner::build(&g, &in_s, &keep, &pos).unwrap();
        let (dense, _) = laplacian_submatrix_dense(&g, &in_s);
        let ch = dense.cholesky().unwrap();
        let r: Vec<f64> = (0..59).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut z = vec![0.0; 59];
        tp.apply(&r, &mut z);
        let exact = ch.solve(&r);
        for (a, b) in z.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn block_apply_matches_columnwise() {
        let mut rng = StdRng::seed_from_u64(0x7E2);
        let g = generators::grid(7, 8);
        let mut in_s = vec![false; 56];
        in_s[5] = true;
        let (keep, pos) = keep_pos(&g, &in_s);
        let tp = TreePreconditioner::build(&g, &in_s, &keep, &pos).unwrap();
        let d = 55;
        let mut r = DenseMatrix::zeros(d, 6);
        for i in 0..d {
            for j in 0..6 {
                r.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let mut z = DenseMatrix::zeros(d, 6);
        tp.apply_block(&r, &mut z);
        let mut col = vec![0.0; d];
        let mut zc = vec![0.0; d];
        for j in 0..6 {
            for (i, c) in col.iter_mut().enumerate() {
                *c = r.get(i, j);
            }
            tp.apply(&col, &mut zc);
            for (i, &v) in zc.iter().enumerate() {
                assert!((z.get(i, j) - v).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn preconditioner_is_spd() {
        // zᵀ r > 0 for every nonzero r (SPD M⁻¹) on a graph with an
        // awkward grounding (hub grounded: star-like forest pieces).
        let g = generators::star(30);
        let mut in_s = vec![false; 30];
        in_s[0] = true;
        let (keep, pos) = keep_pos(&g, &in_s);
        let tp = TreePreconditioner::build(&g, &in_s, &keep, &pos).unwrap();
        let mut rng = StdRng::seed_from_u64(0x7E3);
        for _ in 0..5 {
            let r: Vec<f64> = (0..29).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut z = vec![0.0; 29];
            tp.apply(&r, &mut z);
            let zr: f64 = z.iter().zip(&r).map(|(a, b)| a * b).sum();
            assert!(zr > 0.0);
        }
    }
}
