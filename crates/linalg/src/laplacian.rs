//! Laplacian matrices and grounded-submatrix operators.
//!
//! Two representations coexist:
//!
//! * dense `L` / `L_{-S}` builders for small graphs (exact baselines, test
//!   oracles), and
//! * [`LaplacianSubmatrix`] — a matrix-free operator applying `L_{-S}` on a
//!   *compacted* index space (`V \ S` relabelled `0..n-|S|`), which is what
//!   the CG solver iterates with. The diagonal keeps the **full** degree
//!   `d_u` of `G` (grounding removes rows/columns, not degree mass), which is
//!   exactly why `L_{-S}` is positive definite for connected `G`.

use crate::dense::DenseMatrix;
use cfcc_graph::{Graph, Node};

/// Dense Laplacian `L = D − A` of `g`.
pub fn laplacian_dense(g: &Graph) -> DenseMatrix {
    let n = g.num_nodes();
    let mut l = DenseMatrix::zeros(n, n);
    for u in 0..n as Node {
        l.set(u as usize, u as usize, g.degree(u) as f64);
        for &v in g.neighbors(u) {
            l.set(u as usize, v as usize, -1.0);
        }
    }
    l
}

/// Dense grounded submatrix `L_{-S}`, rows/columns restricted to `V \ S` in
/// increasing node order. Returns the matrix and the kept nodes.
pub fn laplacian_submatrix_dense(g: &Graph, in_s: &[bool]) -> (DenseMatrix, Vec<Node>) {
    assert_eq!(in_s.len(), g.num_nodes());
    let keep: Vec<Node> = (0..g.num_nodes() as Node)
        .filter(|&u| !in_s[u as usize])
        .collect();
    let mut pos = vec![usize::MAX; g.num_nodes()];
    for (i, &u) in keep.iter().enumerate() {
        pos[u as usize] = i;
    }
    let k = keep.len();
    let mut m = DenseMatrix::zeros(k, k);
    for (i, &u) in keep.iter().enumerate() {
        m.set(i, i, g.degree(u) as f64);
        for &v in g.neighbors(u) {
            let j = pos[v as usize];
            if j != usize::MAX {
                m.set(i, j, -1.0);
            }
        }
    }
    (m, keep)
}

/// Matrix-free operator for `L_{-S}` over the compacted space `V \ S`.
#[derive(Debug, Clone)]
pub struct LaplacianSubmatrix<'g> {
    graph: &'g Graph,
    /// Kept (non-grounded) nodes, ascending.
    keep: Vec<Node>,
    /// Original node → compact index (`usize::MAX` for grounded nodes).
    pos: Vec<usize>,
}

impl<'g> LaplacianSubmatrix<'g> {
    /// Build the operator from a grounded-set mask (`in_s[u]` ⇒ `u ∈ S`).
    pub fn new(graph: &'g Graph, in_s: &[bool]) -> Self {
        assert_eq!(in_s.len(), graph.num_nodes());
        let keep: Vec<Node> = (0..graph.num_nodes() as Node)
            .filter(|&u| !in_s[u as usize])
            .collect();
        let mut pos = vec![usize::MAX; graph.num_nodes()];
        for (i, &u) in keep.iter().enumerate() {
            pos[u as usize] = i;
        }
        Self { graph, keep, pos }
    }

    /// Dimension of the compacted operator (`|V \ S|`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.keep.len()
    }

    /// Kept nodes in compact order.
    pub fn kept_nodes(&self) -> &[Node] {
        &self.keep
    }

    /// Compact index of original node `u`, if kept.
    #[inline]
    pub fn compact_of(&self, u: Node) -> Option<usize> {
        let p = self.pos[u as usize];
        (p != usize::MAX).then_some(p)
    }

    /// Original node at compact index `i`.
    #[inline]
    pub fn node_of(&self, i: usize) -> Node {
        self.keep[i]
    }

    /// `y = L_{-S} x` on compact vectors.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        for (i, &u) in self.keep.iter().enumerate() {
            let mut acc = self.graph.degree(u) as f64 * x[i];
            for &v in self.graph.neighbors(u) {
                let j = self.pos[v as usize];
                if j != usize::MAX {
                    acc -= x[j];
                }
            }
            y[i] = acc;
        }
    }

    /// Blocked [`LaplacianSubmatrix::apply`]: `Y = L_{-S} X` for a block
    /// of column vectors (row-major `n × w` matrices). Adjacency lists are
    /// traversed once for all `w` columns — the sharing the blocked
    /// multi-RHS PCG relies on.
    pub fn apply_block(&self, x: &DenseMatrix, y: &mut DenseMatrix) {
        self.apply_block_threaded(x, y, 1);
    }

    /// [`LaplacianSubmatrix::apply_block`] with output rows partitioned
    /// across the worker pool — each output row is one independent
    /// adjacency-list gather, so results are bit-identical for every
    /// thread count.
    pub fn apply_block_threaded(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        assert_eq!(x.rows(), self.dim());
        assert_eq!(y.rows(), self.dim());
        assert_eq!(x.cols(), y.cols());
        let n = self.dim();
        let w = x.cols();
        /// Minimum multiply-adds per pool task.
        const GRAIN: usize = 16 * 1024;
        let edges2 = 2 * self.graph.num_edges() + n;
        let t = threads.max(1).min(n.max(1)).min(1 + edges2 * w / GRAIN);
        let yp = crate::pool::SendPtr::new(y.data_mut());
        crate::pool::run(t, t, &move |tix| {
            let r0 = n * tix / t;
            let r1 = n * (tix + 1) / t;
            for (i, &u) in self.keep[r0..r1]
                .iter()
                .enumerate()
                .map(|(i, u)| (r0 + i, u))
            {
                let deg = self.graph.degree(u) as f64;
                // SAFETY: rows [r0, r1) of y are owned exclusively by
                // this task (disjoint partition over output rows).
                let yr = unsafe { yp.slice(i * w, w) };
                for (ys, &xs) in yr.iter_mut().zip(x.row(i)) {
                    *ys = deg * xs;
                }
                for &v in self.graph.neighbors(u) {
                    let j = self.pos[v as usize];
                    if j != usize::MAX {
                        for (ys, &xs) in yr.iter_mut().zip(x.row(j)) {
                            *ys -= xs;
                        }
                    }
                }
            }
        });
    }

    /// Diagonal of `L_{-S}` (the full degrees) — the Jacobi preconditioner.
    pub fn diagonal(&self) -> Vec<f64> {
        self.keep
            .iter()
            .map(|&u| self.graph.degree(u) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;

    #[test]
    fn dense_laplacian_rows_sum_to_zero() {
        let g = generators::cycle(6);
        let l = laplacian_dense(&g);
        for i in 0..6 {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
            assert_eq!(l.get(i, i), 2.0);
        }
    }

    #[test]
    fn submatrix_matches_dense_operator() {
        let g = generators::barbell(3, 2);
        let n = g.num_nodes();
        let mut in_s = vec![false; n];
        in_s[0] = true;
        in_s[4] = true;
        let (dense, keep) = laplacian_submatrix_dense(&g, &in_s);
        let op = LaplacianSubmatrix::new(&g, &in_s);
        assert_eq!(op.dim(), n - 2);
        assert_eq!(op.kept_nodes(), keep.as_slice());
        // Apply to a few basis vectors and compare columns.
        let mut x = vec![0.0; op.dim()];
        let mut y = vec![0.0; op.dim()];
        for j in 0..op.dim() {
            x.fill(0.0);
            x[j] = 1.0;
            op.apply(&x, &mut y);
            for (i, &yi) in y.iter().enumerate() {
                assert!((yi - dense.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diagonal_keeps_full_degree() {
        // Grounding a neighbor must NOT reduce the diagonal degree.
        let g = generators::star(5);
        let mut in_s = vec![false; 5];
        in_s[0] = true; // ground the hub
        let op = LaplacianSubmatrix::new(&g, &in_s);
        assert_eq!(op.diagonal(), vec![1.0; 4]);
        let (dense, _) = laplacian_submatrix_dense(&g, &in_s);
        for i in 0..4 {
            assert_eq!(dense.get(i, i), 1.0);
        }
    }

    #[test]
    fn submatrix_is_positive_definite_for_connected_graph() {
        let g = generators::cycle(8);
        let mut in_s = vec![false; 8];
        in_s[3] = true;
        let (dense, _) = laplacian_submatrix_dense(&g, &in_s);
        assert!(dense.cholesky().is_ok());
    }

    #[test]
    fn compact_index_roundtrip() {
        let g = generators::path(5);
        let in_s = vec![false, true, false, true, false];
        let op = LaplacianSubmatrix::new(&g, &in_s);
        assert_eq!(op.dim(), 3);
        assert_eq!(op.compact_of(0), Some(0));
        assert_eq!(op.compact_of(1), None);
        assert_eq!(op.node_of(1), 2);
        assert_eq!(op.node_of(2), 4);
    }
}
