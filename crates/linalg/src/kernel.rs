//! Blocked dense kernels: packed tiled GEMM, SYRK-style symmetric updates,
//! and the pool-backed row-panel parallelism behind them.
//!
//! # DESIGN
//!
//! The workspace has no BLAS binding, so this module implements the
//! BLIS-style three-loop blocking scheme (the same structure faer-rs uses)
//! in portable safe Rust and relies on LLVM's autovectorizer for the inner
//! micro-kernel:
//!
//! * **Micro-tile** `MR × NR = 4 × 8`: the accumulator is a `[[f64; 8]; 4]`
//!   register block — 8 ymm registers on AVX2, updated with 32 FMAs per
//!   depth step from one packed A column (4 contiguous values, one
//!   broadcast each) and one packed B row (8 contiguous values, two vector
//!   loads).
//! * **Cache blocking** `MC × KC × NC = 128 × 256 × 512`: a `KC`-deep B
//!   panel (`KC·NR` doubles per micro-column, streamed from L2) is reused
//!   against `MC`-row A panels packed to fit L1-friendly `KC·MR` strips.
//! * **Packing layout**: A panels are stored micro-row-major
//!   (`ap[p·MR + r]` for depth `p`, row `r`), B panels micro-column-major
//!   (`bp[p·NR + c]`), both zero-padded to full tiles so the micro-kernel
//!   has no edge branches. There is deliberately **no** `a == 0.0` skip —
//!   the seed's zero-branch defeated vectorization and branch prediction on
//!   dense data.
//! * **Parallelism**: the persistent worker pool ([`crate::pool`]) splits
//!   the *output rows* into contiguous panels (rows are the contiguous
//!   unit of our row-major storage — the transpose view of a column-panel
//!   split). Each task runs the identical serial pipeline on its panel, so
//!   results are **bit-identical for every thread count**: each output
//!   element is produced by exactly one task using the same accumulation
//!   order, and the partition depends only on the `threads` argument,
//!   never on scheduling. Workers are spawned once and parked between
//!   calls — there is **no per-call thread spawn** anywhere in the GEMM /
//!   SYRK hot path.
//! * **Small-case bypass**: problems under [`SMALL_FLOPS`] flops skip the
//!   packing machinery entirely — tests and `|T| × |T|` Schur blocks stay
//!   allocation-free.
//!
//! Callers should prefer *factorize once, solve many* ([`crate::dense`]'s
//! `solve_mat`) over forming explicit inverses; see the module notes in
//! [`crate::dense`] for when an inverse is genuinely required.

use crate::pool::{self, SendPtr};

/// Micro-tile rows (register-block height).
pub const MR: usize = 4;
/// Micro-tile columns (register-block width).
pub const NR: usize = 8;
/// Rows of a packed A block (L2 blocking).
pub const MC: usize = 128;
/// Depth of packed panels (L1/L2 blocking).
pub const KC: usize = 256;
/// Columns of a packed B panel (L3 blocking).
pub const NC: usize = 512;
/// Panel width of the blocked Cholesky / triangular solves.
pub const NB: usize = 64;

/// Flop threshold (`2·m·n·k`) below which the packed pipeline is skipped
/// in favor of a branch-free direct triple loop.
const SMALL_FLOPS: usize = 64 * 1024;

/// `MR × NR` register-tile update: `acc += Ap · Bp` over `kc` depth steps.
///
/// The accumulator is copied to a local before the loop and the packed
/// strips are read through fixed-size array references — both are load
/// bearing: they let LLVM keep the whole tile in vector registers and
/// fully unroll the `MR × NR` body regardless of the inlining context
/// (slice-indexed variants of this loop de-vectorize when inlined into
/// larger drivers, costing ~4×).
#[inline(always)]
fn micro_kernel(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    let mut local = *acc;
    let (a_tiles, _) = ap.as_chunks::<MR>();
    let (b_tiles, _) = bp.as_chunks::<NR>();
    for (a, b) in a_tiles.iter().zip(b_tiles).take(kc) {
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                local[r][c] += ar * b[c];
            }
        }
    }
    *acc = local;
}

/// Pack an `mc × kc` panel of `A` (element `(i, p)` at
/// `a[off + i·stride + p]`, or `a[off + p·stride + i]` when `trans`) into
/// micro-row-major strips, zero-padding the row remainder.
fn pack_a(
    a: &[f64],
    off: usize,
    stride: usize,
    trans: bool,
    mc: usize,
    kc: usize,
    ap: &mut Vec<f64>,
) {
    let panels = mc.div_ceil(MR);
    ap.clear();
    ap.resize(panels * kc * MR, 0.0);
    for ib in 0..panels {
        let r0 = ib * MR;
        let rows = MR.min(mc - r0);
        let dst = &mut ap[ib * kc * MR..(ib + 1) * kc * MR];
        if trans {
            for p in 0..kc {
                let src = &a[off + p * stride + r0..off + p * stride + r0 + rows];
                dst[p * MR..p * MR + rows].copy_from_slice(src);
            }
        } else {
            for (r, row) in (0..rows).map(|r| (r, off + (r0 + r) * stride)) {
                for p in 0..kc {
                    dst[p * MR + r] = a[row + p];
                }
            }
        }
    }
}

/// Pack a `kc × nc` panel of `B` (element `(p, j)` at
/// `b[off + p·stride + j]`, or `b[off + j·stride + p]` when `trans`) into
/// micro-column-major strips, zero-padding the column remainder.
fn pack_b(
    b: &[f64],
    off: usize,
    stride: usize,
    trans: bool,
    kc: usize,
    nc: usize,
    bp: &mut Vec<f64>,
) {
    let panels = nc.div_ceil(NR);
    bp.clear();
    bp.resize(panels * kc * NR, 0.0);
    for jb in 0..panels {
        let c0 = jb * NR;
        let cols = NR.min(nc - c0);
        let dst = &mut bp[jb * kc * NR..(jb + 1) * kc * NR];
        if trans {
            for (c, col) in (0..cols).map(|c| (c, off + (c0 + c) * stride)) {
                for p in 0..kc {
                    dst[p * NR + c] = b[col + p];
                }
            }
        } else {
            for p in 0..kc {
                let src = &b[off + p * stride + c0..off + p * stride + c0 + cols];
                dst[p * NR..p * NR + cols].copy_from_slice(src);
            }
        }
    }
}

/// Strided read-only matrix view (row-major; `trans` swaps the roles of
/// the two indices, giving a free transpose).
#[derive(Clone, Copy)]
pub struct View<'a> {
    data: &'a [f64],
    off: usize,
    stride: usize,
    trans: bool,
}

impl<'a> View<'a> {
    /// View of `data` starting at flat offset `off` with row stride
    /// `stride`.
    pub fn new(data: &'a [f64], off: usize, stride: usize) -> Self {
        Self {
            data,
            off,
            stride,
            trans: false,
        }
    }

    /// The transposed view (no copy).
    pub fn t(self) -> Self {
        Self {
            trans: !self.trans,
            ..self
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if self.trans { (j, i) } else { (i, j) };
        self.data[self.off + i * self.stride + j]
    }

    /// Shift the view's origin by `(di, dj)` in *logical* (post-transpose)
    /// coordinates.
    fn shifted(self, di: usize, dj: usize) -> Self {
        let (di, dj) = if self.trans { (dj, di) } else { (di, dj) };
        Self {
            off: self.off + di * self.stride + dj,
            ..self
        }
    }
}

/// Serial packed GEMM on one output panel:
/// `C[..m, ..n] += alpha · A[m×k] · B[k×n]`, `C` strided at
/// `c[c_off + i·c_stride + j]`.
#[allow(clippy::too_many_arguments)]
fn gemm_chunk(
    c: &mut [f64],
    c_off: usize,
    c_stride: usize,
    a: View<'_>,
    b: View<'_>,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
) {
    if 2 * m * n * k <= SMALL_FLOPS {
        // Direct branch-free ikj loop; no packing, no allocation.
        for i in 0..m {
            let crow = &mut c[c_off + i * c_stride..c_off + i * c_stride + n];
            for p in 0..k {
                let aip = alpha * a.at(i, p);
                if b.trans {
                    for (j, cij) in crow.iter_mut().enumerate() {
                        *cij += aip * b.at(p, j);
                    }
                } else {
                    let brow = &b.data[b.off + p * b.stride..b.off + p * b.stride + n];
                    for (cij, &bpj) in crow.iter_mut().zip(brow) {
                        *cij += aip * bpj;
                    }
                }
            }
        }
        return;
    }
    let mut ap = Vec::new();
    let mut bp = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bv = b.shifted(pc, jc);
            pack_b(bv.data, bv.off, bv.stride, bv.trans, kc, nc, &mut bp);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let av = a.shifted(ic, pc);
                // `pack_a`'s `trans` means "stored (p, i)", i.e. a
                // transposed logical view.
                pack_a(av.data, av.off, av.stride, av.trans, mc, kc, &mut ap);
                for jb in 0..nc.div_ceil(NR) {
                    let bpan = &bp[jb * kc * NR..(jb + 1) * kc * NR];
                    let j0 = jc + jb * NR;
                    let cols = NR.min(nc - jb * NR);
                    for ib in 0..mc.div_ceil(MR) {
                        let apan = &ap[ib * kc * MR..(ib + 1) * kc * MR];
                        let mut acc = [[0.0f64; NR]; MR];
                        micro_kernel(kc, apan, bpan, &mut acc);
                        let i0 = ic + ib * MR;
                        let rows = MR.min(mc - ib * MR);
                        for (r, accr) in acc.iter().take(rows).enumerate() {
                            let crow = &mut c[c_off + (i0 + r) * c_stride + j0..][..cols];
                            for (cij, &v) in crow.iter_mut().zip(accr.iter()) {
                                *cij += alpha * v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `C[..m, ..n] += alpha · A · B` with `threads` row panels.
///
/// Results are bit-identical for every `threads` value — the row split
/// never divides the accumulation (depth) loop.
#[allow(clippy::too_many_arguments)]
pub fn gemm_acc(
    c: &mut [f64],
    c_off: usize,
    c_stride: usize,
    a: View<'_>,
    b: View<'_>,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    threads: usize,
) {
    let t = threads
        .max(1)
        .min(m)
        .min(1 + 2 * m * n * k / (4 * SMALL_FLOPS));
    if t <= 1 {
        gemm_chunk(c, c_off, c_stride, a, b, m, n, k, alpha);
        return;
    }
    // Split output rows at row starts: task i owns rows r_i..r_{i+1} (the
    // last task also owns the buffer tail past its final row, matching the
    // historical scoped-thread split). Panels never alias, and the bounds
    // depend only on (m, t), so results are bit-identical for every thread
    // count and pool size.
    let len = c.len();
    let base = SendPtr::new(c);
    pool::run(t, t, &move |tix| {
        let r0 = m * tix / t;
        let r1 = m * (tix + 1) / t;
        if r0 == r1 {
            return;
        }
        let start = c_off + r0 * c_stride;
        let end = if r1 == m { len } else { c_off + r1 * c_stride };
        // SAFETY: tasks receive disjoint row panels [r0, r1) of the output
        // (ranges [start, end) are non-overlapping and within `c`), and
        // `pool::run` blocks until every task completes.
        let panel = unsafe { base.slice(start, end - start) };
        gemm_chunk(
            panel,
            0,
            c_stride,
            a.shifted(r0, 0),
            b,
            r1 - r0,
            n,
            k,
            alpha,
        );
    });
}

/// Symmetric rank-k update on the **lower** triangle:
/// `C[..m, ..m].lower += alpha · A[m×k] · Aᵀ` (`C` strided; the strict
/// upper triangle is left untouched).
///
/// This is the trailing update of the blocked Cholesky and the engine
/// behind [`crate::dense::DenseMatrix::gram`]. Row panels are area-balanced
/// across `threads`; determinism is unaffected by the split.
#[allow(clippy::too_many_arguments)]
pub fn syrk_lower_acc(
    c: &mut [f64],
    c_off: usize,
    c_stride: usize,
    a: View<'_>,
    m: usize,
    k: usize,
    alpha: f64,
    threads: usize,
) {
    syrk_lower_acc_impl(c, c_off, c_stride, a, m, k, alpha, threads, false);
}

/// [`syrk_lower_acc`] specialized to a **lower-triangular** `A`
/// (`A[i, p] = 0` for `p < i`): depth panels that fall entirely into the
/// known-zero region of a row block are skipped instead of multiplied.
/// With `A = L^{-ᵀ}` this is the `L^{-ᵀ}L^{-¹}` product of
/// [`crate::dense::Cholesky::inverse`], where the clip removes about half
/// the SYRK flops. Skipped products are exact zeros, so the result is
/// bit-identical to the unclipped kernel.
#[allow(clippy::too_many_arguments)]
pub fn syrk_lower_tri_acc(
    c: &mut [f64],
    c_off: usize,
    c_stride: usize,
    a: View<'_>,
    m: usize,
    k: usize,
    alpha: f64,
    threads: usize,
) {
    syrk_lower_acc_impl(c, c_off, c_stride, a, m, k, alpha, threads, true);
}

#[allow(clippy::too_many_arguments)]
fn syrk_lower_acc_impl(
    c: &mut [f64],
    c_off: usize,
    c_stride: usize,
    a: View<'_>,
    m: usize,
    k: usize,
    alpha: f64,
    threads: usize,
    tri: bool,
) {
    let t = threads.max(1).min(m).min(1 + m * m * k / (4 * SMALL_FLOPS));
    if t <= 1 {
        syrk_chunk(c, c_off, c_stride, a, 0, m, k, alpha, tri);
        return;
    }
    // Area-balanced split: chunk boundaries at m·√(i/t) so each row panel
    // of the triangle carries a comparable flop count. The bounds depend
    // only on (m, t) — bit-identical results per thread count.
    let mut bounds: Vec<usize> = (0..=t)
        .map(|i| ((m as f64) * (i as f64 / t as f64).sqrt()).round() as usize)
        .collect();
    bounds[t] = m;
    let len = c.len();
    let base = SendPtr::new(c);
    let bounds = &bounds;
    pool::run(t, t, &move |tix| {
        let (r0, r1) = (bounds[tix], bounds[tix + 1]);
        if r0 == r1 {
            return;
        }
        let start = c_off + r0 * c_stride;
        let end = if r1 == m { len } else { c_off + r1 * c_stride };
        // SAFETY: tasks receive disjoint row panels [r0, r1) of the output
        // triangle; `pool::run` blocks until every task completes.
        let panel = unsafe { base.slice(start, end - start) };
        syrk_chunk(panel, 0, c_stride, a, r0, r1 - r0, k, alpha, tri);
    });
}

/// Serial SYRK on output rows `row0..row0 + m` of the full update (the
/// view `c` starts at logical row `row0`, column 0). With `tri`, `A` is
/// known lower triangular (`A[gi, p] = 0` for `p < gi`): depth ranges that
/// only hit the zero region are clipped away — exact zeros, so clipping
/// never changes the result.
#[allow(clippy::too_many_arguments)]
fn syrk_chunk(
    c: &mut [f64],
    c_off: usize,
    c_stride: usize,
    a: View<'_>,
    row0: usize,
    m: usize,
    k: usize,
    alpha: f64,
    tri: bool,
) {
    if 2 * m * (row0 + m) * k <= SMALL_FLOPS {
        for i in 0..m {
            let gi = row0 + i;
            let p0 = if tri { gi.min(k) } else { 0 };
            for j in 0..=gi {
                let mut s = 0.0;
                for p in p0..k {
                    s += a.at(gi, p) * a.at(j, p);
                }
                c[c_off + i * c_stride + j] += alpha * s;
            }
        }
        return;
    }
    let mut ap = Vec::new();
    let mut bp = Vec::new();
    let n = row0 + m; // columns 0..=row of each output row
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // B = Aᵀ restricted to columns jc..jc+nc.
            let bv = a.t().shifted(pc, jc);
            pack_b(bv.data, bv.off, bv.stride, bv.trans, kc, nc, &mut bp);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                // Skip A panels entirely above the diagonal.
                if jc > row0 + ic + mc - 1 {
                    continue;
                }
                // Triangular clip: every A entry of this row block at
                // depths < row0 + ic is a known zero, so a depth panel
                // ending at or before the block's first row contributes
                // nothing.
                if tri && pc + kc <= row0 + ic {
                    continue;
                }
                let av = a.shifted(row0 + ic, pc);
                pack_a(av.data, av.off, av.stride, av.trans, mc, kc, &mut ap);
                for jb in 0..nc.div_ceil(NR) {
                    let bpan = &bp[jb * kc * NR..(jb + 1) * kc * NR];
                    let j0 = jc + jb * NR;
                    let cols = NR.min(nc - jb * NR);
                    for ib in 0..mc.div_ceil(MR) {
                        let i0 = ic + ib * MR;
                        let gi_last = row0 + i0 + MR.min(mc - ib * MR) - 1;
                        if j0 > gi_last {
                            continue; // tile strictly above the diagonal
                        }
                        if tri && pc + kc <= row0 + i0 {
                            continue; // tile fully inside A's zero region
                        }
                        let apan = &ap[ib * kc * MR..(ib + 1) * kc * MR];
                        let mut acc = [[0.0f64; NR]; MR];
                        micro_kernel(kc, apan, bpan, &mut acc);
                        let rows = MR.min(mc - ib * MR);
                        for (r, accr) in acc.iter().take(rows).enumerate() {
                            let gi = row0 + i0 + r;
                            if j0 > gi {
                                continue;
                            }
                            let wcols = cols.min(gi - j0 + 1);
                            let crow = &mut c[c_off + (i0 + r) * c_stride + j0..][..wcols];
                            for (cij, &v) in crow.iter_mut().zip(accr.iter()) {
                                *cij += alpha * v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Copy the lower triangle onto the upper one: `C[i, j] = C[j, i]` for
/// `j > i` (square strided view) — finishes a SYRK into a full symmetric
/// matrix.
pub fn mirror_lower(c: &mut [f64], c_off: usize, c_stride: usize, n: usize) {
    for i in 0..n {
        for j in (i + 1)..n {
            c[c_off + i * c_stride + j] = c[c_off + j * c_stride + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 % 29) as f64 - 13.0) * scale)
            .collect()
    }

    fn gemm_ref(a: &[f64], b: &[f64], m: usize, n: usize, k: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn gemm_matches_reference_across_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 8, 16),
            (5, 9, 7),
            (17, 33, 65),
            (130, 70, 129),
        ] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let want = gemm_ref(&a, &b, m, n, k);
            for threads in [1, 3] {
                let mut c = vec![1.0; m * n];
                gemm_acc(
                    &mut c,
                    0,
                    n,
                    View::new(&a, 0, k),
                    View::new(&b, 0, n),
                    m,
                    n,
                    k,
                    1.0,
                    threads,
                );
                for (got, w) in c.iter().zip(&want) {
                    assert!((got - (w + 1.0)).abs() < 1e-9, "m={m} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn transposed_views_match() {
        let (m, n, k) = (13, 21, 17);
        let at = seq(k * m, 0.1); // stored k×m, logical A = atᵀ
        let b = seq(k * n, 0.3);
        let mut c = vec![0.0; m * n];
        gemm_acc(
            &mut c,
            0,
            n,
            View::new(&at, 0, m).t(),
            View::new(&b, 0, n),
            m,
            n,
            k,
            2.0,
            1,
        );
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += at[p * m + i] * b[p * n + j];
                }
                assert!((c[i * n + j] - 2.0 * s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn syrk_touches_only_lower_triangle() {
        let (m, k) = (37, 19);
        let a = seq(m * k, 0.2);
        let mut c = vec![7.0; m * m];
        syrk_lower_acc(&mut c, 0, m, View::new(&a, 0, k), m, k, 1.0, 2);
        for i in 0..m {
            for j in 0..m {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * a[j * k + p];
                }
                if j <= i {
                    assert!((c[i * m + j] - (7.0 + s)).abs() < 1e-9);
                } else {
                    assert_eq!(c[i * m + j], 7.0, "upper triangle must be untouched");
                }
            }
        }
        mirror_lower(&mut c, 0, m, m);
        for i in 0..m {
            for j in i + 1..m {
                assert_eq!(c[i * m + j], c[j * m + i]);
            }
        }
    }

    #[test]
    fn triangular_syrk_matches_full_syrk_on_lower_triangular_input() {
        // A lower triangular (zeros above the diagonal): the depth-clipped
        // kernel must agree with the unclipped one on every shape, through
        // both the direct and the packed path, at every thread count.
        for &n in &[5, 37, 130, 300] {
            let mut a = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..=i {
                    a[i * n + j] = ((i * 31 + j * 17) % 23) as f64 * 0.1 - 1.0;
                }
            }
            // Logical operand is Aᵀ·? No: C += Tᵀ T with T = a lower
            // triangular, i.e. the SYRK operand is A = Tᵀ viewed with
            // A[i, p] = T[p, i] = 0 for p < i.
            let mut full = vec![0.5; n * n];
            syrk_lower_acc(&mut full, 0, n, View::new(&a, 0, n).t(), n, n, 1.0, 1);
            for threads in [1, 3] {
                let mut clipped = vec![0.5; n * n];
                syrk_lower_tri_acc(
                    &mut clipped,
                    0,
                    n,
                    View::new(&a, 0, n).t(),
                    n,
                    n,
                    1.0,
                    threads,
                );
                for (i, (&got, &want)) in clipped.iter().zip(&full).enumerate() {
                    assert!(
                        (got - want).abs() < 1e-9,
                        "n={n} threads={threads} flat={i}: {got} vs {want}"
                    );
                }
            }
        }
    }

    /// The pool-backed kernels must agree bit for bit with a
    /// scoped-thread baseline using the identical row partition — the
    /// contract the pool migration must preserve.
    #[test]
    fn pool_gemm_matches_scoped_thread_baseline() {
        let (m, n, k) = (150, 90, 120);
        let a = seq(m * k, 0.21);
        let b = seq(k * n, 0.13);
        for t in [2, 4] {
            // Baseline: std::thread::scope with the same row split.
            let mut scoped = vec![0.0f64; m * n];
            std::thread::scope(|scope| {
                let mut rest = scoped.as_mut_slice();
                let mut done = 0usize;
                for tix in 0..t {
                    let r0 = m * tix / t;
                    let r1 = m * (tix + 1) / t;
                    if r0 == r1 {
                        continue;
                    }
                    let (head, tail) = rest.split_at_mut((r1 - done) * n);
                    rest = tail;
                    done = r1;
                    let av = View::new(&a, r0 * k, k);
                    let bv = View::new(&b, 0, n);
                    scope.spawn(move || {
                        gemm_chunk(head, 0, n, av, bv, r1 - r0, n, k, 1.0);
                    });
                }
            });
            let mut pooled = vec![0.0f64; m * n];
            gemm_acc(
                &mut pooled,
                0,
                n,
                View::new(&a, 0, k),
                View::new(&b, 0, n),
                m,
                n,
                k,
                1.0,
                t,
            );
            assert_eq!(pooled, scoped, "pool vs scoped threads={t}");
        }
    }

    #[test]
    fn threaded_results_are_bit_identical() {
        let (m, n, k) = (160, 96, 140);
        let a = seq(m * k, 0.17);
        let b = seq(k * n, 0.09);
        let mut base = vec![0.0; m * n];
        gemm_acc(
            &mut base,
            0,
            n,
            View::new(&a, 0, k),
            View::new(&b, 0, n),
            m,
            n,
            k,
            1.0,
            1,
        );
        for threads in [2, 4, 7] {
            let mut c = vec![0.0; m * n];
            gemm_acc(
                &mut c,
                0,
                n,
                View::new(&a, 0, k),
                View::new(&b, 0, n),
                m,
                n,
                k,
                1.0,
                threads,
            );
            assert_eq!(c, base, "threads={threads} must be bit-identical");
        }
        let mut s1 = vec![0.0; m * m];
        syrk_lower_acc(&mut s1, 0, m, View::new(&a, 0, k), m, k, -1.0, 1);
        for threads in [2, 5] {
            let mut st = vec![0.0; m * m];
            syrk_lower_acc(&mut st, 0, m, View::new(&a, 0, k), m, k, -1.0, threads);
            assert_eq!(st, s1, "syrk threads={threads} must be bit-identical");
        }
    }
}
