//! Preconditioned conjugate gradients for SDD systems.
//!
//! This is the substitute for the nearly-linear Laplacian solver
//! (Kyng–Sachdeva approximate Gaussian elimination) that the paper's
//! ApproxGreedy baseline calls through Julia (DESIGN.md §6): a classic
//! Jacobi-preconditioned CG on the grounded submatrix `L_{-S}` (which is
//! symmetric positive definite for connected `G`), plus a nullspace-projected
//! CG for pseudoinverse applications `x = L† b`.

use std::sync::Arc;

use crate::laplacian::LaplacianSubmatrix;
use crate::pool::{self, SendPtr};
use crate::vector::{axpy, dot, norm2, project_out_ones, xpby};
use crate::DenseMatrix;
use cfcc_graph::Graph;

/// Why an in-flight solve was interrupted before it could converge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The caller's cancel token fired (client gone, shutdown, …).
    Cancelled,
    /// The caller's deadline elapsed mid-sweep.
    DeadlineExceeded,
}

/// Cooperative cancellation hook polled once per CG iteration. The
/// default is a no-op (`None` inside — `check()` is one branch), so
/// solves without a caller-imposed deadline pay nothing. When the hook
/// fires, the solve returns immediately with the partial iterate left in
/// `x` — a warm-startable state, not a poisoned one.
#[derive(Clone, Default)]
pub struct StopHook(Option<Arc<dyn Fn() -> Option<StopCause> + Send + Sync>>);

impl StopHook {
    /// Hook that polls `f` every iteration.
    pub fn new(f: impl Fn() -> Option<StopCause> + Send + Sync + 'static) -> Self {
        Self(Some(Arc::new(f)))
    }

    /// No hook: never fires, costs one branch per poll.
    pub fn none() -> Self {
        Self(None)
    }

    /// Whether a hook is installed at all.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Poll the hook; `None` means keep iterating.
    #[inline]
    pub fn check(&self) -> Option<StopCause> {
        self.0.as_ref().and_then(|f| f())
    }
}

impl std::fmt::Debug for StopHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "StopHook(set)"
        } else {
            "StopHook(none)"
        })
    }
}

/// Convergence controls for CG.
#[derive(Debug, Clone)]
pub struct CgConfig {
    /// Stop when `‖r‖ ≤ rel_tol · ‖b‖`.
    pub rel_tol: f64,
    /// Hard iteration cap (defaults to 10·√n + 200, set explicitly for
    /// reproducibility in benchmarks).
    pub max_iter: usize,
    /// Worker threads for the blocked multi-RHS loop's elementwise row
    /// updates (the per-row x/r/p recurrences partition over the pool;
    /// reductions stay serial so results are bit-identical across thread
    /// counts).
    pub threads: usize,
    /// Cooperative cancellation, polled at the top of every iteration.
    pub stop: StopHook,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            rel_tol: 1e-8,
            max_iter: 20_000,
            threads: 1,
            stop: StopHook::none(),
        }
    }
}

impl CgConfig {
    /// Config with the given relative tolerance.
    pub fn with_tol(rel_tol: f64) -> Self {
        Self {
            rel_tol,
            ..Self::default()
        }
    }
}

/// Outcome statistics of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖r‖/‖b‖`.
    pub rel_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Set when the solve was interrupted by the [`StopHook`] rather than
    /// finishing on its own (`converged` is `false` in that case and the
    /// partial iterate is left in `x` for a warm-started retry).
    pub stopped: Option<StopCause>,
}

/// Preconditioned CG over an abstract SPD operator: `apply` computes
/// `y = A x`, `precond` computes `z = M^{-1} r`. `x` carries the initial
/// guess and receives the solution. This single loop backs the Jacobi
/// matrix-free path ([`solve_grounded`]) and the preconditioned CSR
/// paths of the `sparse-cg`, `tree-pcg`, and `lsst-pcg` backends (see
/// [`crate::sdd`]).
pub fn pcg_operator<A, M>(
    mut apply: A,
    mut precond: M,
    b: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
) -> CgStats
where
    A: FnMut(&[f64], &mut [f64]),
    M: FnMut(&[f64], &mut [f64]),
{
    let n = b.len();
    assert_eq!(x.len(), n);
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut r = vec![0.0; n];
    apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz = dot(&r, &z);
    let mut res = norm2(&r) / b_norm;
    if res <= cfg.rel_tol {
        return CgStats {
            iterations: 0,
            rel_residual: res,
            converged: true,
            stopped: None,
        };
    }
    for it in 1..=cfg.max_iter {
        if let Some(cause) = cfg.stop.check() {
            // Interrupted: the current iterate stays in `x`, ready to be
            // warm-started by a retry.
            return CgStats {
                iterations: it - 1,
                rel_residual: res,
                converged: false,
                stopped: Some(cause),
            };
        }
        apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Numerical breakdown: report divergence rather than looping.
            return CgStats {
                iterations: it,
                rel_residual: res,
                converged: false,
                stopped: None,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        res = norm2(&r) / b_norm;
        if res <= cfg.rel_tol {
            return CgStats {
                iterations: it,
                rel_residual: res,
                converged: true,
                stopped: None,
            };
        }
        precond(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(&z, beta, &mut p);
    }
    CgStats {
        iterations: cfg.max_iter,
        rel_residual: res,
        converged: false,
        stopped: None,
    }
}

/// Dot product of column `s` of `a` with column `s` of `b`, for every
/// column at once — one pass over the row-major storage, so all columns
/// share each cache line.
fn col_dots(a: &DenseMatrix, b: &DenseMatrix, out: &mut [f64]) {
    out.fill(0.0);
    for i in 0..a.rows() {
        for ((o, &av), &bv) in out.iter_mut().zip(a.row(i)).zip(b.row(i)) {
            *o += av * bv;
        }
    }
}

/// Row-partition `0..n` over the worker pool when the elementwise work
/// (`n · row_work` flops-ish) justifies a dispatch; otherwise run inline.
/// Rows are processed independently with identical per-row arithmetic, so
/// results are bit-identical for every thread count.
fn par_rows(threads: usize, n: usize, row_work: usize, f: &(dyn Fn(usize, usize) + Sync)) {
    /// Minimum elementwise operations per pool task.
    const GRAIN: usize = 16 * 1024;
    let t = threads.max(1).min(n).min(1 + n * row_work / GRAIN);
    if t <= 1 {
        f(0, n);
        return;
    }
    pool::run(t, t, &|tix| {
        let r0 = n * tix / t;
        let r1 = n * (tix + 1) / t;
        if r0 < r1 {
            f(r0, r1);
        }
    });
}

/// Drop the columns of `m` whose slot is not in `live` (ascending slot
/// indices into the current width), preserving order — in place, no
/// reallocation. Forward row order is safe: every write lands at or
/// before the position it reads from.
fn compact_columns(m: &mut DenseMatrix, live: &[usize]) {
    let (rows, old_w, new_w) = (m.rows(), m.cols(), live.len());
    debug_assert!(new_w <= old_w);
    let data = m.data_mut();
    for i in 0..rows {
        for (t, &s) in live.iter().enumerate() {
            data[i * new_w + t] = data[i * old_w + s];
        }
    }
    m.reshape(rows, new_w);
}

/// Blocked multi-RHS preconditioned CG over an abstract SPD operator:
/// `apply` computes `Y = A X` and `precond` computes `Z = M⁻¹ R` for
/// *blocks* of column vectors (row-major `n × width` matrices — the width
/// is whatever the passed blocks have, shrinking as columns converge).
///
/// Every right-hand side column of `b` runs its own mathematically
/// independent CG recurrence (scalar `α`/`β` per column — identical
/// iterates to [`pcg_operator`] on that column), but all active columns
/// advance in lockstep so each operator sweep and each preconditioner
/// sweep is shared across the block: the CSR matrix / adjacency lists /
/// triangular factors are traversed **once per iteration** instead of
/// once per iteration *per column*. Converged (or broken-down) columns
/// are deflated out of the block, so late stragglers don't keep paying
/// for finished work.
///
/// `x` carries the initial guess per column and receives the solutions.
/// Returns one [`CgStats`] per column.
pub fn pcg_operator_block<A, M>(
    mut apply: A,
    mut precond: M,
    b: &DenseMatrix,
    x: &mut DenseMatrix,
    cfg: &CgConfig,
) -> Vec<CgStats>
where
    A: FnMut(&DenseMatrix, &mut DenseMatrix),
    M: FnMut(&DenseMatrix, &mut DenseMatrix),
{
    let n = b.rows();
    let c = b.cols();
    assert_eq!(x.rows(), n);
    assert_eq!(x.cols(), c);
    let mut stats = vec![
        CgStats {
            iterations: 0,
            rel_residual: 0.0,
            converged: true,
            stopped: None,
        };
        c
    ];
    if c == 0 {
        return stats;
    }
    let mut b_norm = vec![0.0f64; c];
    col_dots(b, b, &mut b_norm);
    for bn in b_norm.iter_mut() {
        *bn = bn.sqrt().max(f64::MIN_POSITIVE);
    }

    // R = B − A X over the full block, then deflate the already-converged
    // columns before the first iteration.
    let mut r = DenseMatrix::zeros(n, c);
    apply(x, &mut r);
    for i in 0..n {
        for (ri, &bi) in r.row_mut(i).iter_mut().zip(b.row(i)) {
            *ri = bi - *ri;
        }
    }
    let mut res = vec![0.0f64; c];
    col_dots(&r, &r, &mut res);
    // `active[s]` = original column behind compact slot `s`.
    let mut active: Vec<usize> = Vec::with_capacity(c);
    for j in 0..c {
        res[j] = res[j].sqrt() / b_norm[j];
        stats[j].rel_residual = res[j];
        if res[j] <= cfg.rel_tol {
            stats[j].converged = true;
        } else {
            active.push(j);
        }
    }
    if active.is_empty() {
        return stats;
    }
    if active.len() < c {
        compact_columns(&mut r, &active);
    }

    let mut w = active.len();
    let mut z = DenseMatrix::zeros(n, w);
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut ap = DenseMatrix::zeros(n, w);
    let mut rz = vec![0.0f64; w];
    col_dots(&r, &z, &mut rz);
    let mut rz_new = vec![0.0f64; w];
    let mut res: Vec<f64> = active.iter().map(|&j| stats[j].rel_residual).collect();
    let mut pap = vec![0.0f64; w];
    let mut alpha = vec![0.0f64; w];
    // Slots that finished (converged or broke down) but have not been
    // compacted out yet: they ride along with α = β = 0 — their x, r, and
    // recorded stats stay frozen — until a quarter of the block is dead,
    // then one in-place compaction drops them all. Compacting on every
    // event would cost more than it saves when columns finish in quick
    // succession.
    let mut finished = vec![false; w];
    let mut n_finished = 0usize;

    for it in 1..=cfg.max_iter {
        if let Some(cause) = cfg.stop.check() {
            // Interrupted: freeze every still-active column at its current
            // iterate (already scattered into `x`) so a retry warm-starts.
            for (s, &j) in active.iter().enumerate() {
                if !finished[s] {
                    stats[j] = CgStats {
                        iterations: it - 1,
                        rel_residual: res[s],
                        converged: false,
                        stopped: Some(cause),
                    };
                }
            }
            return stats;
        }
        apply(&p, &mut ap);
        col_dots(&p, &ap, &mut pap);
        for s in 0..w {
            if finished[s] {
                alpha[s] = 0.0;
            } else if pap[s] <= 0.0 || !pap[s].is_finite() {
                // Numerical breakdown: report divergence for this column
                // before its direction can corrupt the iterate.
                stats[active[s]] = CgStats {
                    iterations: it,
                    rel_residual: res[s],
                    converged: false,
                    stopped: None,
                };
                finished[s] = true;
                n_finished += 1;
                alpha[s] = 0.0;
            } else {
                alpha[s] = rz[s] / pap[s];
            }
        }
        // x[:, active[s]] += α_s p[:, s]; r[:, s] −= α_s ap[:, s].
        // Rows are independent, so the update row-partitions over the
        // worker pool (bit-identical for every thread count).
        {
            let xw = x.cols();
            let xp = SendPtr::new(x.data_mut());
            let rp = SendPtr::new(r.data_mut());
            let (pm, apm, act, al) = (&p, &ap, &active, &alpha);
            par_rows(cfg.threads, n, 4 * w, &move |r0, r1| {
                for i in r0..r1 {
                    // SAFETY: rows [r0, r1) of x and r are owned
                    // exclusively by this task (disjoint partition).
                    let xr = unsafe { xp.slice(i * xw, xw) };
                    for (s, &j) in act.iter().enumerate() {
                        xr[j] += al[s] * pm.get(i, s);
                    }
                    // SAFETY: as above — row i of r belongs to this task.
                    let rr = unsafe { rp.slice(i * apm.cols(), apm.cols()) };
                    for (s, rv) in rr.iter_mut().enumerate() {
                        *rv -= al[s] * apm.get(i, s);
                    }
                }
            });
        }
        col_dots(&r, &r, &mut res);
        for s in 0..w {
            res[s] = res[s].sqrt() / b_norm[active[s]];
            if !finished[s] && res[s] <= cfg.rel_tol {
                stats[active[s]] = CgStats {
                    iterations: it,
                    rel_residual: res[s],
                    converged: true,
                    stopped: None,
                };
                finished[s] = true;
                n_finished += 1;
            }
        }
        if n_finished == w {
            return stats;
        }
        if 4 * n_finished >= w {
            let keep: Vec<usize> = (0..w).filter(|&s| !finished[s]).collect();
            compact_columns(&mut r, &keep);
            compact_columns(&mut p, &keep);
            active = keep.iter().map(|&s| active[s]).collect();
            rz = keep.iter().map(|&s| rz[s]).collect();
            res = keep.iter().map(|&s| res[s]).collect();
            w = keep.len();
            z.reshape(n, w);
            ap.reshape(n, w);
            rz_new.truncate(w);
            pap.truncate(w);
            alpha.truncate(w);
            finished.truncate(w);
            finished.fill(false);
            n_finished = 0;
        }
        precond(&r, &mut z);
        col_dots(&r, &z, &mut rz_new);
        for s in 0..w {
            // β = 0 parks finished slots on p = z (finite, unused).
            alpha[s] = if finished[s] || rz[s] == 0.0 {
                0.0
            } else {
                rz_new[s] / rz[s]
            };
        }
        {
            let pw = p.cols();
            let pp = SendPtr::new(p.data_mut());
            let (zm, al) = (&z, &alpha);
            par_rows(cfg.threads, n, 2 * w, &move |r0, r1| {
                for i in r0..r1 {
                    let zr = zm.row(i);
                    // SAFETY: rows [r0, r1) of p are owned exclusively by
                    // this task (disjoint partition).
                    let pr = unsafe { pp.slice(i * pw, pw) };
                    for (s, pv) in pr.iter_mut().enumerate() {
                        *pv = zr[s] + al[s] * *pv;
                    }
                }
            });
        }
        rz.copy_from_slice(&rz_new);
    }
    for (s, &j) in active.iter().enumerate() {
        if !finished[s] {
            stats[j] = CgStats {
                iterations: cfg.max_iter,
                rel_residual: res[s],
                converged: false,
                stopped: None,
            };
        }
    }
    stats
}

/// Solve `L_{-S} x = b` (compact space) with Jacobi-preconditioned CG.
/// `x` carries the initial guess and receives the solution.
pub fn solve_grounded(
    op: &LaplacianSubmatrix<'_>,
    b: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
) -> CgStats {
    let n = op.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let inv_diag: Vec<f64> = op.diagonal().iter().map(|&d| 1.0 / d).collect();
    pcg_operator(
        |v, out| op.apply(v, out),
        |r, z| {
            for i in 0..n {
                z[i] = r[i] * inv_diag[i];
            }
        },
        b,
        x,
        cfg,
    )
}

/// Solve the pseudoinverse system `x = L† b` for `b ⊥ 1` (the component
/// along `1` is projected out of `b` defensively). CG on the full Laplacian
/// restricted to the complement of the nullspace: every iterate is
/// re-projected so rounding cannot reintroduce the `1` direction.
pub fn solve_pseudoinverse(g: &Graph, b: &[f64], x: &mut [f64], cfg: &CgConfig) -> CgStats {
    let n = g.num_nodes();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let inv_diag: Vec<f64> = (0..n as u32)
        .map(|u| 1.0 / g.degree(u).max(1) as f64)
        .collect();

    let apply = |v: &[f64], out: &mut [f64]| {
        for u in 0..n {
            let mut acc = g.degree(u as u32) as f64 * v[u];
            for &w in g.neighbors(u as u32) {
                acc -= v[w as usize];
            }
            out[u] = acc;
        }
    };

    let mut bp = b.to_vec();
    project_out_ones(&mut bp);
    project_out_ones(x);
    let b_norm = norm2(&bp).max(f64::MIN_POSITIVE);

    let mut r = vec![0.0; n];
    apply(x, &mut r);
    for i in 0..n {
        r[i] = bp[i] - r[i];
    }
    project_out_ones(&mut r);
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    project_out_ones(&mut z);
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz = dot(&r, &z);
    let mut res = norm2(&r) / b_norm;
    if res <= cfg.rel_tol {
        return CgStats {
            iterations: 0,
            rel_residual: res,
            converged: true,
            stopped: None,
        };
    }
    for it in 1..=cfg.max_iter {
        if let Some(cause) = cfg.stop.check() {
            project_out_ones(x);
            return CgStats {
                iterations: it - 1,
                rel_residual: res,
                converged: false,
                stopped: Some(cause),
            };
        }
        apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return CgStats {
                iterations: it,
                rel_residual: res,
                converged: false,
                stopped: None,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        project_out_ones(&mut r);
        res = norm2(&r) / b_norm;
        if res <= cfg.rel_tol {
            project_out_ones(x);
            return CgStats {
                iterations: it,
                rel_residual: res,
                converged: true,
                stopped: None,
            };
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        project_out_ones(&mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(&z, beta, &mut p);
    }
    project_out_ones(x);
    CgStats {
        iterations: cfg.max_iter,
        rel_residual: res,
        converged: false,
        stopped: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{laplacian_submatrix_dense, LaplacianSubmatrix};
    use crate::pinv::pseudoinverse_dense;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn grounded_solve_matches_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let mut in_s = vec![false; 60];
        in_s[7] = true;
        in_s[23] = true;
        let op = LaplacianSubmatrix::new(&g, &in_s);
        let (dense, _) = laplacian_submatrix_dense(&g, &in_s);
        let ch = dense.cholesky().unwrap();
        let b: Vec<f64> = (0..op.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = vec![0.0; op.dim()];
        let stats = solve_grounded(&op, &b, &mut x, &CgConfig::with_tol(1e-12));
        assert!(stats.converged, "stats: {stats:?}");
        let exact = ch.solve(&b);
        for i in 0..x.len() {
            assert!(
                (x[i] - exact[i]).abs() < 1e-7,
                "i={i} {} vs {}",
                x[i],
                exact[i]
            );
        }
    }

    #[test]
    fn grounded_solve_path_graph_known_solution() {
        // Path 0-1-2 grounded at node 0: L_{-S} = [[2,-1],[-1,1]],
        // inverse = [[1,1],[1,2]]. Solve for b = e_0 → x = (1,1).
        let g = generators::path(3);
        let in_s = vec![true, false, false];
        let op = LaplacianSubmatrix::new(&g, &in_s);
        let mut x = vec![0.0; 2];
        let stats = solve_grounded(&op, &[1.0, 0.0], &mut x, &CgConfig::with_tol(1e-14));
        assert!(stats.converged);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_rhs_converges_immediately_with_zero_guess() {
        let g = generators::cycle(10);
        let in_s = {
            let mut m = vec![false; 10];
            m[0] = true;
            m
        };
        let op = LaplacianSubmatrix::new(&g, &in_s);
        let mut x = vec![0.0; 9];
        let stats = solve_grounded(&op, &[0.0; 9], &mut x, &CgConfig::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn pseudoinverse_solve_matches_dense_pinv() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::barabasi_albert(50, 2, &mut rng);
        let n = g.num_nodes();
        let pinv = pseudoinverse_dense(&g);
        let mut b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // b need not be orthogonal to 1 — solver projects.
        let mut x = vec![0.0; n];
        let stats = solve_pseudoinverse(&g, &b, &mut x, &CgConfig::with_tol(1e-12));
        assert!(stats.converged);
        project_out_ones(&mut b);
        let mut expect = vec![0.0; n];
        pinv.matvec(&b, &mut expect);
        for i in 0..n {
            assert!(
                (x[i] - expect[i]).abs() < 1e-7,
                "i={i}: {} vs {}",
                x[i],
                expect[i]
            );
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let mut in_s = vec![false; 200];
        in_s[0] = true;
        let op = LaplacianSubmatrix::new(&g, &in_s);
        let b: Vec<f64> = (0..op.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = CgConfig::with_tol(1e-10);
        let mut cold = vec![0.0; op.dim()];
        let s1 = solve_grounded(&op, &b, &mut cold, &cfg);
        let mut warm = cold.clone();
        let s2 = solve_grounded(&op, &b, &mut warm, &cfg);
        assert!(s2.iterations <= s1.iterations);
        assert!(s2.iterations <= 1);
    }

    #[test]
    fn reports_nonconvergence_when_capped() {
        let mut rng = StdRng::seed_from_u64(19);
        let g = generators::path(500);
        let mut in_s = vec![false; 500];
        in_s[0] = true;
        let op = LaplacianSubmatrix::new(&g, &in_s);
        let b: Vec<f64> = (0..op.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = vec![0.0; op.dim()];
        let cfg = CgConfig {
            rel_tol: 1e-14,
            max_iter: 3,
            ..CgConfig::default()
        };
        let stats = solve_grounded(&op, &b, &mut x, &cfg);
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 3);
    }
}
