//! The unified SDD-solver backend API: one factor-once/solve-many surface
//! over every way this crate can solve grounded Laplacian systems
//! `L_{-S} x = b`.
//!
//! The paper's ApproxGreedy only reaches million-node graphs because every
//! solve goes through a sparse SDD solver; the greedy loops themselves
//! never care *which*. This module makes that a first-class seam,
//! mirroring how `cfcc_core::registry` unified the algorithm layer:
//!
//! | backend          | kind      | representation | best for |
//! |------------------|-----------|----------------|----------|
//! | `dense-cholesky` | direct    | dense `L_{-S}` + blocked Cholesky | `n ≲ 2k`: exact, amortizes over many RHS |
//! | `cg-jacobi`      | iterative | matrix-free operator | mid-size, few solves, zero setup cost |
//! | `sparse-cg`      | iterative | CSR + IC(0) preconditioner | large graphs; never densifies |
//! | `tree-pcg`       | iterative | CSR + compensated BFS spanning tree | explicit choice for meshes/road networks |
//! | `lsst-pcg`       | iterative | CSR + low-stretch tree ultrasparsifier | **every** large graph — the `auto` default |
//!
//! All three iterative backends answer [`SddFactor::solve_mat`] through
//! **blocked multi-RHS PCG** ([`crate::cg::pcg_operator_block`]): the
//! whole RHS block advances in lockstep so each operator sweep and each
//! preconditioner sweep is shared across the columns, with converged
//! columns deflating out — a 16-column `solve_mat` costs one traversal of
//! the matrix per iteration, not sixteen.
//!
//! # Contract
//!
//! [`SddSolver::factor`] grounds `S`, does whatever setup the backend
//! needs (dense factorization, CSR assembly + incomplete Cholesky, or
//! nothing), and returns an [`SddFactor`] over the **compacted** index
//! space `V ∖ S` (same ordering as
//! [`crate::laplacian::LaplacianSubmatrix`]). The factor then answers any
//! number of:
//!
//! * [`SddFactor::solve_vec`] / [`SddFactor::solve_mat`] — single and
//!   multi-RHS solves (`A X = B`, RHS as matrix columns);
//! * [`SddFactor::diag_inverse`] / [`SddFactor::trace_inverse`] — the
//!   quantities CFCC evaluation consumes (`C(S) = n / Tr(L_{-S}^{-1})`);
//! * [`SddFactor::stats`] — a cumulative [`SolveStats`] report
//!   (iterations, worst residual, approximate flops).
//!
//! Iterative backends surface non-convergence as
//! [`LinalgError::DidNotConverge`] instead of silent flags, and a
//! grounding that leaves part of the graph unreachable from `S` (which
//! makes `L_{-S}` singular) fails at factor time with
//! [`LinalgError::SingularGrounding`] instead of producing an `inf`/NaN
//! preconditioner. On iterative backends [`SddFactor::solve_vec_into`]
//! honors the incoming `x` as the initial guess (warm start).
//!
//! # Selection
//!
//! Callers hold an [`SddBackend`] (a `CfcmParams` field / `--backend`
//! upstream): `auto` picks `dense-cholesky` below
//! [`SddBackend::AUTO_DENSE_LIMIT`] unknowns (where the blocked dense
//! layer wins) and `lsst-pcg` above it — the low-stretch-tree
//! ultrasparsifier ([`crate::lsst`]) has provable iteration counts on
//! every topology, so no sniffing is needed (the PR 5 BFS-diameter
//! heuristic is retired). `tree-pcg` and `sparse-cg` remain as explicit
//! choices, and the [`factor`]/[`factor_owned`] front doors fall back to
//! `sparse-cg` if an auto-routed `lsst-pcg` factorization fails for any
//! reason other than a singular grounding. [`backends`], [`by_name`],
//! and [`name_list`] expose the registry for discoverability
//! (`--list-backends`).

use crate::cg::{pcg_operator, pcg_operator_block, CgConfig, StopCause, StopHook};
use crate::csr::{CsrMatrix, IncompleteCholesky};
use crate::dense::Cholesky;
use crate::error::LinalgError;
use crate::laplacian::{laplacian_submatrix_dense, LaplacianSubmatrix};
use crate::lsst::LsstPreconditioner;
use crate::tree::TreePreconditioner;
use crate::DenseMatrix;
use cfcc_graph::{Graph, Node};

/// Backend family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SddKind {
    /// Factorize once, solve exactly (up to rounding).
    Direct,
    /// Krylov iteration to a relative tolerance.
    Iterative,
}

impl SddKind {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SddKind::Direct => "direct",
            SddKind::Iterative => "iterative",
        }
    }
}

/// Cumulative work report of an [`SddFactor`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Right-hand sides solved so far.
    pub solves: u64,
    /// Total Krylov iterations (0 for direct backends).
    pub iterations: u64,
    /// Worst relative residual over all solves (0 for direct backends).
    pub max_rel_residual: f64,
    /// Relative residual of the most recent solve (0 for direct
    /// backends) — lets callers attribute residuals to their own solves
    /// on a shared factor.
    pub last_rel_residual: f64,
    /// Approximate floating-point operations, factorization included.
    pub flops: u64,
    /// Diagonal perturbation the preconditioner needed to factor (the
    /// IC(0) Manteuffel shift `α` in `A + α·diag(A)`): 0 in the M-matrix
    /// common case. A nonzero value means the preconditioner — never the
    /// system being solved — was perturbed to stay positive definite;
    /// solves still converge to the true solution, possibly in more
    /// iterations. Historically this was swallowed.
    pub precond_shift: f64,
    /// Average edge stretch of the combinatorial preconditioner's
    /// spanning tree (over all edges; tree edges count 1) — the quantity
    /// that bounds tree-PCG iteration counts. 0 for backends without a
    /// tree (`lsst-pcg` reports it; routing decisions become measurable).
    pub precond_stretch: f64,
    /// Off-tree edges the `lsst-pcg` ultrasparsifier sampled into its
    /// preconditioner (0 for every other backend, and for tree-only
    /// `lsst-pcg` runs with `offtree_ratio = 0`).
    pub precond_offtree_edges: u64,
}

/// Tuning for a factorization (tolerances only bind iterative backends).
#[derive(Debug, Clone)]
pub struct SddOptions {
    /// Relative residual target of iterative solves.
    pub rel_tol: f64,
    /// Iteration cap per right-hand side.
    pub max_iter: usize,
    /// Worker threads for the blocked dense kernels.
    pub threads: usize,
    /// Cooperative cancellation, polled every iteration by the iterative
    /// backends' inner CG loops. A fired hook surfaces as
    /// [`LinalgError::Cancelled`] / [`LinalgError::DeadlineExceeded`]
    /// with the partial work already folded into [`SolveStats`] and the
    /// partial iterate left in `x` for a warm-started retry.
    pub stop: StopHook,
    /// Fraction of off-tree edges the `lsst-pcg` ultrasparsifier samples
    /// into its preconditioner (`1/ρ`, clamped to `[0, 1]`; 0 = the
    /// low-stretch tree alone). More edges → fewer PCG iterations but
    /// costlier IC(0) sweeps; the default balances the two on meshes and
    /// power-law graphs alike. Ignored by every other backend.
    pub offtree_ratio: f64,
}

impl Default for SddOptions {
    fn default() -> Self {
        Self {
            rel_tol: 1e-8,
            max_iter: 50_000,
            threads: 1,
            stop: StopHook::none(),
            offtree_ratio: 0.25,
        }
    }
}

impl SddOptions {
    /// Options with the given relative tolerance.
    pub fn with_tol(rel_tol: f64) -> Self {
        Self {
            rel_tol,
            ..Self::default()
        }
    }
}

/// A factored grounded Laplacian `L_{-S}`, ready to solve many systems.
///
/// All vectors live in the compacted index space `V ∖ S` (ascending node
/// order); [`SddFactor::kept_nodes`] and [`SddFactor::compact_of`]
/// translate. Methods take `&mut self` because iterative factors
/// accumulate [`SolveStats`] and reuse internal workspaces.
pub trait SddFactor {
    /// Dimension `|V ∖ S|` of the compacted system.
    fn dim(&self) -> usize;

    /// Kept nodes in compact order.
    fn kept_nodes(&self) -> &[Node];

    /// Compact index of original node `u`, if kept.
    fn compact_of(&self, u: Node) -> Option<usize>;

    /// Original node at compact index `i`.
    fn node_of(&self, i: usize) -> Node {
        self.kept_nodes()[i]
    }

    /// Solve `L_{-S} x = b` into `x`. On iterative backends the incoming
    /// `x` is the **initial guess** (warm start — pass zeros for a cold
    /// solve; the greedy loops' nearly-identical successive systems
    /// converge in far fewer iterations from the previous solution);
    /// direct backends overwrite it. Callers must pass finite values.
    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError>;

    /// Solve `L_{-S} x = b` into a fresh vector (cold start).
    fn solve_vec(&mut self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = vec![0.0; self.dim()];
        self.solve_vec_into(b, &mut x)?;
        Ok(x)
    }

    /// Multi-RHS solve `L_{-S} X = B` into a caller-owned block. On
    /// iterative backends every column of `x` carries its **initial
    /// guess** (block warm start — the greedy engine seeds it with the
    /// previous iteration's solutions projected onto the new grounding,
    /// cutting the Krylov iteration count of the nearly-identical
    /// successive systems); direct backends overwrite it. This default is
    /// the per-column fallback; backends override it with one blocked
    /// pass (triangular solves or blocked multi-RHS PCG).
    fn solve_mat_into(&mut self, b: &DenseMatrix, x: &mut DenseMatrix) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.rows() != n || x.rows() != n || b.cols() != x.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS {}×{} / guess {}×{} vs factor dimension {n}",
                b.rows(),
                b.cols(),
                x.rows(),
                x.cols()
            )));
        }
        let mut col = vec![0.0; n];
        let mut xc = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b.get(i, j);
                xc[i] = x.get(i, j);
            }
            self.solve_vec_into(&col, &mut xc)?;
            for (i, &xi) in xc.iter().enumerate() {
                x.set(i, j, xi);
            }
        }
        Ok(())
    }

    /// Multi-RHS solve `L_{-S} X = B` (RHS as the columns of `b`), cold
    /// started. Direct backends amortize the factorization across all
    /// columns in one blocked pass; iterative backends answer with
    /// blocked multi-RHS PCG.
    fn solve_mat(&mut self, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS has {} rows, factor dimension is {}",
                b.rows(),
                self.dim()
            )));
        }
        let mut x = DenseMatrix::zeros(self.dim(), b.cols());
        self.solve_mat_into(b, &mut x)?;
        Ok(x)
    }

    /// `diag(L_{-S}^{-1})` — resistances to the grounded group. Direct
    /// backends read it off the triangular factor; iterative backends pay
    /// one solve per basis vector.
    fn diag_inverse(&mut self) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        let mut b = vec![0.0; n];
        let mut x = vec![0.0; n];
        let mut diag = vec![0.0; n];
        for i in 0..n {
            b.fill(0.0);
            b[i] = 1.0;
            // `x` deliberately carries the previous basis solution as the
            // warm start for the next one — adjacent basis columns of
            // L_{-S}^{-1} are close for well-clustered graphs.
            self.solve_vec_into(&b, &mut x)?;
            diag[i] = x[i];
        }
        Ok(diag)
    }

    /// `Tr(L_{-S}^{-1})` — the CFCC denominator.
    fn trace_inverse(&mut self) -> Result<f64, LinalgError> {
        Ok(self.diag_inverse()?.iter().sum())
    }

    /// Cumulative work report.
    fn stats(&self) -> SolveStats;

    /// Install (or clear, with [`StopHook::none`]) the cooperative stop
    /// hook polled by subsequent iterative solves — the seam a server
    /// uses to attach per-request deadlines to a long-lived cached
    /// factor. No-op on direct backends. Callers that install a
    /// request-scoped hook must clear it before the factor is reused.
    fn set_stop(&mut self, _stop: StopHook) {}
}

/// A pluggable way to factor grounded Laplacians. Implementations are
/// stateless unit structs registered in [`backends`].
pub trait SddSolver: Sync {
    /// Canonical registry name (lower-case, stable).
    fn name(&self) -> &'static str;

    /// Backend family.
    fn kind(&self) -> SddKind;

    /// Human-readable summary of the supported operations and the regime
    /// the backend is built for (shown by `--list-backends`).
    fn ops(&self) -> &'static str;

    /// Ground `S` (mask `in_s`) and produce a factor for `L_{-S}`.
    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + Send + 'g>, LinalgError>;
}

/// Original-node → compact-index map for a kept-node list (`usize::MAX`
/// for grounded nodes) — the one compact-index convention, shared by
/// every backend.
fn compact_pos(num_nodes: usize, keep: &[Node]) -> Vec<usize> {
    let mut pos = vec![usize::MAX; num_nodes];
    for (i, &u) in keep.iter().enumerate() {
        pos[u as usize] = i;
    }
    pos
}

/// `L_{-S}` is positive definite iff every kept node has a path to the
/// grounded set `S`. The iterative backends check this up front (one
/// `O(n + m)` BFS from all of `S`) so an isolated vertex or a component
/// disjoint from `S` fails with a structured
/// [`LinalgError::SingularGrounding`] instead of an `inf`/NaN
/// preconditioner and a garbage non-converged solve. (The dense backend
/// needs no check: its Cholesky factorization rejects the singular
/// matrix on its own.)
fn check_grounding(g: &Graph, in_s: &[bool]) -> Result<(), LinalgError> {
    assert_eq!(in_s.len(), g.num_nodes());
    let roots: Vec<Node> = in_s
        .iter()
        .enumerate()
        .filter_map(|(u, &grounded)| grounded.then_some(u as Node))
        .collect();
    let tree = cfcc_graph::traversal::bfs_from_set(g, &roots);
    match (0..g.num_nodes() as Node).find(|&u| !tree.reached(u)) {
        Some(node) => Err(LinalgError::SingularGrounding {
            node: node as usize,
        }),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------
// dense-cholesky
// ---------------------------------------------------------------------

/// Direct backend: dense `L_{-S}` + blocked Cholesky (PR 2 kernels).
pub struct DenseCholeskyBackend;

struct DenseFactor {
    ch: Cholesky,
    keep: Vec<Node>,
    pos: Vec<usize>,
    threads: usize,
    stats: SolveStats,
}

impl SddSolver for DenseCholeskyBackend {
    fn name(&self) -> &'static str {
        "dense-cholesky"
    }

    fn kind(&self) -> SddKind {
        SddKind::Direct
    }

    fn ops(&self) -> &'static str {
        "solve_vec, solve_mat (blocked), diag_inverse (n^3/2), trace_inverse; exact, O(n^3) factor, n <~ 2k"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + Send + 'g>, LinalgError> {
        let (dense, keep) = laplacian_submatrix_dense(g, in_s);
        let n = dense.rows();
        let ch = dense.cholesky_threaded(opts.threads)?;
        let pos = compact_pos(g.num_nodes(), &keep);
        Ok(Box::new(DenseFactor {
            ch,
            keep,
            pos,
            threads: opts.threads,
            stats: SolveStats {
                flops: (n as u64).pow(3) / 3,
                ..SolveStats::default()
            },
        }))
    }
}

impl SddFactor for DenseFactor {
    fn dim(&self) -> usize {
        self.ch.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        &self.keep
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        let p = self.pos[u as usize];
        (p != usize::MAX).then_some(p)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        x.copy_from_slice(b);
        self.ch.solve_vec(x);
        self.stats.solves += 1;
        self.stats.flops += 2 * (self.dim() as u64).pow(2);
        Ok(())
    }

    fn solve_mat_into(&mut self, b: &DenseMatrix, x: &mut DenseMatrix) -> Result<(), LinalgError> {
        if b.rows() != self.dim() || x.rows() != self.dim() || b.cols() != x.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS {}×{} / out {}×{} vs factor dimension {}",
                b.rows(),
                b.cols(),
                x.rows(),
                x.cols(),
                self.dim()
            )));
        }
        // Direct backend: the incoming `x` is pure output (no guess).
        x.data_mut().copy_from_slice(b.data());
        self.ch.solve_mat_in_place(x, self.threads);
        self.stats.solves += b.cols() as u64;
        self.stats.flops += 2 * (self.dim() as u64).pow(2) * b.cols() as u64;
        Ok(())
    }

    fn diag_inverse(&mut self) -> Result<Vec<f64>, LinalgError> {
        self.stats.flops += (self.dim() as u64).pow(3) / 2;
        Ok(self.ch.diag_inverse())
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// cg-jacobi
// ---------------------------------------------------------------------

/// Iterative backend: the matrix-free operator with Jacobi-preconditioned
/// CG — zero setup cost, the historical ApproxGreedy path.
pub struct CgJacobiBackend;

struct CgJacobiFactor<'g> {
    op: LaplacianSubmatrix<'g>,
    inv_diag: Vec<f64>,
    cfg: CgConfig,
    edges2: u64,
    stats: SolveStats,
}

impl SddSolver for CgJacobiBackend {
    fn name(&self) -> &'static str {
        "cg-jacobi"
    }

    fn kind(&self) -> SddKind {
        SddKind::Iterative
    }

    fn ops(&self) -> &'static str {
        "solve_vec (warm-startable), solve_mat (blocked multi-RHS), diag_inverse/trace_inverse (n solves); matrix-free, no setup"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + Send + 'g>, LinalgError> {
        check_grounding(g, in_s)?;
        let op = LaplacianSubmatrix::new(g, in_s);
        let inv_diag: Vec<f64> = op.diagonal().iter().map(|&d| 1.0 / d).collect();
        Ok(Box::new(CgJacobiFactor {
            inv_diag,
            cfg: CgConfig {
                rel_tol: opts.rel_tol,
                max_iter: opts.max_iter,
                threads: opts.threads,
                stop: opts.stop.clone(),
            },
            edges2: 2 * g.num_edges() as u64,
            stats: SolveStats::default(),
            op,
        }))
    }
}

/// Shared iterative-backend bookkeeping: fold one PCG run into the
/// cumulative [`SolveStats`] (`flops_per_iter` is the backend's rough
/// per-iteration cost) and map non-convergence to the error contract.
fn record_iterative(
    total: &mut SolveStats,
    run: &crate::cg::CgStats,
    flops_per_iter: u64,
) -> Result<(), LinalgError> {
    total.solves += 1;
    total.iterations += run.iterations as u64;
    total.max_rel_residual = total.max_rel_residual.max(run.rel_residual);
    total.last_rel_residual = run.rel_residual;
    total.flops += run.iterations as u64 * flops_per_iter;
    // An interruption is reported AFTER the partial work is folded into
    // the stats: callers see the true cost of the aborted sweep.
    if let Some(cause) = run.stopped {
        return Err(stop_error(cause, run.iterations));
    }
    if !run.converged {
        return Err(LinalgError::DidNotConverge {
            iterations: run.iterations,
            residual: run.rel_residual,
        });
    }
    Ok(())
}

/// Map a fired [`StopCause`] to the typed error contract.
fn stop_error(cause: StopCause, iterations: usize) -> LinalgError {
    match cause {
        StopCause::Cancelled => LinalgError::Cancelled { iterations },
        StopCause::DeadlineExceeded => LinalgError::DeadlineExceeded { iterations },
    }
}

/// Fold one blocked multi-RHS PCG run (one [`crate::cg::CgStats`] per
/// column) into the cumulative [`SolveStats`]. `flops_per_iter` is the
/// backend's per-iteration cost of a *full-width* sweep; with deflation
/// the true cost shrinks as columns finish, so attribute it per column —
/// a conservative overestimate. Any non-converged column maps to the
/// error contract (worst residual wins).
fn record_block(
    total: &mut SolveStats,
    runs: &[crate::cg::CgStats],
    flops_per_iter: u64,
) -> Result<(), LinalgError> {
    let mut worst: Option<&crate::cg::CgStats> = None;
    let mut stopped: Option<(StopCause, usize)> = None;
    let mut block_res = 0.0f64;
    for run in runs {
        total.solves += 1;
        total.iterations += run.iterations as u64;
        total.max_rel_residual = total.max_rel_residual.max(run.rel_residual);
        block_res = block_res.max(run.rel_residual);
        total.flops += run.iterations as u64 * flops_per_iter;
        if let Some(cause) = run.stopped {
            stopped = Some((cause, run.iterations));
        } else if !run.converged && worst.is_none_or(|w| run.rel_residual > w.rel_residual) {
            worst = Some(run);
        }
    }
    total.last_rel_residual = block_res;
    // Interruption wins over non-convergence: a fired hook freezes every
    // active column, so a "did not converge" column in the same block is
    // just a column the interrupt reached first.
    if let Some((cause, iterations)) = stopped {
        return Err(stop_error(cause, iterations));
    }
    if let Some(w) = worst {
        return Err(LinalgError::DidNotConverge {
            iterations: w.iterations,
            residual: w.rel_residual,
        });
    }
    Ok(())
}

impl<'g> SddFactor for CgJacobiFactor<'g> {
    fn dim(&self) -> usize {
        self.op.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        self.op.kept_nodes()
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        self.op.compact_of(u)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        // `x` carries the caller's initial guess (warm start), per the
        // trait contract — do NOT zero it here.
        let op = &self.op;
        let inv_diag = &self.inv_diag;
        let n = op.dim();
        let stats = pcg_operator(
            |v, out| op.apply(v, out),
            |r, z| {
                for i in 0..n {
                    z[i] = r[i] * inv_diag[i];
                }
            },
            b,
            x,
            &self.cfg,
        );
        // SpMV + preconditioner + 5 vector ops per iteration, roughly.
        record_iterative(
            &mut self.stats,
            &stats,
            2 * self.edges2 + 12 * self.op.dim() as u64,
        )
    }

    fn solve_mat_into(&mut self, b: &DenseMatrix, x: &mut DenseMatrix) -> Result<(), LinalgError> {
        if b.rows() != self.dim() || x.rows() != self.dim() || b.cols() != x.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS {}×{} / guess {}×{} vs factor dimension {}",
                b.rows(),
                b.cols(),
                x.rows(),
                x.cols(),
                self.dim()
            )));
        }
        // Every column of `x` is that column's initial guess (block warm
        // start), per the trait contract.
        let op = &self.op;
        let inv_diag = &self.inv_diag;
        let threads = self.cfg.threads;
        let runs = pcg_operator_block(
            |v, out| op.apply_block_threaded(v, out, threads),
            |r, z| {
                for (i, &d) in inv_diag.iter().enumerate() {
                    for (zs, &rs) in z.row_mut(i).iter_mut().zip(r.row(i)) {
                        *zs = rs * d;
                    }
                }
            },
            b,
            x,
            &self.cfg,
        );
        record_block(
            &mut self.stats,
            &runs,
            2 * self.edges2 + 12 * self.op.dim() as u64,
        )
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }

    fn set_stop(&mut self, stop: StopHook) {
        self.cfg.stop = stop;
    }
}

// ---------------------------------------------------------------------
// sparse-cg
// ---------------------------------------------------------------------

/// Iterative backend: CSR `L_{-S}` with an IC(0) incomplete-Cholesky
/// preconditioner. `O(n + m)` memory end to end — the Laplacian is never
/// densified — and far fewer iterations than Jacobi on meshes and road
/// networks. The substitute for the paper's Kyng–Sachdeva solver.
pub struct SparseCgBackend;

struct SparseCgFactor {
    csr: CsrMatrix,
    ic: IncompleteCholesky,
    keep: Vec<Node>,
    pos: Vec<usize>,
    cfg: CgConfig,
    stats: SolveStats,
}

impl SddSolver for SparseCgBackend {
    fn name(&self) -> &'static str {
        "sparse-cg"
    }

    fn kind(&self) -> SddKind {
        SddKind::Iterative
    }

    fn ops(&self) -> &'static str {
        "solve_vec (warm-startable), solve_mat (blocked multi-RHS), diag_inverse/trace_inverse (n solves); CSR + IC(0), O(n+m) memory; Manteuffel shift surfaces as SolveStats.precond_shift"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + Send + 'g>, LinalgError> {
        check_grounding(g, in_s)?;
        let (csr, keep, pos) = CsrMatrix::grounded_laplacian(g, in_s);
        let ic = IncompleteCholesky::factor(&csr)?;
        Ok(Box::new(SparseCgFactor::from_parts(
            csr,
            ic,
            keep,
            pos,
            CgConfig {
                rel_tol: opts.rel_tol,
                max_iter: opts.max_iter,
                threads: opts.threads,
                stop: opts.stop.clone(),
            },
        )))
    }
}

impl SparseCgFactor {
    /// Assemble a factor from an already-built matrix + preconditioner
    /// (the factor path and the breakdown tests share this), recording
    /// the IC(0) shift in the stats so callers can see the perturbation.
    fn from_parts(
        csr: CsrMatrix,
        ic: IncompleteCholesky,
        keep: Vec<Node>,
        pos: Vec<usize>,
        cfg: CgConfig,
    ) -> Self {
        Self {
            stats: SolveStats {
                // Pattern setup + one pass of multiply-adds per stored
                // lower entry, roughly.
                flops: 4 * csr.nnz() as u64,
                precond_shift: ic.shift(),
                ..SolveStats::default()
            },
            ic,
            keep,
            pos,
            cfg,
            csr,
        }
    }
}

impl SddFactor for SparseCgFactor {
    fn dim(&self) -> usize {
        self.csr.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        &self.keep
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        let p = self.pos[u as usize];
        (p != usize::MAX).then_some(p)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        // `x` carries the caller's initial guess (warm start), per the
        // trait contract — do NOT zero it here.
        let csr = &self.csr;
        let ic = &self.ic;
        let stats = pcg_operator(
            |v, out| csr.spmv(v, out),
            |r, z| ic.apply(r, z),
            b,
            x,
            &self.cfg,
        );
        // SpMV + two triangular solves + 5 vector ops per iteration.
        record_iterative(
            &mut self.stats,
            &stats,
            2 * self.csr.nnz() as u64 + 4 * self.ic.nnz_lower() as u64 + 12 * self.csr.dim() as u64,
        )
    }

    fn solve_mat_into(&mut self, b: &DenseMatrix, x: &mut DenseMatrix) -> Result<(), LinalgError> {
        if b.rows() != self.dim() || x.rows() != self.dim() || b.cols() != x.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS {}×{} / guess {}×{} vs factor dimension {}",
                b.rows(),
                b.cols(),
                x.rows(),
                x.cols(),
                self.dim()
            )));
        }
        // Every column of `x` is that column's initial guess (block warm
        // start), per the trait contract.
        let csr = &self.csr;
        let ic = &self.ic;
        let threads = self.cfg.threads;
        let runs = pcg_operator_block(
            |v, out| csr.spmm_threaded(v, out, threads),
            |r, z| ic.apply_block(r, z),
            b,
            x,
            &self.cfg,
        );
        record_block(
            &mut self.stats,
            &runs,
            2 * self.csr.nnz() as u64 + 4 * self.ic.nnz_lower() as u64 + 12 * self.csr.dim() as u64,
        )
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }

    fn set_stop(&mut self, stop: StopHook) {
        self.cfg.stop = stop;
    }
}

// ---------------------------------------------------------------------
// tree-pcg
// ---------------------------------------------------------------------

/// Iterative backend: CSR `L_{-S}` preconditioned by a
/// diagonal-compensated BFS spanning tree ([`TreePreconditioner`]) — the
/// Vaidya-style combinatorial rung toward the paper's Kyng–Sachdeva
/// solver. `O(n)` preconditioner factorization and sweeps (cheaper than
/// IC(0) per iteration), and because the tree carries long-range
/// connectivity, far fewer PCG iterations on meshes and road networks
/// where Jacobi and IC(0) pay `O(√n)`-ish counts.
pub struct TreePcgBackend;

struct TreePcgFactor {
    csr: CsrMatrix,
    tree: TreePreconditioner,
    keep: Vec<Node>,
    pos: Vec<usize>,
    cfg: CgConfig,
    stats: SolveStats,
}

impl SddSolver for TreePcgBackend {
    fn name(&self) -> &'static str {
        "tree-pcg"
    }

    fn kind(&self) -> SddKind {
        SddKind::Iterative
    }

    fn ops(&self) -> &'static str {
        "solve_vec (warm-startable), solve_mat (blocked multi-RHS), diag_inverse/trace_inverse (n solves); CSR + compensated spanning tree, O(n) preconditioner sweeps"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + Send + 'g>, LinalgError> {
        check_grounding(g, in_s)?;
        let (csr, keep, pos) = CsrMatrix::grounded_laplacian(g, in_s);
        let tree = TreePreconditioner::build(g, in_s, &keep, &pos)?;
        Ok(Box::new(TreePcgFactor {
            stats: SolveStats {
                // BFS + one O(n) elimination pass.
                flops: (2 * csr.nnz() + 4 * csr.dim()) as u64,
                ..SolveStats::default()
            },
            tree,
            keep,
            pos,
            cfg: CgConfig {
                rel_tol: opts.rel_tol,
                max_iter: opts.max_iter,
                threads: opts.threads,
                stop: opts.stop.clone(),
            },
            csr,
        }))
    }
}

impl TreePcgFactor {
    /// SpMV + three O(n) tree sweeps + 5 vector ops per iteration.
    fn flops_per_iter(&self) -> u64 {
        2 * self.csr.nnz() as u64 + 18 * self.csr.dim() as u64
    }
}

impl SddFactor for TreePcgFactor {
    fn dim(&self) -> usize {
        self.csr.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        &self.keep
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        let p = self.pos[u as usize];
        (p != usize::MAX).then_some(p)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        // `x` carries the caller's initial guess (warm start), per the
        // trait contract — do NOT zero it here.
        let csr = &self.csr;
        let tree = &self.tree;
        let stats = pcg_operator(
            |v, out| csr.spmv(v, out),
            |r, z| tree.apply(r, z),
            b,
            x,
            &self.cfg,
        );
        let fpi = self.flops_per_iter();
        record_iterative(&mut self.stats, &stats, fpi)
    }

    fn solve_mat_into(&mut self, b: &DenseMatrix, x: &mut DenseMatrix) -> Result<(), LinalgError> {
        if b.rows() != self.dim() || x.rows() != self.dim() || b.cols() != x.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS {}×{} / guess {}×{} vs factor dimension {}",
                b.rows(),
                b.cols(),
                x.rows(),
                x.cols(),
                self.dim()
            )));
        }
        // Every column of `x` is that column's initial guess (block warm
        // start), per the trait contract.
        let csr = &self.csr;
        let tree = &self.tree;
        let threads = self.cfg.threads;
        let runs = pcg_operator_block(
            |v, out| csr.spmm_threaded(v, out, threads),
            |r, z| tree.apply_block(r, z),
            b,
            x,
            &self.cfg,
        );
        let fpi = self.flops_per_iter();
        record_block(&mut self.stats, &runs, fpi)
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }

    fn set_stop(&mut self, stop: StopHook) {
        self.cfg.stop = stop;
    }
}

// ---------------------------------------------------------------------
// lsst-pcg
// ---------------------------------------------------------------------

/// Iterative backend: CSR `L_{-S}` preconditioned by an AKPW-style
/// low-stretch spanning tree plus stretch-sampled off-tree edges — the
/// ultrasparsifier rung of the Spielman–Teng / Kyng–Sachdeva solver line
/// ([`crate::lsst`]). Unlike the BFS tree behind `tree-pcg`, the
/// low-stretch tree's iteration bound is polylogarithmic on *every*
/// topology (meshes AND expanders), which is why the `auto` policy routes
/// all graphs above the dense limit here. `O(n + m·offtree_ratio)`
/// preconditioner memory; tree stretch and sampled-edge count surface in
/// [`SolveStats`].
pub struct LsstPcgBackend;

struct LsstPcgFactor {
    csr: CsrMatrix,
    pre: LsstPreconditioner,
    keep: Vec<Node>,
    pos: Vec<usize>,
    cfg: CgConfig,
    stats: SolveStats,
}

impl SddSolver for LsstPcgBackend {
    fn name(&self) -> &'static str {
        "lsst-pcg"
    }

    fn kind(&self) -> SddKind {
        SddKind::Iterative
    }

    fn ops(&self) -> &'static str {
        "solve_vec (warm-startable), solve_mat (blocked multi-RHS), diag_inverse/trace_inverse (n solves); CSR + low-stretch tree ultrasparsifier, O(n + m/rho) preconditioner, low iteration counts on every topology"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + Send + 'g>, LinalgError> {
        check_grounding(g, in_s)?;
        let (csr, keep, pos) = CsrMatrix::grounded_laplacian(g, in_s);
        let pre = LsstPreconditioner::build(g, &keep, &pos, opts.offtree_ratio)?;
        Ok(Box::new(LsstPcgFactor {
            stats: SolveStats {
                // Tree build (O((n+m) log n)-ish) + sparsifier IC(0).
                flops: (6 * csr.nnz() + 8 * csr.dim()) as u64,
                precond_shift: pre.shift(),
                precond_stretch: pre.avg_stretch(),
                precond_offtree_edges: pre.sampled_offtree(),
                ..SolveStats::default()
            },
            pre,
            keep,
            pos,
            cfg: CgConfig {
                rel_tol: opts.rel_tol,
                max_iter: opts.max_iter,
                threads: opts.threads,
                stop: opts.stop.clone(),
            },
            csr,
        }))
    }
}

impl LsstPcgFactor {
    /// SpMV + two sweeps over the sparsified factor + 5 vector ops.
    fn flops_per_iter(&self) -> u64 {
        2 * self.csr.nnz() as u64 + 4 * self.pre.nnz_factor() as u64 + 14 * self.csr.dim() as u64
    }
}

impl SddFactor for LsstPcgFactor {
    fn dim(&self) -> usize {
        self.csr.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        &self.keep
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        let p = self.pos[u as usize];
        (p != usize::MAX).then_some(p)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        // `x` carries the caller's initial guess (warm start), per the
        // trait contract — do NOT zero it here.
        let csr = &self.csr;
        let pre = &mut self.pre;
        let stats = pcg_operator(
            |v, out| csr.spmv(v, out),
            |r, z| pre.apply(r, z),
            b,
            x,
            &self.cfg,
        );
        let fpi = self.flops_per_iter();
        record_iterative(&mut self.stats, &stats, fpi)
    }

    fn solve_mat_into(&mut self, b: &DenseMatrix, x: &mut DenseMatrix) -> Result<(), LinalgError> {
        if b.rows() != self.dim() || x.rows() != self.dim() || b.cols() != x.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS {}×{} / guess {}×{} vs factor dimension {}",
                b.rows(),
                b.cols(),
                x.rows(),
                x.cols(),
                self.dim()
            )));
        }
        // Every column of `x` is that column's initial guess (block warm
        // start), per the trait contract.
        let csr = &self.csr;
        let pre = &mut self.pre;
        let threads = self.cfg.threads;
        let runs = pcg_operator_block(
            |v, out| csr.spmm_threaded(v, out, threads),
            |r, z| pre.apply_block(r, z),
            b,
            x,
            &self.cfg,
        );
        let fpi = self.flops_per_iter();
        record_block(&mut self.stats, &runs, fpi)
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }

    fn set_stop(&mut self, stop: StopHook) {
        self.cfg.stop = stop;
    }
}

// ---------------------------------------------------------------------
// registry + selection policy
// ---------------------------------------------------------------------

/// Every registered backend, in listing order.
static BACKENDS: &[&dyn SddSolver] = &[
    &DenseCholeskyBackend,
    &CgJacobiBackend,
    &SparseCgBackend,
    &TreePcgBackend,
    &LsstPcgBackend,
];

/// Alias table (alias → canonical name).
static ALIASES: &[(&str, &str)] = &[
    ("dense", "dense-cholesky"),
    ("cholesky", "dense-cholesky"),
    ("cg", "cg-jacobi"),
    ("jacobi", "cg-jacobi"),
    ("sparse", "sparse-cg"),
    ("ic", "sparse-cg"),
    ("tree", "tree-pcg"),
    ("lst", "tree-pcg"),
    ("vaidya", "tree-pcg"),
    ("lsst", "lsst-pcg"),
    ("akpw", "lsst-pcg"),
    ("ultrasparsifier", "lsst-pcg"),
];

/// All registered backends.
pub fn backends() -> &'static [&'static dyn SddSolver] {
    BACKENDS
}

/// Look up a backend by canonical name or alias (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static dyn SddSolver> {
    let lower = name.to_ascii_lowercase();
    let canonical = ALIASES
        .iter()
        .find(|(alias, _)| *alias == lower)
        .map_or(lower.as_str(), |(_, canonical)| canonical);
    BACKENDS.iter().find(|s| s.name() == canonical).copied()
}

/// `name1 | name2 | …` — for usage strings (the `auto` policy included).
pub fn name_list() -> String {
    let mut names: Vec<&str> = vec!["auto"];
    names.extend(BACKENDS.iter().map(|s| s.name()));
    names.join(" | ")
}

/// Backend selection carried through `CfcmParams` / `--backend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SddBackend {
    /// Dense below [`SddBackend::AUTO_DENSE_LIMIT`] unknowns, the
    /// low-stretch-tree ultrasparsifier (`lsst-pcg`) above.
    #[default]
    Auto,
    /// Force `dense-cholesky`.
    DenseCholesky,
    /// Force `cg-jacobi`.
    CgJacobi,
    /// Force `sparse-cg`.
    SparseCg,
    /// Force `tree-pcg`.
    TreePcg,
    /// Force `lsst-pcg`.
    LsstPcg,
}

impl SddBackend {
    /// Crossover of the `auto` policy: the dense blocked layer wins below
    /// this many unknowns (factor amortized over many RHS), the CSR path
    /// above (where `O(n³)` and `O(n²)` memory stop being payable).
    pub const AUTO_DENSE_LIMIT: usize = 1536;

    /// Parse a CLI/user name ("auto", a canonical backend name, or an
    /// alias).
    pub fn parse(name: &str) -> Option<Self> {
        if name.eq_ignore_ascii_case("auto") {
            return Some(SddBackend::Auto);
        }
        match by_name(name)?.name() {
            "dense-cholesky" => Some(SddBackend::DenseCholesky),
            "cg-jacobi" => Some(SddBackend::CgJacobi),
            "sparse-cg" => Some(SddBackend::SparseCg),
            "tree-pcg" => Some(SddBackend::TreePcg),
            "lsst-pcg" => Some(SddBackend::LsstPcg),
            _ => None,
        }
    }

    /// Display name ("auto" or the canonical backend name).
    pub fn name(self) -> &'static str {
        match self {
            SddBackend::Auto => "auto",
            SddBackend::DenseCholesky => "dense-cholesky",
            SddBackend::CgJacobi => "cg-jacobi",
            SddBackend::SparseCg => "sparse-cg",
            SddBackend::TreePcg => "tree-pcg",
            SddBackend::LsstPcg => "lsst-pcg",
        }
    }

    /// Resolve to a concrete backend for an `n`-unknown system: dense
    /// below [`SddBackend::AUTO_DENSE_LIMIT`] (blocked factor amortized
    /// over many RHS), the low-stretch-tree ultrasparsifier `lsst-pcg`
    /// above it. The decision is size-only — the low-stretch tree's
    /// iteration bound holds on every topology, so the PR 5 BFS-diameter
    /// sniff is gone and resolution never looks at the graph.
    pub fn resolve(self, n: usize) -> &'static dyn SddSolver {
        let name = match self {
            SddBackend::Auto => {
                if n <= Self::AUTO_DENSE_LIMIT {
                    "dense-cholesky"
                } else {
                    "lsst-pcg"
                }
            }
            other => other.name(),
        };
        by_name(name).expect("registered backend")
    }

    /// Resolve to a concrete backend for a `kept`-unknown system on `g`.
    /// Today this is exactly [`SddBackend::resolve`] — the auto policy no
    /// longer inspects the graph — but callers that *have* the graph
    /// (the front doors, serve's factor-cache keying) go through this
    /// seam so a future topology-aware policy needs no signature change.
    pub fn resolve_for_graph(self, _g: &Graph, kept: usize) -> &'static dyn SddSolver {
        self.resolve(kept)
    }
}

impl std::fmt::Display for SddBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Should an `auto`-routed factorization failure on `solver` retry on
/// `sparse-cg`? Only construction failures qualify — a singular grounding
/// fails identically on every backend and must surface as-is.
fn auto_fallback(backend: SddBackend, solver: &dyn SddSolver, err: &LinalgError) -> bool {
    backend == SddBackend::Auto
        && solver.name() == "lsst-pcg"
        && !matches!(err, LinalgError::SingularGrounding { .. })
}

/// Factor `L_{-S}` through the chosen backend (resolving `auto` by the
/// number of kept nodes) — the one-call front door consumers use. If the
/// `auto` policy routed to `lsst-pcg` and the tree/sparsifier build fails
/// for any reason other than a singular grounding, the front door falls
/// back to `sparse-cg` so auto-routed callers never pay for a pathological
/// input; an *explicit* `--backend lsst-pcg` surfaces the error.
pub fn factor<'g>(
    g: &'g Graph,
    in_s: &[bool],
    backend: SddBackend,
    opts: &SddOptions,
) -> Result<Box<dyn SddFactor + Send + 'g>, LinalgError> {
    let kept = in_s.iter().filter(|&&s| !s).count();
    let solver = backend.resolve_for_graph(g, kept);
    match solver.factor(g, in_s, opts) {
        Err(e) if auto_fallback(backend, solver, &e) => by_name("sparse-cg")
            .expect("registered backend")
            .factor(g, in_s, opts),
        other => other,
    }
}

/// A factor that owns (a reference count on) its graph, so it can outlive
/// the borrow scope it was created in — the cacheable form a resident
/// service needs: [`SddSolver::factor`] ties the factor's lifetime to the
/// graph borrow, which makes `Box<dyn SddFactor + 'g>` impossible to store
/// in a long-lived cache keyed across requests.
///
/// Produced by [`factor_owned`]. Delegates every [`SddFactor`] method to
/// the wrapped factor.
pub struct OwnedFactor {
    /// The factor, with its graph borrow erased to `'static`. Declared
    /// before `_graph` so it drops first — the only ordering under which
    /// the erased borrow never dangles.
    factor: Box<dyn SddFactor + Send + 'static>,
    /// Keeps the borrowed graph alive (and at a stable address — `Arc`
    /// contents never move) for as long as the factor exists.
    _graph: std::sync::Arc<Graph>,
    /// Resolved backend name (after `auto` routing) — cache keys and
    /// service stats want the concrete backend, not the policy.
    backend_name: &'static str,
}

impl OwnedFactor {
    /// The concrete backend that produced this factor (post-`auto`).
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }
}

impl SddFactor for OwnedFactor {
    fn dim(&self) -> usize {
        self.factor.dim()
    }
    fn kept_nodes(&self) -> &[Node] {
        self.factor.kept_nodes()
    }
    fn compact_of(&self, u: Node) -> Option<usize> {
        self.factor.compact_of(u)
    }
    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        self.factor.solve_vec_into(b, x)
    }
    fn solve_mat_into(&mut self, b: &DenseMatrix, x: &mut DenseMatrix) -> Result<(), LinalgError> {
        self.factor.solve_mat_into(b, x)
    }
    fn diag_inverse(&mut self) -> Result<Vec<f64>, LinalgError> {
        self.factor.diag_inverse()
    }
    fn trace_inverse(&mut self) -> Result<f64, LinalgError> {
        self.factor.trace_inverse()
    }
    fn stats(&self) -> SolveStats {
        self.factor.stats()
    }
    fn set_stop(&mut self, stop: StopHook) {
        self.factor.set_stop(stop);
    }
}

/// Factor `L_{-S}` like [`factor`], but against an `Arc`-owned graph,
/// yielding an [`OwnedFactor`] free of the graph borrow — the form a
/// factor cache can hold across requests.
pub fn factor_owned(
    g: &std::sync::Arc<Graph>,
    in_s: &[bool],
    backend: SddBackend,
    opts: &SddOptions,
) -> Result<OwnedFactor, LinalgError> {
    let kept = in_s.iter().filter(|&&s| !s).count();
    let mut solver = backend.resolve_for_graph(g, kept);
    let raw: Box<dyn SddFactor + Send + '_> = match solver.factor(g, in_s, opts) {
        Err(e) if auto_fallback(backend, solver, &e) => {
            // Same auto-routed fallback as [`factor`]; the cache key sees
            // the backend that actually produced the factor.
            solver = by_name("sparse-cg").expect("registered backend");
            solver.factor(g, in_s, opts)?
        }
        other => other?,
    };
    // SAFETY: the only borrow the factor may hold is `&Graph` into the
    // `Arc` allocation. The `Arc` clone stored alongside keeps that
    // allocation alive (at a fixed address) for the wrapper's whole
    // lifetime, and field order drops the factor before the graph.
    let factor: Box<dyn SddFactor + Send + 'static> = unsafe { std::mem::transmute(raw) };
    Ok(OwnedFactor {
        factor,
        _graph: std::sync::Arc::clone(g),
        backend_name: solver.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mask(n: usize, grounded: &[usize]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &u in grounded {
            m[u] = true;
        }
        m
    }

    #[test]
    fn registry_names_resolve_and_aliases_work() {
        for b in backends() {
            assert_eq!(by_name(b.name()).unwrap().name(), b.name());
        }
        assert_eq!(by_name("dense").unwrap().name(), "dense-cholesky");
        assert_eq!(by_name("SPARSE").unwrap().name(), "sparse-cg");
        assert!(by_name("nope").is_none());
        assert!(name_list().starts_with("auto"));
    }

    #[test]
    fn backend_enum_parses_and_displays() {
        assert_eq!(SddBackend::parse("auto"), Some(SddBackend::Auto));
        assert_eq!(SddBackend::parse("dense"), Some(SddBackend::DenseCholesky));
        assert_eq!(SddBackend::parse("cg-jacobi"), Some(SddBackend::CgJacobi));
        assert_eq!(SddBackend::parse("sparse-cg"), Some(SddBackend::SparseCg));
        assert_eq!(SddBackend::parse("warp"), None);
        assert_eq!(SddBackend::SparseCg.to_string(), "sparse-cg");
    }

    #[test]
    fn auto_policy_switches_at_the_limit() {
        assert_eq!(
            SddBackend::Auto
                .resolve(SddBackend::AUTO_DENSE_LIMIT)
                .name(),
            "dense-cholesky"
        );
        assert_eq!(
            SddBackend::Auto
                .resolve(SddBackend::AUTO_DENSE_LIMIT + 1)
                .name(),
            "lsst-pcg"
        );
        assert_eq!(SddBackend::CgJacobi.resolve(10).name(), "cg-jacobi");
    }

    #[test]
    fn all_backends_solve_and_report_stats() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = generators::barabasi_albert(70, 3, &mut rng);
        let in_s = mask(70, &[2, 11]);
        let opts = SddOptions::with_tol(1e-11);
        let b: Vec<f64> = (0..68).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut reference: Option<Vec<f64>> = None;
        for backend in backends() {
            let mut f = backend.factor(&g, &in_s, &opts).unwrap();
            assert_eq!(f.dim(), 68);
            assert_eq!(f.kept_nodes().len(), 68);
            assert_eq!(f.compact_of(2), None);
            assert_eq!(f.node_of(0), 0);
            let x = f.solve_vec(&b).unwrap();
            match &reference {
                None => reference = Some(x),
                Some(r) => {
                    for (a, c) in x.iter().zip(r) {
                        assert!((a - c).abs() < 1e-7, "{}: {a} vs {c}", backend.name());
                    }
                }
            }
            let st = f.stats();
            assert_eq!(st.solves, 1);
            assert!(st.flops > 0);
            match backend.kind() {
                SddKind::Direct => assert_eq!(st.iterations, 0),
                SddKind::Iterative => {
                    assert!(st.iterations > 0);
                    assert!(st.max_rel_residual <= 1e-11);
                }
            }
        }
    }

    #[test]
    fn iterative_nonconvergence_is_an_error() {
        let g = generators::path(400);
        let in_s = mask(400, &[0]);
        let opts = SddOptions {
            rel_tol: 1e-14,
            max_iter: 2,
            ..SddOptions::default()
        };
        let mut rng = StdRng::seed_from_u64(63);
        let b: Vec<f64> = (0..399).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut f = CgJacobiBackend.factor(&g, &in_s, &opts).unwrap();
        assert!(matches!(
            f.solve_vec(&b),
            Err(LinalgError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn solve_mat_rejects_bad_shapes() {
        let g = generators::cycle(10);
        let in_s = mask(10, &[0]);
        for backend in backends() {
            let mut f = backend.factor(&g, &in_s, &SddOptions::default()).unwrap();
            let bad = DenseMatrix::zeros(4, 2);
            assert!(matches!(
                f.solve_mat(&bad),
                Err(LinalgError::DimensionMismatch(_))
            ));
        }
    }

    #[test]
    fn factor_front_door_resolves_auto_by_kept_count() {
        let g = generators::cycle(30);
        let in_s = mask(30, &[0]);
        let mut f = factor(&g, &in_s, SddBackend::Auto, &SddOptions::default()).unwrap();
        // 29 unknowns → dense: direct solves report zero iterations.
        f.solve_vec(&vec![1.0; 29]).unwrap();
        assert_eq!(f.stats().iterations, 0);
    }

    /// Regression (auto policy, post-diameter-sniff): above the dense
    /// limit `auto` routes EVERY topology — the large-diameter grid AND
    /// the low-diameter expander-like BA graph — to `lsst-pcg`; below the
    /// limit the size rule stays dense; explicit backends are never
    /// overridden.
    #[test]
    fn auto_policy_routes_every_large_graph_to_lsst() {
        let grid = generators::grid(45, 45); // 2025 > AUTO_DENSE_LIMIT
        assert_eq!(
            SddBackend::Auto.resolve_for_graph(&grid, 2024).name(),
            "lsst-pcg"
        );
        let mut rng = StdRng::seed_from_u64(0x70D0);
        let ba = generators::barabasi_albert(2000, 4, &mut rng);
        assert_eq!(
            SddBackend::Auto.resolve_for_graph(&ba, 1999).name(),
            "lsst-pcg"
        );
        // Below the dense limit the size rule wins regardless of topology.
        let small_grid = generators::grid(20, 20);
        assert_eq!(
            SddBackend::Auto.resolve_for_graph(&small_grid, 399).name(),
            "dense-cholesky"
        );
        // Explicit backends are never overridden by the policy.
        assert_eq!(
            SddBackend::SparseCg.resolve_for_graph(&grid, 2024).name(),
            "sparse-cg"
        );
        assert_eq!(
            SddBackend::TreePcg.resolve_for_graph(&ba, 1999).name(),
            "tree-pcg"
        );
        // The front door actually dispatches the policy: a grid factor
        // through `auto` must behave like lsst-pcg (iterative, with the
        // tree stretch surfaced in the stats).
        let in_s = mask(grid.num_nodes(), &[0]);
        let mut f = factor(&grid, &in_s, SddBackend::Auto, &SddOptions::default()).unwrap();
        f.solve_vec(&vec![1.0; grid.num_nodes() - 1]).unwrap();
        assert!(f.stats().iterations > 0);
        assert!(f.stats().precond_stretch > 1.0);
    }

    /// Regression (block warm start): `solve_mat_into` documents that
    /// every column of `x` carries its initial guess; re-solving a block
    /// from its own solutions must converge (nearly) immediately on every
    /// iterative backend, and agree with the cold path.
    #[test]
    fn warm_started_block_resolve_takes_fewer_iterations() {
        let mut rng = StdRng::seed_from_u64(0xB77A);
        let g = generators::barabasi_albert(250, 3, &mut rng);
        let in_s = mask(250, &[7]);
        let d = 249;
        let w = 6;
        let mut rhs = DenseMatrix::zeros(d, w);
        for i in 0..d {
            for j in 0..w {
                rhs.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        for backend in iterative_backends() {
            let mut f = backend
                .factor(&g, &in_s, &SddOptions::with_tol(1e-10))
                .unwrap();
            let mut x = DenseMatrix::zeros(d, w);
            f.solve_mat_into(&rhs, &mut x).unwrap();
            let cold = f.stats().iterations;
            assert!(cold > 0, "{}", backend.name());
            let cold_x = x.clone();
            // Warm start from the converged block: every column's initial
            // residual already meets the tolerance.
            f.solve_mat_into(&rhs, &mut x).unwrap();
            let warm = f.stats().iterations - cold;
            assert!(
                warm <= w as u64 && warm < cold,
                "{}: warm {warm} vs cold {cold}",
                backend.name()
            );
            assert!(
                x.max_abs_diff(&cold_x) < 1e-8,
                "{}: warm solutions drifted",
                backend.name()
            );
        }
    }

    /// Iterative backends under test (everything but the dense reference).
    fn iterative_backends() -> Vec<&'static dyn SddSolver> {
        backends()
            .iter()
            .copied()
            .filter(|b| b.kind() == SddKind::Iterative)
            .collect()
    }

    #[test]
    fn tree_backend_registers_parses_and_aliases() {
        assert_eq!(by_name("tree-pcg").unwrap().name(), "tree-pcg");
        assert_eq!(by_name("tree").unwrap().name(), "tree-pcg");
        assert_eq!(by_name("vaidya").unwrap().name(), "tree-pcg");
        assert_eq!(SddBackend::parse("tree"), Some(SddBackend::TreePcg));
        assert_eq!(SddBackend::TreePcg.to_string(), "tree-pcg");
        assert_eq!(SddBackend::TreePcg.resolve(10).name(), "tree-pcg");
        assert_eq!(backends().len(), 5);
    }

    #[test]
    fn lsst_backend_registers_parses_and_aliases() {
        assert_eq!(by_name("lsst-pcg").unwrap().name(), "lsst-pcg");
        assert_eq!(by_name("lsst").unwrap().name(), "lsst-pcg");
        assert_eq!(by_name("akpw").unwrap().name(), "lsst-pcg");
        assert_eq!(by_name("ultrasparsifier").unwrap().name(), "lsst-pcg");
        assert_eq!(SddBackend::parse("lsst"), Some(SddBackend::LsstPcg));
        assert_eq!(SddBackend::LsstPcg.to_string(), "lsst-pcg");
        assert_eq!(SddBackend::LsstPcg.resolve(10).name(), "lsst-pcg");
    }

    /// `lsst-pcg` observability: tree stretch and sampled off-tree edge
    /// counts surface in `SolveStats`; tree-only runs (`offtree_ratio=0`)
    /// report zero sampled edges but still report the stretch.
    #[test]
    fn lsst_stats_surface_stretch_and_sampled_edges() {
        let g = generators::grid(30, 30);
        let in_s = mask(900, &[0]);
        let opts = SddOptions::default();
        let mut f = LsstPcgBackend.factor(&g, &in_s, &opts).unwrap();
        f.solve_vec(&[1.0; 899]).unwrap();
        let st = f.stats();
        assert!(st.precond_stretch > 1.0, "stretch {}", st.precond_stretch);
        assert!(st.precond_offtree_edges > 0);
        let tree_only = SddOptions {
            offtree_ratio: 0.0,
            ..SddOptions::default()
        };
        let mut f0 = LsstPcgBackend.factor(&g, &in_s, &tree_only).unwrap();
        f0.solve_vec(&[1.0; 899]).unwrap();
        assert_eq!(f0.stats().precond_offtree_edges, 0);
        assert!(f0.stats().precond_stretch > 1.0);
        // Other backends report zeros for both.
        let mut fs = SparseCgBackend.factor(&g, &in_s, &opts).unwrap();
        fs.solve_vec(&[1.0; 899]).unwrap();
        assert_eq!(fs.stats().precond_stretch, 0.0);
        assert_eq!(fs.stats().precond_offtree_edges, 0);
    }

    /// Regression (singular-system guard): a grounding that leaves nodes
    /// unreachable from S — a disconnected component or an isolated
    /// vertex — must fail at factor time with a structured error on every
    /// iterative backend, not build a 1/0 preconditioner.
    #[test]
    fn singular_grounding_is_a_structured_factor_error() {
        // Two components: S touches only the first.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let in_s = mask(6, &[0]);
        for backend in iterative_backends() {
            let err = backend
                .factor(&g, &in_s, &SddOptions::default())
                .err()
                .unwrap_or_else(|| panic!("{} must reject singular grounding", backend.name()));
            assert!(
                matches!(err, LinalgError::SingularGrounding { node } if node >= 3),
                "{}: {err:?}",
                backend.name()
            );
        }
        // Isolated vertex (zero grounded degree — the historical inf/NaN
        // inv_diag case).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let in_s = mask(4, &[0]);
        for backend in iterative_backends() {
            assert!(
                matches!(
                    backend.factor(&g, &in_s, &SddOptions::default()),
                    Err(LinalgError::SingularGrounding { node: 3 })
                ),
                "{}",
                backend.name()
            );
        }
        // Same graphs with every component grounded factor fine.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let in_s = mask(6, &[0, 3]);
        for backend in iterative_backends() {
            backend
                .factor(&g, &in_s, &SddOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", backend.name()));
        }
    }

    /// Regression (warm-start contract): `solve_vec_into` documents that
    /// `x` carries the initial guess; re-solving the same system from its
    /// own solution must converge (nearly) immediately on every
    /// iterative backend.
    #[test]
    fn warm_started_resolve_takes_fewer_iterations() {
        let mut rng = StdRng::seed_from_u64(0x3A9);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let in_s = mask(300, &[4]);
        let b: Vec<f64> = (0..299).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for backend in iterative_backends() {
            let mut f = backend
                .factor(&g, &in_s, &SddOptions::with_tol(1e-10))
                .unwrap();
            let mut x = vec![0.0; 299];
            f.solve_vec_into(&b, &mut x).unwrap();
            let cold = f.stats().iterations;
            assert!(cold > 0, "{}", backend.name());
            // Warm start from the converged solution: the initial
            // residual already meets the tolerance.
            f.solve_vec_into(&b, &mut x).unwrap();
            let warm = f.stats().iterations - cold;
            assert!(
                warm < cold && warm <= 1,
                "{}: warm {warm} vs cold {cold}",
                backend.name()
            );
        }
    }

    /// The blocked multi-RHS `solve_mat` must agree with per-column
    /// `solve_vec` solves to well within the tolerance, and record one
    /// solve per column in the stats.
    #[test]
    fn blocked_solve_mat_matches_per_column_solves() {
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for (trial, g) in [
            generators::barabasi_albert(90, 3, &mut rng),
            generators::grid(10, 9),
        ]
        .into_iter()
        .enumerate()
        {
            let n = g.num_nodes();
            let in_s = mask(n, &[1]);
            let d = n - 1;
            let w = 9;
            let mut rhs = DenseMatrix::zeros(d, w);
            for i in 0..d {
                for j in 0..w {
                    rhs.set(i, j, rng.gen_range(-1.0..1.0));
                }
            }
            // Make one column converge much earlier than the rest, so the
            // deflation path is exercised.
            for i in 0..d {
                rhs.set(i, 3, 1e-3 * rhs.get(i, 3));
            }
            let opts = SddOptions::with_tol(1e-11);
            for backend in iterative_backends() {
                let mut fb = backend.factor(&g, &in_s, &opts).unwrap();
                let x = fb.solve_mat(&rhs).unwrap();
                assert_eq!(fb.stats().solves, w as u64);
                assert!(fb.stats().iterations > 0);
                assert!(fb.stats().max_rel_residual <= 1e-11);
                let mut fc = backend.factor(&g, &in_s, &opts).unwrap();
                let mut col = vec![0.0; d];
                for j in 0..w {
                    for (i, c) in col.iter_mut().enumerate() {
                        *c = rhs.get(i, j);
                    }
                    let xc = fc.solve_vec(&col).unwrap();
                    let scale = xc.iter().fold(1e-30f64, |m, &v| m.max(v.abs()));
                    for (i, &v) in xc.iter().enumerate() {
                        assert!(
                            (x.get(i, j) - v).abs() / scale <= 1e-8,
                            "{} trial {trial} col {j} row {i}: {} vs {v}",
                            backend.name(),
                            x.get(i, j)
                        );
                    }
                }
            }
        }
    }

    /// A blocked solve where columns cannot converge must surface the
    /// error contract, same as the per-column path.
    #[test]
    fn blocked_nonconvergence_is_an_error() {
        let g = generators::path(400);
        let in_s = mask(400, &[0]);
        let opts = SddOptions {
            rel_tol: 1e-14,
            max_iter: 2,
            ..SddOptions::default()
        };
        let mut rng = StdRng::seed_from_u64(0xBADC);
        let mut rhs = DenseMatrix::zeros(399, 4);
        for i in 0..399 {
            for j in 0..4 {
                rhs.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let mut f = CgJacobiBackend.factor(&g, &in_s, &opts).unwrap();
        assert!(matches!(
            f.solve_mat(&rhs),
            Err(LinalgError::DidNotConverge { .. })
        ));
    }

    /// Regression (surfaced preconditioner shift): a forced IC(0)
    /// breakdown recovers via the Manteuffel shift, and the perturbation
    /// is visible in `SolveStats.precond_shift` instead of being
    /// swallowed; the healthy path reports zero.
    #[test]
    fn manteuffel_shift_surfaces_in_solve_stats() {
        let g = generators::cycle(12);
        let in_s = mask(12, &[0]);
        let (mut csr, keep, pos) = CsrMatrix::grounded_laplacian(&g, &in_s);
        // Kill the diagonal dominance: plain IC(0) pivots go non-positive
        // and the escalation must land on a nonzero shift.
        csr.scale_diagonal(0.45);
        let ic = IncompleteCholesky::factor(&csr).expect("shift escalation recovers");
        assert!(ic.shift() > 0.0);
        let f = SparseCgFactor::from_parts(csr, ic, keep, pos, CgConfig::default());
        assert_eq!(f.stats().precond_shift, f.ic.shift());
        assert!(f.stats().precond_shift > 0.0);

        // Healthy grounded Laplacian: no shift reported, anywhere.
        let mut f = SparseCgBackend
            .factor(&g, &in_s, &SddOptions::default())
            .unwrap();
        f.solve_vec(&[1.0; 11]).unwrap();
        assert_eq!(f.stats().precond_shift, 0.0);
    }
}
