//! The unified SDD-solver backend API: one factor-once/solve-many surface
//! over every way this crate can solve grounded Laplacian systems
//! `L_{-S} x = b`.
//!
//! The paper's ApproxGreedy only reaches million-node graphs because every
//! solve goes through a sparse SDD solver; the greedy loops themselves
//! never care *which*. This module makes that a first-class seam,
//! mirroring how `cfcc_core::registry` unified the algorithm layer:
//!
//! | backend          | kind      | representation | best for |
//! |------------------|-----------|----------------|----------|
//! | `dense-cholesky` | direct    | dense `L_{-S}` + blocked Cholesky | `n ≲ 2k`: exact, amortizes over many RHS |
//! | `cg-jacobi`      | iterative | matrix-free operator | mid-size, few solves, zero setup cost |
//! | `sparse-cg`      | iterative | CSR + IC(0) preconditioner | large graphs; never densifies |
//!
//! # Contract
//!
//! [`SddSolver::factor`] grounds `S`, does whatever setup the backend
//! needs (dense factorization, CSR assembly + incomplete Cholesky, or
//! nothing), and returns an [`SddFactor`] over the **compacted** index
//! space `V ∖ S` (same ordering as
//! [`crate::laplacian::LaplacianSubmatrix`]). The factor then answers any
//! number of:
//!
//! * [`SddFactor::solve_vec`] / [`SddFactor::solve_mat`] — single and
//!   multi-RHS solves (`A X = B`, RHS as matrix columns);
//! * [`SddFactor::diag_inverse`] / [`SddFactor::trace_inverse`] — the
//!   quantities CFCC evaluation consumes (`C(S) = n / Tr(L_{-S}^{-1})`);
//! * [`SddFactor::stats`] — a cumulative [`SolveStats`] report
//!   (iterations, worst residual, approximate flops).
//!
//! Iterative backends surface non-convergence as
//! [`LinalgError::DidNotConverge`] instead of silent flags.
//!
//! # Selection
//!
//! Callers hold an [`SddBackend`] (a `CfcmParams` field / `--backend`
//! upstream): `auto` picks `dense-cholesky` below
//! [`SddBackend::AUTO_DENSE_LIMIT`] unknowns and `sparse-cg` above, which
//! is where the PR 2 blocked dense layer stops being the bottleneck.
//! [`backends`], [`by_name`], and [`name_list`] expose the registry for
//! discoverability (`--list-backends`).

use crate::cg::{pcg_operator, CgConfig};
use crate::csr::{CsrMatrix, IncompleteCholesky};
use crate::dense::Cholesky;
use crate::error::LinalgError;
use crate::laplacian::{laplacian_submatrix_dense, LaplacianSubmatrix};
use crate::DenseMatrix;
use cfcc_graph::{Graph, Node};

/// Backend family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SddKind {
    /// Factorize once, solve exactly (up to rounding).
    Direct,
    /// Krylov iteration to a relative tolerance.
    Iterative,
}

impl SddKind {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SddKind::Direct => "direct",
            SddKind::Iterative => "iterative",
        }
    }
}

/// Cumulative work report of an [`SddFactor`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Right-hand sides solved so far.
    pub solves: u64,
    /// Total Krylov iterations (0 for direct backends).
    pub iterations: u64,
    /// Worst relative residual over all solves (0 for direct backends).
    pub max_rel_residual: f64,
    /// Relative residual of the most recent solve (0 for direct
    /// backends) — lets callers attribute residuals to their own solves
    /// on a shared factor.
    pub last_rel_residual: f64,
    /// Approximate floating-point operations, factorization included.
    pub flops: u64,
}

/// Tuning for a factorization (tolerances only bind iterative backends).
#[derive(Debug, Clone, Copy)]
pub struct SddOptions {
    /// Relative residual target of iterative solves.
    pub rel_tol: f64,
    /// Iteration cap per right-hand side.
    pub max_iter: usize,
    /// Worker threads for the blocked dense kernels.
    pub threads: usize,
}

impl Default for SddOptions {
    fn default() -> Self {
        Self {
            rel_tol: 1e-8,
            max_iter: 50_000,
            threads: 1,
        }
    }
}

impl SddOptions {
    /// Options with the given relative tolerance.
    pub fn with_tol(rel_tol: f64) -> Self {
        Self {
            rel_tol,
            ..Self::default()
        }
    }
}

/// A factored grounded Laplacian `L_{-S}`, ready to solve many systems.
///
/// All vectors live in the compacted index space `V ∖ S` (ascending node
/// order); [`SddFactor::kept_nodes`] and [`SddFactor::compact_of`]
/// translate. Methods take `&mut self` because iterative factors
/// accumulate [`SolveStats`] and reuse internal workspaces.
pub trait SddFactor {
    /// Dimension `|V ∖ S|` of the compacted system.
    fn dim(&self) -> usize;

    /// Kept nodes in compact order.
    fn kept_nodes(&self) -> &[Node];

    /// Compact index of original node `u`, if kept.
    fn compact_of(&self, u: Node) -> Option<usize>;

    /// Original node at compact index `i`.
    fn node_of(&self, i: usize) -> Node {
        self.kept_nodes()[i]
    }

    /// Solve `L_{-S} x = b` into `x` (contents overwritten, no warm start).
    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError>;

    /// Solve `L_{-S} x = b` into a fresh vector.
    fn solve_vec(&mut self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = vec![0.0; self.dim()];
        self.solve_vec_into(b, &mut x)?;
        Ok(x)
    }

    /// Multi-RHS solve `L_{-S} X = B` (RHS as the columns of `b`).
    /// Direct backends amortize the factorization across all columns in
    /// one blocked pass; iterative backends solve per column.
    fn solve_mat(&mut self, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS has {} rows, factor dimension is {n}",
                b.rows()
            )));
        }
        let mut out = DenseMatrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        let mut x = vec![0.0; n];
        for j in 0..b.cols() {
            for (i, ci) in col.iter_mut().enumerate() {
                *ci = b.get(i, j);
            }
            self.solve_vec_into(&col, &mut x)?;
            for (i, &xi) in x.iter().enumerate() {
                out.set(i, j, xi);
            }
        }
        Ok(out)
    }

    /// `diag(L_{-S}^{-1})` — resistances to the grounded group. Direct
    /// backends read it off the triangular factor; iterative backends pay
    /// one solve per basis vector.
    fn diag_inverse(&mut self) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        let mut b = vec![0.0; n];
        let mut x = vec![0.0; n];
        let mut diag = vec![0.0; n];
        for i in 0..n {
            b.fill(0.0);
            b[i] = 1.0;
            self.solve_vec_into(&b, &mut x)?;
            diag[i] = x[i];
        }
        Ok(diag)
    }

    /// `Tr(L_{-S}^{-1})` — the CFCC denominator.
    fn trace_inverse(&mut self) -> Result<f64, LinalgError> {
        Ok(self.diag_inverse()?.iter().sum())
    }

    /// Cumulative work report.
    fn stats(&self) -> SolveStats;
}

/// A pluggable way to factor grounded Laplacians. Implementations are
/// stateless unit structs registered in [`backends`].
pub trait SddSolver: Sync {
    /// Canonical registry name (lower-case, stable).
    fn name(&self) -> &'static str;

    /// Backend family.
    fn kind(&self) -> SddKind;

    /// Human-readable summary of the supported operations and the regime
    /// the backend is built for (shown by `--list-backends`).
    fn ops(&self) -> &'static str;

    /// Ground `S` (mask `in_s`) and produce a factor for `L_{-S}`.
    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + 'g>, LinalgError>;
}

/// Original-node → compact-index map for a kept-node list (`usize::MAX`
/// for grounded nodes) — the one compact-index convention, shared by
/// every backend.
fn compact_pos(num_nodes: usize, keep: &[Node]) -> Vec<usize> {
    let mut pos = vec![usize::MAX; num_nodes];
    for (i, &u) in keep.iter().enumerate() {
        pos[u as usize] = i;
    }
    pos
}

// ---------------------------------------------------------------------
// dense-cholesky
// ---------------------------------------------------------------------

/// Direct backend: dense `L_{-S}` + blocked Cholesky (PR 2 kernels).
pub struct DenseCholeskyBackend;

struct DenseFactor {
    ch: Cholesky,
    keep: Vec<Node>,
    pos: Vec<usize>,
    threads: usize,
    stats: SolveStats,
}

impl SddSolver for DenseCholeskyBackend {
    fn name(&self) -> &'static str {
        "dense-cholesky"
    }

    fn kind(&self) -> SddKind {
        SddKind::Direct
    }

    fn ops(&self) -> &'static str {
        "solve_vec, solve_mat (blocked), diag_inverse (n^3/2), trace_inverse; exact, O(n^3) factor, n <~ 2k"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + 'g>, LinalgError> {
        let (dense, keep) = laplacian_submatrix_dense(g, in_s);
        let n = dense.rows();
        let ch = dense.cholesky_threaded(opts.threads)?;
        let pos = compact_pos(g.num_nodes(), &keep);
        Ok(Box::new(DenseFactor {
            ch,
            keep,
            pos,
            threads: opts.threads,
            stats: SolveStats {
                flops: (n as u64).pow(3) / 3,
                ..SolveStats::default()
            },
        }))
    }
}

impl SddFactor for DenseFactor {
    fn dim(&self) -> usize {
        self.ch.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        &self.keep
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        let p = self.pos[u as usize];
        (p != usize::MAX).then_some(p)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        x.copy_from_slice(b);
        self.ch.solve_vec(x);
        self.stats.solves += 1;
        self.stats.flops += 2 * (self.dim() as u64).pow(2);
        Ok(())
    }

    fn solve_mat(&mut self, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "RHS has {} rows, factor dimension is {}",
                b.rows(),
                self.dim()
            )));
        }
        let mut x = b.clone();
        self.ch.solve_mat_in_place(&mut x, self.threads);
        self.stats.solves += b.cols() as u64;
        self.stats.flops += 2 * (self.dim() as u64).pow(2) * b.cols() as u64;
        Ok(x)
    }

    fn diag_inverse(&mut self) -> Result<Vec<f64>, LinalgError> {
        self.stats.flops += (self.dim() as u64).pow(3) / 2;
        Ok(self.ch.diag_inverse())
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// cg-jacobi
// ---------------------------------------------------------------------

/// Iterative backend: the matrix-free operator with Jacobi-preconditioned
/// CG — zero setup cost, the historical ApproxGreedy path.
pub struct CgJacobiBackend;

struct CgJacobiFactor<'g> {
    op: LaplacianSubmatrix<'g>,
    inv_diag: Vec<f64>,
    cfg: CgConfig,
    edges2: u64,
    stats: SolveStats,
}

impl SddSolver for CgJacobiBackend {
    fn name(&self) -> &'static str {
        "cg-jacobi"
    }

    fn kind(&self) -> SddKind {
        SddKind::Iterative
    }

    fn ops(&self) -> &'static str {
        "solve_vec, solve_mat (per column), diag_inverse/trace_inverse (n solves); matrix-free, no setup"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + 'g>, LinalgError> {
        let op = LaplacianSubmatrix::new(g, in_s);
        let inv_diag: Vec<f64> = op.diagonal().iter().map(|&d| 1.0 / d).collect();
        Ok(Box::new(CgJacobiFactor {
            inv_diag,
            cfg: CgConfig {
                rel_tol: opts.rel_tol,
                max_iter: opts.max_iter,
            },
            edges2: 2 * g.num_edges() as u64,
            stats: SolveStats::default(),
            op,
        }))
    }
}

/// Shared iterative-backend bookkeeping: fold one PCG run into the
/// cumulative [`SolveStats`] (`flops_per_iter` is the backend's rough
/// per-iteration cost) and map non-convergence to the error contract.
fn record_iterative(
    total: &mut SolveStats,
    run: &crate::cg::CgStats,
    flops_per_iter: u64,
) -> Result<(), LinalgError> {
    total.solves += 1;
    total.iterations += run.iterations as u64;
    total.max_rel_residual = total.max_rel_residual.max(run.rel_residual);
    total.last_rel_residual = run.rel_residual;
    total.flops += run.iterations as u64 * flops_per_iter;
    if !run.converged {
        return Err(LinalgError::DidNotConverge {
            iterations: run.iterations,
            residual: run.rel_residual,
        });
    }
    Ok(())
}

impl<'g> SddFactor for CgJacobiFactor<'g> {
    fn dim(&self) -> usize {
        self.op.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        self.op.kept_nodes()
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        self.op.compact_of(u)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        x.fill(0.0);
        let op = &self.op;
        let inv_diag = &self.inv_diag;
        let n = op.dim();
        let stats = pcg_operator(
            |v, out| op.apply(v, out),
            |r, z| {
                for i in 0..n {
                    z[i] = r[i] * inv_diag[i];
                }
            },
            b,
            x,
            &self.cfg,
        );
        // SpMV + preconditioner + 5 vector ops per iteration, roughly.
        record_iterative(
            &mut self.stats,
            &stats,
            2 * self.edges2 + 12 * self.op.dim() as u64,
        )
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// sparse-cg
// ---------------------------------------------------------------------

/// Iterative backend: CSR `L_{-S}` with an IC(0) incomplete-Cholesky
/// preconditioner. `O(n + m)` memory end to end — the Laplacian is never
/// densified — and far fewer iterations than Jacobi on meshes and road
/// networks. The substitute for the paper's Kyng–Sachdeva solver.
pub struct SparseCgBackend;

struct SparseCgFactor {
    csr: CsrMatrix,
    ic: IncompleteCholesky,
    keep: Vec<Node>,
    pos: Vec<usize>,
    cfg: CgConfig,
    stats: SolveStats,
}

impl SddSolver for SparseCgBackend {
    fn name(&self) -> &'static str {
        "sparse-cg"
    }

    fn kind(&self) -> SddKind {
        SddKind::Iterative
    }

    fn ops(&self) -> &'static str {
        "solve_vec, solve_mat (per column), diag_inverse/trace_inverse (n solves); CSR + IC(0), O(n+m) memory"
    }

    fn factor<'g>(
        &self,
        g: &'g Graph,
        in_s: &[bool],
        opts: &SddOptions,
    ) -> Result<Box<dyn SddFactor + 'g>, LinalgError> {
        let (csr, keep, pos) = CsrMatrix::grounded_laplacian(g, in_s);
        let ic = IncompleteCholesky::factor(&csr)?;
        Ok(Box::new(SparseCgFactor {
            stats: SolveStats {
                // Pattern setup + one pass of multiply-adds per stored
                // lower entry, roughly.
                flops: 4 * csr.nnz() as u64,
                ..SolveStats::default()
            },
            ic,
            keep,
            pos,
            cfg: CgConfig {
                rel_tol: opts.rel_tol,
                max_iter: opts.max_iter,
            },
            csr,
        }))
    }
}

impl SddFactor for SparseCgFactor {
    fn dim(&self) -> usize {
        self.csr.dim()
    }

    fn kept_nodes(&self) -> &[Node] {
        &self.keep
    }

    fn compact_of(&self, u: Node) -> Option<usize> {
        let p = self.pos[u as usize];
        (p != usize::MAX).then_some(p)
    }

    fn solve_vec_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.dim() || x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(format!(
                "vector length vs factor dimension {}",
                self.dim()
            )));
        }
        x.fill(0.0);
        let csr = &self.csr;
        let ic = &self.ic;
        let stats = pcg_operator(
            |v, out| csr.spmv(v, out),
            |r, z| ic.apply(r, z),
            b,
            x,
            &self.cfg,
        );
        // SpMV + two triangular solves + 5 vector ops per iteration.
        record_iterative(
            &mut self.stats,
            &stats,
            2 * self.csr.nnz() as u64 + 4 * self.ic.nnz_lower() as u64 + 12 * self.csr.dim() as u64,
        )
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// registry + selection policy
// ---------------------------------------------------------------------

/// Every registered backend, in listing order.
static BACKENDS: &[&dyn SddSolver] = &[&DenseCholeskyBackend, &CgJacobiBackend, &SparseCgBackend];

/// Alias table (alias → canonical name).
static ALIASES: &[(&str, &str)] = &[
    ("dense", "dense-cholesky"),
    ("cholesky", "dense-cholesky"),
    ("cg", "cg-jacobi"),
    ("jacobi", "cg-jacobi"),
    ("sparse", "sparse-cg"),
    ("ic", "sparse-cg"),
];

/// All registered backends.
pub fn backends() -> &'static [&'static dyn SddSolver] {
    BACKENDS
}

/// Look up a backend by canonical name or alias (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static dyn SddSolver> {
    let lower = name.to_ascii_lowercase();
    let canonical = ALIASES
        .iter()
        .find(|(alias, _)| *alias == lower)
        .map_or(lower.as_str(), |(_, canonical)| canonical);
    BACKENDS.iter().find(|s| s.name() == canonical).copied()
}

/// `name1 | name2 | …` — for usage strings (the `auto` policy included).
pub fn name_list() -> String {
    let mut names: Vec<&str> = vec!["auto"];
    names.extend(BACKENDS.iter().map(|s| s.name()));
    names.join(" | ")
}

/// Backend selection carried through `CfcmParams` / `--backend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SddBackend {
    /// Dense below [`SddBackend::AUTO_DENSE_LIMIT`] unknowns, sparse above.
    #[default]
    Auto,
    /// Force `dense-cholesky`.
    DenseCholesky,
    /// Force `cg-jacobi`.
    CgJacobi,
    /// Force `sparse-cg`.
    SparseCg,
}

impl SddBackend {
    /// Crossover of the `auto` policy: the dense blocked layer wins below
    /// this many unknowns (factor amortized over many RHS), the CSR path
    /// above (where `O(n³)` and `O(n²)` memory stop being payable).
    pub const AUTO_DENSE_LIMIT: usize = 1536;

    /// Parse a CLI/user name ("auto", a canonical backend name, or an
    /// alias).
    pub fn parse(name: &str) -> Option<Self> {
        if name.eq_ignore_ascii_case("auto") {
            return Some(SddBackend::Auto);
        }
        match by_name(name)?.name() {
            "dense-cholesky" => Some(SddBackend::DenseCholesky),
            "cg-jacobi" => Some(SddBackend::CgJacobi),
            "sparse-cg" => Some(SddBackend::SparseCg),
            _ => None,
        }
    }

    /// Display name ("auto" or the canonical backend name).
    pub fn name(self) -> &'static str {
        match self {
            SddBackend::Auto => "auto",
            SddBackend::DenseCholesky => "dense-cholesky",
            SddBackend::CgJacobi => "cg-jacobi",
            SddBackend::SparseCg => "sparse-cg",
        }
    }

    /// Resolve to a concrete backend for an `n`-unknown system.
    pub fn resolve(self, n: usize) -> &'static dyn SddSolver {
        let name = match self {
            SddBackend::Auto => {
                if n <= Self::AUTO_DENSE_LIMIT {
                    "dense-cholesky"
                } else {
                    "sparse-cg"
                }
            }
            other => other.name(),
        };
        by_name(name).expect("registered backend")
    }
}

impl std::fmt::Display for SddBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Factor `L_{-S}` through the chosen backend (resolving `auto` by the
/// number of kept nodes) — the one-call front door consumers use.
pub fn factor<'g>(
    g: &'g Graph,
    in_s: &[bool],
    backend: SddBackend,
    opts: &SddOptions,
) -> Result<Box<dyn SddFactor + 'g>, LinalgError> {
    let kept = in_s.iter().filter(|&&s| !s).count();
    backend.resolve(kept).factor(g, in_s, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mask(n: usize, grounded: &[usize]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &u in grounded {
            m[u] = true;
        }
        m
    }

    #[test]
    fn registry_names_resolve_and_aliases_work() {
        for b in backends() {
            assert_eq!(by_name(b.name()).unwrap().name(), b.name());
        }
        assert_eq!(by_name("dense").unwrap().name(), "dense-cholesky");
        assert_eq!(by_name("SPARSE").unwrap().name(), "sparse-cg");
        assert!(by_name("nope").is_none());
        assert!(name_list().starts_with("auto"));
    }

    #[test]
    fn backend_enum_parses_and_displays() {
        assert_eq!(SddBackend::parse("auto"), Some(SddBackend::Auto));
        assert_eq!(SddBackend::parse("dense"), Some(SddBackend::DenseCholesky));
        assert_eq!(SddBackend::parse("cg-jacobi"), Some(SddBackend::CgJacobi));
        assert_eq!(SddBackend::parse("sparse-cg"), Some(SddBackend::SparseCg));
        assert_eq!(SddBackend::parse("warp"), None);
        assert_eq!(SddBackend::SparseCg.to_string(), "sparse-cg");
    }

    #[test]
    fn auto_policy_switches_at_the_limit() {
        assert_eq!(
            SddBackend::Auto
                .resolve(SddBackend::AUTO_DENSE_LIMIT)
                .name(),
            "dense-cholesky"
        );
        assert_eq!(
            SddBackend::Auto
                .resolve(SddBackend::AUTO_DENSE_LIMIT + 1)
                .name(),
            "sparse-cg"
        );
        assert_eq!(SddBackend::CgJacobi.resolve(10).name(), "cg-jacobi");
    }

    #[test]
    fn all_backends_solve_and_report_stats() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = generators::barabasi_albert(70, 3, &mut rng);
        let in_s = mask(70, &[2, 11]);
        let opts = SddOptions::with_tol(1e-11);
        let b: Vec<f64> = (0..68).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut reference: Option<Vec<f64>> = None;
        for backend in backends() {
            let mut f = backend.factor(&g, &in_s, &opts).unwrap();
            assert_eq!(f.dim(), 68);
            assert_eq!(f.kept_nodes().len(), 68);
            assert_eq!(f.compact_of(2), None);
            assert_eq!(f.node_of(0), 0);
            let x = f.solve_vec(&b).unwrap();
            match &reference {
                None => reference = Some(x),
                Some(r) => {
                    for (a, c) in x.iter().zip(r) {
                        assert!((a - c).abs() < 1e-7, "{}: {a} vs {c}", backend.name());
                    }
                }
            }
            let st = f.stats();
            assert_eq!(st.solves, 1);
            assert!(st.flops > 0);
            match backend.kind() {
                SddKind::Direct => assert_eq!(st.iterations, 0),
                SddKind::Iterative => {
                    assert!(st.iterations > 0);
                    assert!(st.max_rel_residual <= 1e-11);
                }
            }
        }
    }

    #[test]
    fn iterative_nonconvergence_is_an_error() {
        let g = generators::path(400);
        let in_s = mask(400, &[0]);
        let opts = SddOptions {
            rel_tol: 1e-14,
            max_iter: 2,
            threads: 1,
        };
        let mut rng = StdRng::seed_from_u64(63);
        let b: Vec<f64> = (0..399).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut f = CgJacobiBackend.factor(&g, &in_s, &opts).unwrap();
        assert!(matches!(
            f.solve_vec(&b),
            Err(LinalgError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn solve_mat_rejects_bad_shapes() {
        let g = generators::cycle(10);
        let in_s = mask(10, &[0]);
        for backend in backends() {
            let mut f = backend.factor(&g, &in_s, &SddOptions::default()).unwrap();
            let bad = DenseMatrix::zeros(4, 2);
            assert!(matches!(
                f.solve_mat(&bad),
                Err(LinalgError::DimensionMismatch(_))
            ));
        }
    }

    #[test]
    fn factor_front_door_resolves_auto_by_kept_count() {
        let g = generators::cycle(30);
        let in_s = mask(30, &[0]);
        let mut f = factor(&g, &in_s, SddBackend::Auto, &SddOptions::default()).unwrap();
        // 29 unknowns → dense: direct solves report zero iterations.
        f.solve_vec(&vec![1.0; 29]).unwrap();
        assert_eq!(f.stats().iterations, 0);
    }
}
