//! Dense pseudoinverse of the graph Laplacian.
//!
//! For a connected graph, `L† = (L + 11ᵀ/n)^{-1} − 11ᵀ/n`, since `L + J/n`
//! shares eigenvectors with `L` and maps the nullspace vector `1` to itself.
//! (The paper's §II-B states the equivalent shifted form.) This is the oracle
//! behind the Exact baseline's first greedy pick (`argmin_u L†_{uu}`) and all
//! resistance-distance tests.

use crate::dense::DenseMatrix;
use crate::laplacian::laplacian_dense;
use cfcc_graph::Graph;

/// Dense `L†` for a connected graph. `O(n³)` — small graphs only.
pub fn pseudoinverse_dense(g: &Graph) -> DenseMatrix {
    let n = g.num_nodes();
    assert!(n > 0);
    let mut inv = shifted_laplacian(g)
        .cholesky()
        .expect("L + J/n is positive definite for a connected graph")
        .inverse();
    let inv_n = 1.0 / n as f64;
    for v in inv.data_mut() {
        *v -= inv_n;
    }
    inv
}

/// `diag(L†)` without forming the full pseudoinverse: factor `L + 11ᵀ/n`
/// once and read the inverse diagonal off the triangular factor
/// (`L†_uu = (L + J/n)^{-1}_uu − 1/n`). This is all the first greedy pick
/// (`argmin_u L†_uu`) and single-node CFCC ranking consume.
pub fn pseudoinverse_diag(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    assert!(n > 0);
    let mut diag = shifted_laplacian(g)
        .cholesky()
        .expect("L + J/n is positive definite for a connected graph")
        .diag_inverse();
    let inv_n = 1.0 / n as f64;
    for v in &mut diag {
        *v -= inv_n;
    }
    diag
}

/// `L + 11ᵀ/n` — the SPD shift sharing `L`'s eigenvectors.
fn shifted_laplacian(g: &Graph) -> DenseMatrix {
    let n = g.num_nodes();
    let mut shifted = laplacian_dense(g);
    let inv_n = 1.0 / n as f64;
    for v in shifted.data_mut() {
        *v += inv_n;
    }
    shifted
}

/// Resistance distance `R(i, j) = L†_ii + L†_jj − 2 L†_ij` (Eq. 1).
pub fn resistance_distance(pinv: &DenseMatrix, i: usize, j: usize) -> f64 {
    pinv.get(i, i) + pinv.get(j, j) - 2.0 * pinv.get(i, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_submatrix_dense;
    use cfcc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pinv_satisfies_penrose_identities() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::barabasi_albert(30, 2, &mut rng);
        let l = laplacian_dense(&g);
        let p = pseudoinverse_dense(&g);
        // L L† L = L and L† L L† = L†
        let lpl = l.matmul(&p).matmul(&l);
        assert!(lpl.max_abs_diff(&l) < 1e-8);
        let plp = p.matmul(&l).matmul(&p);
        assert!(plp.max_abs_diff(&p) < 1e-8);
        // rows of L† sum to zero (1 in the nullspace)
        for i in 0..g.num_nodes() {
            assert!(p.row(i).iter().sum::<f64>().abs() < 1e-9);
        }
    }

    #[test]
    fn diag_matches_full_pseudoinverse() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::barabasi_albert(40, 3, &mut rng);
        let p = pseudoinverse_dense(&g);
        for (u, d) in pseudoinverse_diag(&g).iter().enumerate() {
            assert!((d - p.get(u, u)).abs() < 1e-10, "u={u}");
        }
    }

    #[test]
    fn path_resistance_is_hop_count() {
        // Unit resistors in series: R(0, j) = j on a path graph.
        let g = generators::path(6);
        let p = pseudoinverse_dense(&g);
        for j in 0..6 {
            assert!((resistance_distance(&p, 0, j) - j as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn complete_graph_resistance() {
        // K_n has R(i,j) = 2/n for i ≠ j.
        let n = 7;
        let g = generators::complete(n);
        let p = pseudoinverse_dense(&g);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 0.0 } else { 2.0 / n as f64 };
                assert!((resistance_distance(&p, i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eq1_equals_eq2() {
        // R(i,j) = (L_{-i}^{-1})_{jj}  (Eq. 2)
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::barabasi_albert(25, 2, &mut rng);
        let p = pseudoinverse_dense(&g);
        let n = g.num_nodes();
        for i in [0usize, 3, 11] {
            let mut in_s = vec![false; n];
            in_s[i] = true;
            let (sub, keep) = laplacian_submatrix_dense(&g, &in_s);
            let inv = sub.cholesky().unwrap().inverse();
            for (cj, &j) in keep.iter().enumerate() {
                let r1 = resistance_distance(&p, i, j as usize);
                let r2 = inv.get(cj, cj);
                assert!((r1 - r2).abs() < 1e-8, "i={i} j={j}: {r1} vs {r2}");
            }
        }
    }

    #[test]
    fn cycle_resistance_parallel_rule() {
        // Cycle of n: R(i,j) = d(n-d)/n with d the hop distance.
        let n = 8;
        let g = generators::cycle(n);
        let p = pseudoinverse_dense(&g);
        for d in 1..n {
            let expect = (d * (n - d)) as f64 / n as f64;
            assert!((resistance_distance(&p, 0, d) - expect).abs() < 1e-9);
        }
    }
}
